//! Two-dimensional cross-validation for hyper-parameter selection (§4.2).
//!
//! The confidence hyper-parameters `(ν₀, κ₀)` encode how much the early
//! stage is trusted; the paper selects them by sweeping a two-dimensional
//! candidate grid (Fig. 2a) and scoring each combination with Q-fold
//! cross-validation on the few late-stage samples (Fig. 2b): fit the BMF
//! MAP estimate on `Q−1` folds, evaluate the Gaussian log-likelihood
//! (Eq. 9) of the held-out fold, and average over the `Q` runs.
//!
//! # The fast scoring path
//!
//! Read literally, the paper's procedure refits the whole estimator per
//! candidate × repeat × fold: fresh sufficient statistics (O(n·d²)) plus a
//! fresh covariance factorisation (O(d³)) for every grid point. This module
//! instead exploits the grid's rank structure (the `FoldCaches` internals):
//!
//! * per (repeat, fold), the training statistics `(n, X̄, S)`, the prior–data
//!   gap `δ = μ_E − X̄` and the centred held-out rows are computed **once**,
//!   outside the candidate loop;
//! * per feasible ν₀, the base matrix `M(ν₀) = S + (ν₀−d)Σ_E` is factorised
//!   **once** per fold (`|ν|` Cholesky calls instead of `|ν|·|κ|`), and its
//!   factor is applied to the held-out rows and to δ right away
//!   (`ŷ_t = L⁻¹(x_t−X̄)`, `ẑ = L⁻¹δ`);
//! * per candidate, the posterior inverse scale differs from `M(ν₀)` only by
//!   the rank-one term `κ₀n/(κ₀+n)·δδᵀ` (Eq. 25) and the MAP covariance by
//!   the scalar `1/(ν₀+n−d)` (Eq. 32), so the matrix determinant lemma and
//!   Sherman–Morrison reduce each grid point to scalar arithmetic on the
//!   cached solves — O(d) per held-out row, no factorisation, no triangular
//!   solve, and no allocation in the candidate loop. (When the explicit
//!   posterior factor is needed, [`bmf_linalg::Cholesky::rank1_update`] +
//!   [`bmf_linalg::Cholesky::scaled`] perform the same update in O(d²).)
//!
//! The naive per-candidate refit survives behind
//! [`CrossValidation::with_naive_scoring`] as the equivalence oracle; the two
//! paths agree to ≤ 1e-10 per grid score (`tests/cv_equivalence.rs` — exact
//! bit-identity is impossible because the fast path reassociates the same
//! arithmetic). Parallel scoring splits over (candidate × repeat) work items
//! so small grids still occupy every worker, while each candidate's repeats
//! are reduced in repeat order — bit-identical at every thread count.

use crate::map::BmfEstimator;
use crate::parallel;
use crate::prior::NormalWishartPrior;
use crate::{BmfError, MomentEstimate, Result};
use bmf_linalg::{Cholesky, Matrix, Vector};
use bmf_stats::{descriptive, MultivariateNormal};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One scored grid point of the CV search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CvGridPoint {
    /// Candidate `κ₀`.
    pub kappa0: f64,
    /// Candidate `ν₀`.
    pub nu0: f64,
    /// Mean held-out log-likelihood per test sample (−∞ when the
    /// combination could not be evaluated).
    pub score: f64,
}

/// The result of one hyper-parameter search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperParameterSelection {
    /// Selected `κ₀`.
    pub kappa0: f64,
    /// Selected `ν₀`.
    pub nu0: f64,
    /// Score of the winning combination.
    pub score: f64,
    /// The full scored grid (paper Fig. 2a), for diagnostics/plots.
    pub grid: Vec<CvGridPoint>,
}

impl HyperParameterSelection {
    /// Distils the scored grid into the health-report surface summary:
    /// the argmax, the *spread* (best score minus the median finite
    /// score — near zero means the surface is flat and the selection
    /// arbitrary), and whether the argmax sits on the **lower** edge of
    /// either hyper-parameter axis as actually searched (the feasible
    /// grid). The upper edge is not flagged: the top of the paper's
    /// `[1, 1000]` grid already means near-total trust in the prior,
    /// whereas the bottom edge suggests the optimum may lie below the
    /// searched range.
    pub fn surface_summary(&self) -> bmf_obs::health::CvSurface {
        let mut finite: Vec<f64> = self
            .grid
            .iter()
            .map(|p| p.score)
            .filter(|s| s.is_finite())
            .collect();
        finite.sort_by(f64::total_cmp);
        let median = if finite.is_empty() {
            f64::NAN
        } else {
            finite[finite.len() / 2]
        };
        let spread = self.score - median;
        let min_kappa = self
            .grid
            .iter()
            .map(|p| p.kappa0)
            .fold(f64::INFINITY, f64::min);
        let min_nu = self
            .grid
            .iter()
            .map(|p| p.nu0)
            .fold(f64::INFINITY, f64::min);
        // A single-point axis has no interior, so its "edge" is not
        // informative; only flag axes with at least two distinct values.
        let kappa_values: std::collections::BTreeSet<u64> =
            self.grid.iter().map(|p| p.kappa0.to_bits()).collect();
        let nu_values: std::collections::BTreeSet<u64> =
            self.grid.iter().map(|p| p.nu0.to_bits()).collect();
        let boundary_hit = (kappa_values.len() > 1 && self.kappa0 == min_kappa)
            || (nu_values.len() > 1 && self.nu0 == min_nu);
        bmf_obs::health::CvSurface {
            kappa0: self.kappa0,
            nu0: self.nu0,
            score: self.score,
            spread,
            boundary_hit,
            severity: bmf_obs::health::classify_cv_surface(spread, boundary_hit),
        }
    }
}

/// Two-dimensional Q-fold cross-validation over a `(κ₀, ν₀)` grid.
///
/// The default reproduces the paper's setup: both axes span `[1, 1000]`
/// (log-spaced, 12 points each — the paper reports non-integer optima such
/// as κ₀ = 4.67, so the grid must be finer than integers), with `Q = 4`
/// folds.
///
/// # Example
///
/// ```
/// use bmf_core::cv::CrossValidation;
///
/// let cv = CrossValidation::default();
/// assert_eq!(cv.fold_count(), 4);
/// assert!(cv.kappa_grid().len() >= 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    kappa_grid: Vec<f64>,
    nu_grid: Vec<f64>,
    q: usize,
    repeats: usize,
    /// Score with the naive per-candidate refit instead of the fast
    /// rank-structured path (equivalence oracle; see the module docs).
    #[serde(default)]
    naive: bool,
}

/// Builds a log-spaced grid over `[lo, hi]` with `points` entries.
fn log_grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    if points == 1 {
        // A single point has no spacing to interpolate; the general
        // formula below would divide by zero and yield NaN.
        return vec![lo];
    }
    let llo = lo.ln();
    let lhi = hi.ln();
    (0..points)
        .map(|k| (llo + (lhi - llo) * k as f64 / (points - 1) as f64).exp())
        .collect()
}

impl Default for CrossValidation {
    fn default() -> Self {
        CrossValidation {
            kappa_grid: log_grid(1.0, 1000.0, 12),
            nu_grid: log_grid(1.0, 1000.0, 12),
            q: 4,
            repeats: 8,
            naive: false,
        }
    }
}

/// Drops exact (bitwise) duplicate grid values, keeping the first
/// occurrence of each; returns the deduplicated grid and the number of
/// entries dropped.
fn dedupe_grid(grid: Vec<f64>) -> (Vec<f64>, usize) {
    let before = grid.len();
    let mut seen = std::collections::HashSet::with_capacity(before);
    let deduped: Vec<f64> = grid
        .into_iter()
        .filter(|v| seen.insert(v.to_bits()))
        .collect();
    let dropped = before - deduped.len();
    (deduped, dropped)
}

/// The stage at which a CV candidate's scoring failed — reported when
/// *every* feasible candidate fails, so the error names the actual
/// culprit instead of misdiagnosing grid feasibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ScoreFailure {
    /// Prior construction from the early moments (Σ_E not SPD, …).
    Prior,
    /// Sufficient statistics of the training folds (non-finite samples).
    Statistics,
    /// Posterior covariance factorisation.
    Factorisation,
    /// Held-out likelihood evaluation.
    Likelihood,
    /// Fold assembly left every fold empty.
    EmptyFolds,
}

impl ScoreFailure {
    fn describe(self) -> &'static str {
        match self {
            ScoreFailure::Prior => "prior construction from the early moments",
            ScoreFailure::Statistics => "sufficient statistics of the training folds",
            ScoreFailure::Factorisation => "posterior covariance factorisation",
            ScoreFailure::Likelihood => "held-out likelihood evaluation",
            ScoreFailure::EmptyFolds => "fold assembly (every fold empty)",
        }
    }
}

/// The most frequent failure stage across candidates (ties break toward
/// the earlier pipeline stage).
fn dominant_failure(failures: &[ScoreFailure]) -> Option<ScoreFailure> {
    let mut counts = std::collections::BTreeMap::new();
    for &f in failures {
        *counts.entry(f).or_insert(0usize) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(stage, count)| (count, std::cmp::Reverse(stage)))
        .map(|(stage, _)| stage)
}

impl CrossValidation {
    /// Creates a search with explicit grids and fold count.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::InvalidConfig`] for empty grids, non-positive
    /// candidates or `q < 2`.
    pub fn new(kappa_grid: Vec<f64>, nu_grid: Vec<f64>, q: usize) -> Result<Self> {
        Self::with_repeats(kappa_grid, nu_grid, q, 1)
    }

    /// Creates a **repeated** Q-fold search: the fold assignment is
    /// re-randomised `repeats` times and scores are averaged, which
    /// stabilises the argmax when the folds are tiny (e.g. n = 8, Q = 4 →
    /// two-sample test folds).
    ///
    /// Exact duplicate grid values are dropped (first occurrence kept) —
    /// a duplicated candidate would be scored twice for no information
    /// gain — and counted on the `cv.grid_duplicates` warning counter.
    ///
    /// # Errors
    ///
    /// As [`CrossValidation::new`], plus `repeats >= 1`.
    pub fn with_repeats(
        kappa_grid: Vec<f64>,
        nu_grid: Vec<f64>,
        q: usize,
        repeats: usize,
    ) -> Result<Self> {
        if kappa_grid.is_empty() || nu_grid.is_empty() {
            return Err(BmfError::InvalidConfig {
                reason: "hyper-parameter grids must be non-empty".to_string(),
            });
        }
        if q < 2 {
            return Err(BmfError::InvalidConfig {
                reason: format!("need at least 2 folds, got {q}"),
            });
        }
        if repeats == 0 {
            return Err(BmfError::InvalidConfig {
                reason: "need at least one CV repeat".to_string(),
            });
        }
        for &k in &kappa_grid {
            if !(k > 0.0) || !k.is_finite() {
                return Err(BmfError::InvalidConfig {
                    reason: format!("kappa candidate {k} must be positive and finite"),
                });
            }
        }
        for &v in &nu_grid {
            if !(v > 0.0) || !v.is_finite() {
                return Err(BmfError::InvalidConfig {
                    reason: format!("nu candidate {v} must be positive and finite"),
                });
            }
        }
        let (kappa_grid, kappa_dupes) = dedupe_grid(kappa_grid);
        let (nu_grid, nu_dupes) = dedupe_grid(nu_grid);
        let dropped = kappa_dupes + nu_dupes;
        if dropped > 0 {
            bmf_obs::counters::CV_GRID_DUPLICATES.add(dropped as u64);
        }
        Ok(CrossValidation {
            kappa_grid,
            nu_grid,
            q,
            repeats,
            naive: false,
        })
    }

    /// Switches between the fast rank-structured scorer (default,
    /// `naive = false`) and the naive per-candidate refit. The naive path
    /// re-runs a full [`BmfEstimator::estimate`] per candidate × repeat ×
    /// fold exactly as the paper's procedure reads; it is kept as the
    /// equivalence oracle the fast path is tested against
    /// (`tests/cv_equivalence.rs`) and costs O(|grid|·d³) more work.
    #[must_use]
    pub fn with_naive_scoring(mut self, naive: bool) -> Self {
        self.naive = naive;
        self
    }

    /// Whether this search scores with the naive refit oracle.
    pub fn naive_scoring(&self) -> bool {
        self.naive
    }

    /// Number of grid candidates that survive the `ν₀ > d` feasibility
    /// filter for dimension `d` — what one select call actually scores
    /// (used by benches to report candidates/sec).
    pub fn feasible_candidate_count(&self, d: usize) -> usize {
        self.nu_grid
            .iter()
            .filter(|&&nu0| nu0 > d as f64 + 1e-9)
            .count()
            * self.kappa_grid.len()
    }

    /// The κ₀ candidate grid.
    pub fn kappa_grid(&self) -> &[f64] {
        &self.kappa_grid
    }

    /// The ν₀ candidate grid.
    pub fn nu_grid(&self) -> &[f64] {
        &self.nu_grid
    }

    /// Number of folds `Q`.
    pub fn fold_count(&self) -> usize {
        self.q
    }

    /// Number of re-randomised fold assignments averaged per grid point.
    pub fn repeat_count(&self) -> usize {
        self.repeats
    }

    /// Runs the search: scores every `(κ₀, ν₀)` combination by Q-fold CV
    /// on `late_samples` and returns the maximiser.
    ///
    /// Candidates with `ν₀ ≤ d` are skipped (the prior of Eq. 20 requires
    /// `ν₀ > d`); the effective fold count shrinks to `n` when `n < Q`.
    ///
    /// Draws a single root seed from `rng` and delegates to
    /// [`CrossValidation::select_seeded`] on one thread; pass an explicit
    /// seed and thread count there for parallel execution.
    ///
    /// # Errors
    ///
    /// * [`BmfError::InvalidSamples`] when there are fewer than 2 samples
    ///   or dimensions mismatch.
    /// * [`BmfError::InvalidConfig`] when no grid candidate is feasible.
    pub fn select<R: Rng + ?Sized>(
        &self,
        early: &MomentEstimate,
        late_samples: &Matrix,
        rng: &mut R,
    ) -> Result<HyperParameterSelection> {
        self.select_seeded(early, late_samples, rng.next_u64(), 1)
    }

    /// [`CrossValidation::select`] with an explicit root seed and thread
    /// count: the grid is scored in parallel over `threads` scoped
    /// workers — split over (candidate × repeat) work items so even small
    /// grids occupy every worker — and the per-repeat fold shuffles are
    /// derived from `seed` (stream
    /// [`parallel::streams::CV_FOLD_SHUFFLE`], index = repeat).
    ///
    /// The result is **bit-identical for every `threads` value**: each
    /// (candidate, repeat) item's score is accumulated entirely within one
    /// task, items are reduced per candidate in repeat order, and
    /// candidates are combined in grid order, so neither the random
    /// streams nor the floating-point reduction order depend on
    /// scheduling.
    ///
    /// # Errors
    ///
    /// As [`CrossValidation::select`], plus [`BmfError::Worker`] if a
    /// scoring worker panics.
    pub fn select_seeded(
        &self,
        early: &MomentEstimate,
        late_samples: &Matrix,
        seed: u64,
        threads: usize,
    ) -> Result<HyperParameterSelection> {
        let _span = bmf_obs::span("cv.select");
        early.validate()?;
        let d = early.dim();
        let n = late_samples.nrows();
        if n < 2 {
            return Err(BmfError::InvalidSamples {
                reason: format!("cross-validation needs at least 2 late-stage samples, got {n}"),
            });
        }
        if late_samples.ncols() != d {
            return Err(BmfError::InvalidSamples {
                reason: format!(
                    "late samples have {} columns, early moments have {d}",
                    late_samples.ncols()
                ),
            });
        }

        // Feasible candidate pairs (Eq. 20 needs ν₀ > d), built ν-major so
        // candidate `c` maps to feasible-ν index `c / kappa_grid.len()`.
        let nu_values: Vec<f64> = self
            .nu_grid
            .iter()
            .copied()
            .filter(|&nu0| nu0 > d as f64 + 1e-9)
            .collect();
        let candidates: Vec<(f64, f64)> = nu_values
            .iter()
            .flat_map(|&nu0| self.kappa_grid.iter().map(move |&kappa0| (kappa0, nu0)))
            .collect();
        if candidates.is_empty() {
            return Err(BmfError::InvalidConfig {
                reason: format!(
                    "no feasible (kappa0, nu0) candidate for d = {d}: every nu0 in the \
                     grid is <= d, but the prior of Eq. 20 requires nu0 > d; extend the \
                     nu grid above {d}"
                ),
            });
        }

        // Assemble each repeat's folds and training sets up front (cheap —
        // data movement only), with the row shuffle of repeat `rep` drawn
        // from its own derived seed so it is independent of both thread
        // count and the caller's RNG state.
        let mut fold_sets: Vec<(Vec<Matrix>, Vec<Matrix>)> = Vec::with_capacity(self.repeats);
        for rep in 0..self.repeats {
            let mut rng = rand::rngs::StdRng::seed_from_u64(parallel::derive_seed(
                seed,
                parallel::streams::CV_FOLD_SHUFFLE,
                rep as u64,
            ));
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            let shuffled = Matrix::from_fn(n, d, |i, j| late_samples[(order[i], j)]);
            let q = self.q.min(n);
            let folds = descriptive::split_folds(&shuffled, q)?;

            // Pre-assemble the Q training sets (all folds but one).
            let mut training: Vec<Matrix> = Vec::with_capacity(q);
            for k in 0..q {
                let parts: Vec<&Matrix> = folds
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != k)
                    .map(|(_, f)| f)
                    .collect();
                training.push(descriptive::vstack(&parts)?);
            }
            fold_sets.push((training, folds));
        }

        // Score the grid; this is the hot loop. The fast path hoists the
        // per-(repeat, fold) sufficient statistics and per-ν₀ base factors
        // into `FoldCaches` and splits the parallel work over
        // (candidate × repeat) items so small grids still occupy every
        // worker; the naive path refits per candidate exactly as before.
        // Both accumulate each candidate's score in repeat order, so the
        // reduction is scheduling-invariant at every thread count.
        bmf_obs::counters::CV_CANDIDATES.add(candidates.len() as u64);
        let repeats_f = self.repeats as f64;
        let scored: Vec<(f64, Option<ScoreFailure>)> = if self.naive {
            parallel::map_slice(&candidates, threads, |_, &(kappa0, nu0)| {
                let _span = bmf_obs::span("cv.candidate");
                let mut score = 0.0_f64;
                let mut failure = None;
                for (training, folds) in &fold_sets {
                    let (s, f) = self.score_combination(early, kappa0, nu0, training, folds);
                    score += s / repeats_f;
                    failure = failure.or(f);
                }
                (score, failure)
            })?
        } else {
            let caches = FoldCaches::build(early, late_samples, &nu_values, &fold_sets, threads)?;
            let per_repeat =
                parallel::map_product(candidates.len(), self.repeats, threads, |c, rep| {
                    let (kappa0, nu0) = candidates[c];
                    caches.score_repeat(rep, kappa0, nu0, c / self.kappa_grid.len())
                })?;
            per_repeat
                .into_iter()
                .map(|reps| {
                    let mut score = 0.0_f64;
                    let mut failure = None;
                    for (s, f) in reps {
                        score += s / repeats_f;
                        failure = failure.or(f);
                    }
                    (score, failure)
                })
                .collect()
        };

        let mut grid = Vec::with_capacity(candidates.len());
        let mut best: Option<CvGridPoint> = None;
        let mut failures: Vec<ScoreFailure> = Vec::new();
        for (&(kappa0, nu0), &(score, failure)) in candidates.iter().zip(scored.iter()) {
            let point = CvGridPoint { kappa0, nu0, score };
            grid.push(point);
            if let Some(f) = failure {
                failures.push(f);
            }
            let better = match best {
                None => score.is_finite(),
                Some(b) => score > b.score,
            };
            if better {
                best = Some(point);
            }
        }

        if !failures.is_empty() {
            bmf_obs::event!(Warn, "cv.candidate_failed",
                "failed": failures.len(),
                "candidates": candidates.len(),
                "dominant": dominant_failure(&failures).map_or("unknown", ScoreFailure::describe));
        }

        let Some(best) = best else {
            // The grid *was* feasible (the empty-candidate case returned
            // above), yet no candidate produced a finite score — a scoring
            // failure, not a grid-feasibility one. Name the stage.
            let stage = dominant_failure(&failures).map_or(
                "held-out likelihood evaluation (no finite score)",
                ScoreFailure::describe,
            );
            return Err(BmfError::InvalidConfig {
                reason: format!(
                    "all {} feasible (kappa0, nu0) candidates failed to score for d = {d} \
                     (failing stage: {stage}); the nu grid is feasible, so check the early \
                     moments and late samples rather than the grid",
                    candidates.len()
                ),
            });
        };
        Ok(HyperParameterSelection {
            kappa0: best.kappa0,
            nu0: best.nu0,
            score: best.score,
            grid,
        })
    }

    /// Two-stage search: the coarse grid of [`CrossValidation::select`]
    /// followed by a zoomed re-search on a fine local grid around the
    /// coarse argmax (one coarse-grid step each way, `zoom_points` per
    /// axis). This is how optima like the paper's κ₀ = 4.67 — between
    /// integer grid lines — are resolved.
    ///
    /// Draws a single root seed from `rng` and delegates to
    /// [`CrossValidation::select_refined_seeded`] on one thread.
    ///
    /// # Errors
    ///
    /// As [`CrossValidation::select`].
    pub fn select_refined<R: Rng + ?Sized>(
        &self,
        early: &MomentEstimate,
        late_samples: &Matrix,
        zoom_points: usize,
        rng: &mut R,
    ) -> Result<HyperParameterSelection> {
        self.select_refined_seeded(early, late_samples, zoom_points, rng.next_u64(), 1)
    }

    /// [`CrossValidation::select_refined`] with an explicit root seed and
    /// thread count. The coarse and zoomed stages run on seeds derived
    /// from `seed` (streams [`parallel::streams::CV_COARSE`] and
    /// [`parallel::streams::CV_ZOOM`]), each scoring its grid across
    /// `threads` workers — bit-identical for every thread count.
    ///
    /// The zoomed ν₀ window is clamped above the feasibility floor
    /// `ν₀ > d`, so no zoom point is wasted on candidates the prior must
    /// reject; if the zoomed stage still fails (e.g. a degenerate window
    /// around an extreme coarse optimum), the coarse selection is
    /// returned instead of an error.
    ///
    /// # Errors
    ///
    /// As [`CrossValidation::select_seeded`] (from the coarse stage —
    /// zoomed-stage failures fall back to the coarse result).
    pub fn select_refined_seeded(
        &self,
        early: &MomentEstimate,
        late_samples: &Matrix,
        zoom_points: usize,
        seed: u64,
        threads: usize,
    ) -> Result<HyperParameterSelection> {
        if zoom_points < 2 {
            return Err(BmfError::InvalidConfig {
                reason: format!("zoom grid needs at least 2 points per axis, got {zoom_points}"),
            });
        }
        let coarse_seed = parallel::derive_seed(seed, parallel::streams::CV_COARSE, 0);
        let zoom_seed = parallel::derive_seed(seed, parallel::streams::CV_ZOOM, 0);
        let coarse = self.select_seeded(early, late_samples, coarse_seed, threads)?;

        // Local window: one coarse step each way in log space (with the
        // coarse step ratio estimated from the grids themselves).
        let step_ratio = |grid: &[f64]| -> f64 {
            if grid.len() < 2 {
                2.0
            } else {
                (grid[grid.len() - 1] / grid[0]).powf(1.0 / (grid.len() as f64 - 1.0))
            }
        };
        let rk = step_ratio(&self.kappa_grid);
        let rn = step_ratio(&self.nu_grid);
        let zoom = |centre: f64, ratio: f64, floor: Option<f64>| -> Vec<f64> {
            let (mut lo, mut hi) = (centre / ratio, centre * ratio);
            if lo > hi {
                // A descending grid yields ratio < 1; normalise.
                std::mem::swap(&mut lo, &mut hi);
            }
            if let Some(floor) = floor {
                // Clamp the window into the feasible region ν₀ > d. The
                // coarse optimum is feasible, so centre (≤ hi) is a valid
                // upper bound whenever the floor crosses hi.
                lo = lo.max(floor);
                hi = hi.max(lo);
            }
            log_grid(lo, hi, zoom_points)
        };
        let d = early.dim();
        let nu_floor = (d as f64 + 1e-9) * (1.0 + 1e-9);
        let refined = CrossValidation::with_repeats(
            zoom(coarse.kappa0, rk, None),
            zoom(coarse.nu0, rn, Some(nu_floor)),
            self.q,
            self.repeats,
        )
        .map(|fine| fine.with_naive_scoring(self.naive))
        .and_then(|fine| fine.select_seeded(early, late_samples, zoom_seed, threads));
        let refined = match refined {
            Ok(r) => r,
            // The zoom is an opportunistic improvement; a degenerate fine
            // grid (e.g. non-finite window endpoints around an extreme
            // coarse optimum) must not discard the valid coarse result.
            Err(_) => return Ok(coarse),
        };

        // Keep whichever stage scored better (the zoom can only help when
        // its folds agree), and report the union of both scored grids.
        let mut grid = coarse.grid;
        grid.extend(refined.grid);
        if refined.score >= coarse.score {
            Ok(HyperParameterSelection {
                kappa0: refined.kappa0,
                nu0: refined.nu0,
                score: refined.score,
                grid,
            })
        } else {
            Ok(HyperParameterSelection {
                kappa0: coarse.kappa0,
                nu0: coarse.nu0,
                score: coarse.score,
                grid,
            })
        }
    }

    /// Scores one combination with the naive per-candidate refit: mean
    /// held-out per-sample log-likelihood, plus the failing stage when the
    /// score is −∞. This is the equivalence oracle for the fast path.
    fn score_combination(
        &self,
        early: &MomentEstimate,
        kappa0: f64,
        nu0: f64,
        training: &[Matrix],
        folds: &[Matrix],
    ) -> (f64, Option<ScoreFailure>) {
        let prior = match NormalWishartPrior::from_early_moments(early, kappa0, nu0) {
            Ok(p) => p,
            Err(_) => return (f64::NEG_INFINITY, Some(ScoreFailure::Prior)),
        };
        let estimator = match BmfEstimator::new(prior) {
            Ok(e) => e,
            Err(_) => return (f64::NEG_INFINITY, Some(ScoreFailure::Prior)),
        };
        let mut total = 0.0;
        let mut count = 0usize;
        for (train, test) in training.iter().zip(folds.iter()) {
            if test.nrows() == 0 || train.nrows() == 0 {
                continue;
            }
            bmf_obs::counters::CV_FOLD_EVALS.incr();
            let est = match estimator.estimate(train) {
                Ok(e) => e,
                Err(_) => return (f64::NEG_INFINITY, Some(ScoreFailure::Statistics)),
            };
            let model = match MultivariateNormal::new(est.map.mean.clone(), est.map.cov.clone()) {
                Ok(m) => m,
                Err(_) => return (f64::NEG_INFINITY, Some(ScoreFailure::Factorisation)),
            };
            match model.ln_likelihood(test) {
                Ok(ll) => {
                    total += ll;
                    count += test.nrows();
                }
                Err(_) => return (f64::NEG_INFINITY, Some(ScoreFailure::Likelihood)),
            }
        }
        if count == 0 {
            (f64::NEG_INFINITY, Some(ScoreFailure::EmptyFolds))
        } else {
            (total / count as f64, None)
        }
    }
}

/// The hoisted state of one fast CV search (the tentpole of the fast
/// scoring path): per-(repeat, fold) training statistics and per-ν₀ base
/// factors, built once outside the candidate loop and then shared
/// read-only by every (candidate × repeat) scoring task.
struct FoldCaches {
    d: usize,
    /// `caches[rep][fold]`; `None` marks a degenerate (empty) fold that
    /// the scorer skips, mirroring the naive path's `continue`.
    caches: Vec<Vec<Option<FoldCache>>>,
    /// A condition that fails every candidate identically (non-SPD early
    /// covariance, non-finite samples), detected once up front instead of
    /// once per candidate as the naive path does.
    global_failure: Option<ScoreFailure>,
}

/// Per-(repeat, fold) cache: everything candidate-independent about one
/// train/test split, reduced per feasible ν₀ to the solved vectors the
/// candidate loop consumes.
struct FoldCache {
    /// Training rows `n` of this split.
    n_train: f64,
    /// Per feasible ν₀ (indexed like `nu_values`): the base-factor solves
    /// of this split (`None` when `M(ν₀)` is not SPD).
    nus: Vec<Option<NuCache>>,
}

/// The candidate-independent solves against one fold's base factor
/// `L L' = M(ν₀) = S + (ν₀−d)Σ_E`. Every candidate sharing this ν₀
/// scores from these scalars alone (Sherman–Morrison on the rank-one
/// κ₀-term), without touching the factor again.
struct NuCache {
    /// `ln det M(ν₀)`.
    ln_det_m: f64,
    /// `ẑ = L⁻¹δ`, where `δ = μ_E − X̄` is the prior–data mean gap
    /// (Eq. 24's blend axis).
    z: Vector,
    /// `g = ẑᵀẑ = δᵀM⁻¹δ`.
    g: f64,
    /// Row `t` is `ŷ_t = L⁻¹(x_t − X̄)` for held-out row `x_t`.
    y: Matrix,
}

impl FoldCaches {
    fn build(
        early: &MomentEstimate,
        late_samples: &Matrix,
        nu_values: &[f64],
        fold_sets: &[(Vec<Matrix>, Vec<Matrix>)],
        threads: usize,
    ) -> Result<Self> {
        let _span = bmf_obs::span("cv.fold_precompute");
        let d = early.dim();
        // Conditions the naive path rediscovers per candidate are checked
        // once and replayed for every scoring task.
        let global_failure = if Cholesky::new(&early.cov).is_err() {
            Some(ScoreFailure::Prior)
        } else if !late_samples.is_finite() {
            Some(ScoreFailure::Statistics)
        } else {
            None
        };
        if global_failure.is_some() {
            return Ok(FoldCaches {
                d,
                caches: Vec::new(),
                global_failure,
            });
        }
        let q = fold_sets.first().map_or(0, |(training, _)| training.len());
        let caches = parallel::map_product(fold_sets.len(), q, threads, |rep, k| {
            let (training, folds) = &fold_sets[rep];
            FoldCache::build(early, nu_values, &training[k], &folds[k])
        })?;
        Ok(FoldCaches {
            d,
            caches,
            global_failure: None,
        })
    }

    /// Scores candidate `(κ₀, ν₀)` on one repeat's folds: mean held-out
    /// per-sample log-likelihood, plus the failing stage on −∞.
    ///
    /// Per fold this is pure scalar arithmetic on the cached solves: the
    /// posterior inverse scale is `M(ν₀) + c·δδᵀ` (c = κ₀n/(κ₀+n),
    /// Eq. 25), so the matrix determinant lemma gives its log-determinant
    /// as `ln det M + ln(1+c·g)` and Sherman–Morrison gives the held-out
    /// Mahalanobis term from `ŷ_t`, `ẑ` and `g` in O(d) per row — no
    /// factorisation, triangular solve, or allocation per candidate. The
    /// ν₀ axis enters only through the cache index and the scalar rescale
    /// `1/(ν₀+n−d)` of Eq. 32.
    fn score_repeat(
        &self,
        rep: usize,
        kappa0: f64,
        nu0: f64,
        nu_idx: usize,
    ) -> (f64, Option<ScoreFailure>) {
        if let Some(stage) = self.global_failure {
            return (f64::NEG_INFINITY, Some(stage));
        }
        let df = self.d as f64;
        let ln_2pi = (2.0 * std::f64::consts::PI).ln();
        let mut total = 0.0;
        let mut count = 0usize;
        for cache in &self.caches[rep] {
            let Some(cache) = cache.as_ref() else {
                continue;
            };
            bmf_obs::counters::CV_FOLD_EVALS.incr();
            let Some(nu) = cache.nus[nu_idx].as_ref() else {
                return (f64::NEG_INFINITY, Some(ScoreFailure::Factorisation));
            };
            let nf = cache.n_train;
            // Posterior mean shifts the residual by w·δ (w = κ₀/(κ₀+n),
            // Eq. 24): L⁻¹(x_t − μ_n) = ŷ_t − w·ẑ.
            let w = kappa0 / (kappa0 + nf);
            let c = kappa0 * nf / (kappa0 + nf);
            let a = nu0 + nf - df;
            let cg = c * nu.g;
            // Σ_MAP = (M + c·δδᵀ)/a, so ln det Σ_MAP = ln det M
            // + ln(1+c·g) − d·ln a and x'Σ_MAP⁻¹x = a·(‖e‖² − c(e·ẑ)²/(1+c·g))
            // with e = L⁻¹x.
            let denom = c / (1.0 + cg);
            let norm = df * ln_2pi + nu.ln_det_m + cg.ln_1p() - df * a.ln();
            for t in 0..nu.y.nrows() {
                let mut ee = 0.0;
                let mut ez = 0.0;
                for j in 0..self.d {
                    let e = nu.y[(t, j)] - w * nu.z[j];
                    ee += e * e;
                    ez += e * nu.z[j];
                }
                let m2 = a * (ee - denom * ez * ez);
                let ll = -0.5 * (norm + m2);
                if !ll.is_finite() {
                    return (f64::NEG_INFINITY, Some(ScoreFailure::Likelihood));
                }
                total += ll;
                count += 1;
            }
        }
        if count == 0 {
            (f64::NEG_INFINITY, Some(ScoreFailure::EmptyFolds))
        } else {
            (total / count as f64, None)
        }
    }
}

impl FoldCache {
    fn build(
        early: &MomentEstimate,
        nu_values: &[f64],
        training: &Matrix,
        test: &Matrix,
    ) -> Option<FoldCache> {
        if training.nrows() == 0 || test.nrows() == 0 {
            return None;
        }
        let df = training.ncols() as f64;
        let xbar = descriptive::mean_vector(training).ok()?;
        let s = descriptive::scatter_about(training, &xbar).ok()?;
        let delta = &early.mean - &xbar;
        let test_centered =
            Matrix::from_fn(test.nrows(), test.ncols(), |i, j| test[(i, j)] - xbar[j]);
        let nus = nu_values
            .iter()
            .map(|&nu0| {
                let mut m = &early.cov * (nu0 - df);
                m += &s;
                NuCache::build(&m, &delta, &test_centered)
            })
            .collect();
        Some(FoldCache {
            n_train: training.nrows() as f64,
            nus,
        })
    }
}

impl NuCache {
    /// Factorises one fold's base matrix `M(ν₀)` and pre-solves the
    /// prior–data gap and the centred held-out rows against it, so the
    /// candidate loop never touches the factor. `None` when `M(ν₀)` is
    /// not SPD (a per-ν₀ factorisation failure).
    fn build(m: &Matrix, delta: &Vector, test_centered: &Matrix) -> Option<NuCache> {
        let chol = Cholesky::new(m).ok()?;
        let z = chol.solve_lower(delta).ok()?;
        let g = z.dot(&z).ok()?;
        let d = test_centered.ncols();
        let mut y = Matrix::from_fn(test_centered.nrows(), d, |_, _| 0.0);
        for t in 0..test_centered.nrows() {
            let u = Vector::from_fn(d, |j| test_centered[(t, j)]);
            let yt = chol.solve_lower(&u).ok()?;
            for j in 0..d {
                y[(t, j)] = yt[j];
            }
        }
        Some(NuCache {
            ln_det_m: chol.ln_det(),
            z,
            g,
            y,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_linalg::{Matrix, Vector};
    use bmf_stats::MultivariateNormal;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    fn truth() -> MultivariateNormal {
        MultivariateNormal::new(
            Vector::from_slice(&[0.0, 0.0]),
            Matrix::from_rows(&[&[1.0, 0.5], &[0.5, 1.0]]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn log_grid_spans_range() {
        let g = log_grid(1.0, 1000.0, 12);
        assert_eq!(g.len(), 12);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[11] - 1000.0).abs() < 1e-9);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn log_grid_single_point_is_lo_not_nan() {
        // Regression: `points == 1` used to interpolate with a 0/0 step
        // and produce a NaN candidate, which the CV constructor rejects.
        assert_eq!(log_grid(5.0, 1000.0, 1), vec![5.0]);
        let cv = CrossValidation::new(vec![3.0], vec![7.0], 2).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 8);
        let sel = cv.select(&early, &late, &mut r).unwrap();
        assert_eq!((sel.kappa0, sel.nu0), (3.0, 7.0));
    }

    #[test]
    fn construction_validates() {
        assert!(CrossValidation::new(vec![], vec![1.0], 4).is_err());
        assert!(CrossValidation::new(vec![1.0], vec![], 4).is_err());
        assert!(CrossValidation::new(vec![1.0], vec![5.0], 1).is_err());
        assert!(CrossValidation::new(vec![0.0], vec![5.0], 4).is_err());
        assert!(CrossValidation::new(vec![1.0], vec![-5.0], 4).is_err());
        assert!(CrossValidation::new(vec![1.0], vec![5.0], 4).is_ok());
    }

    #[test]
    fn good_prior_selects_high_confidence() {
        // Early moments == truth: averaged over repetitions, CV should
        // trust the prior (large ν₀) — a single run sits on a flat score
        // landscape, so we test the average and the outcome (BMF error
        // not worse than MLE).
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let cv = CrossValidation::default();
        let reps = 10;
        let mut nu_sum = 0.0;
        let mut bmf_err = 0.0;
        let mut mle_err = 0.0;
        for _ in 0..reps {
            let late = truth().sample_matrix(&mut r, 16);
            let sel = cv.select(&early, &late, &mut r).unwrap();
            assert!(sel.score.is_finite());
            assert!(!sel.grid.is_empty());
            nu_sum += sel.nu0;
            let prior =
                crate::prior::NormalWishartPrior::from_early_moments(&early, sel.kappa0, sel.nu0)
                    .unwrap();
            let est = crate::map::BmfEstimator::new(prior)
                .unwrap()
                .estimate(&late)
                .unwrap();
            bmf_err += est.map.cov.max_abs_diff(truth().cov()).unwrap();
            let mle = crate::mle::MleEstimator::new().estimate(&late).unwrap();
            mle_err += mle.cov.max_abs_diff(truth().cov()).unwrap();
        }
        let nu_mean = nu_sum / reps as f64;
        assert!(
            nu_mean > 20.0,
            "expected large average nu0 for a perfect covariance prior, got {nu_mean}"
        );
        assert!(
            bmf_err < mle_err,
            "with a perfect prior BMF ({bmf_err}) must beat MLE ({mle_err})"
        );
    }

    #[test]
    fn wrong_mean_prior_selects_small_kappa() {
        // Early mean badly wrong, covariance right: CV should distrust the
        // mean (small κ₀) but keep the covariance confidence.
        let mut r = rng();
        let early = MomentEstimate {
            mean: Vector::from_slice(&[3.0, -3.0]), // 3σ wrong
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 32);
        let sel = CrossValidation::default()
            .select(&early, &late, &mut r)
            .unwrap();
        assert!(
            sel.kappa0 < 20.0,
            "expected small kappa0 for a wrong mean prior, got {}",
            sel.kappa0
        );
        assert!(
            sel.nu0 > 20.0,
            "covariance prior is good, expected large nu0, got {}",
            sel.nu0
        );
    }

    #[test]
    fn wrong_cov_prior_selects_small_nu() {
        // Early covariance wildly wrong (inflated 25×), mean right.
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov() * 25.0,
        };
        let late = truth().sample_matrix(&mut r, 64);
        let sel = CrossValidation::default()
            .select(&early, &late, &mut r)
            .unwrap();
        assert!(
            sel.nu0 < 50.0,
            "expected small nu0 for a wrong covariance prior, got {}",
            sel.nu0
        );
    }

    #[test]
    fn infeasible_nu_candidates_are_skipped() {
        // Grid contains only nu0 <= d → no feasible candidate.
        let cv = CrossValidation::new(vec![1.0], vec![1.0, 2.0], 2).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: Vector::zeros(2),
            cov: Matrix::identity(2),
        };
        let late = truth().sample_matrix(&mut r, 8);
        assert!(cv.select(&early, &late, &mut r).is_err());
        // Adding one feasible candidate fixes it.
        let cv = CrossValidation::new(vec![1.0], vec![2.0, 5.0], 2).unwrap();
        let sel = cv.select(&early, &late, &mut r).unwrap();
        assert_eq!(sel.nu0, 5.0);
    }

    #[test]
    fn rejects_insufficient_samples() {
        let cv = CrossValidation::default();
        let mut r = rng();
        let early = MomentEstimate {
            mean: Vector::zeros(2),
            cov: Matrix::identity(2),
        };
        let one = Matrix::from_rows(&[&[0.1, 0.2]]).unwrap();
        assert!(cv.select(&early, &one, &mut r).is_err());
        let wrong_width = Matrix::zeros(8, 3);
        assert!(cv.select(&early, &wrong_width, &mut r).is_err());
    }

    #[test]
    fn fold_count_adapts_to_tiny_n() {
        // n = 3 < Q = 4: the effective fold count shrinks, still works.
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 3);
        let sel = CrossValidation::default()
            .select(&early, &late, &mut r)
            .unwrap();
        assert!(sel.score.is_finite());
    }

    #[test]
    fn refined_search_zooms_between_grid_lines() {
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 24);
        let cv = CrossValidation::default();
        let refined = cv.select_refined(&early, &late, 5, &mut r).unwrap();
        // The refined optimum never scores below the coarse grid's best.
        let coarse_best = refined
            .grid
            .iter()
            .take(cv.kappa_grid().len() * cv.nu_grid().len())
            .map(|p| p.score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(refined.score >= coarse_best - 1e-12);
        assert!(refined.nu0 > 2.0);
        assert!(cv.select_refined(&early, &late, 1, &mut r).is_err());
    }

    #[test]
    fn refined_zoom_clamps_nu_window_above_d() {
        // Coarse optimum ν₀ = 2.1 sits just above d = 2; the naive zoom
        // window [2.1/476, 2.1·476] would waste half its ν₀ points on the
        // infeasible region ν₀ ≤ d. With the clamp every zoomed candidate
        // is feasible, so the reported grid holds the full fine grid.
        let cv = CrossValidation::with_repeats(vec![5.0], vec![2.1, 1000.0], 2, 2).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov() * 25.0, // inflated prior → small ν₀ wins
        };
        let late = truth().sample_matrix(&mut r, 32);
        let zoom_points = 4;
        let sel = cv
            .select_refined(&early, &late, zoom_points, &mut r)
            .unwrap();
        let coarse_candidates = 2; // 1 κ₀ × 2 feasible ν₀
        assert_eq!(
            sel.grid.len(),
            coarse_candidates + zoom_points * zoom_points,
            "zoomed nu window must be clamped into the feasible region"
        );
        assert!(sel.grid.iter().all(|p| p.nu0 > 2.0));
        assert!(sel.nu0 > 2.0);
    }

    #[test]
    fn refined_falls_back_to_coarse_when_zoom_fails() {
        // A coarse optimum at the very bottom of the float range makes the
        // zoom window's lower edge underflow to 0 (5e-324 / 2 rounds to
        // zero), which the fine-grid constructor rejects as non-positive;
        // select_refined must return the valid coarse result, not error.
        let kappa_min = f64::MIN_POSITIVE * f64::EPSILON; // 5e-324
        assert_eq!(kappa_min / 2.0, 0.0);
        let cv = CrossValidation::with_repeats(vec![kappa_min], vec![5.0], 2, 1).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: Vector::zeros(2),
            cov: Matrix::identity(2),
        };
        let late = truth().sample_matrix(&mut r, 8);
        let sel = cv.select_refined(&early, &late, 3, &mut r).unwrap();
        assert_eq!(sel.kappa0, kappa_min);
        assert_eq!(sel.nu0, 5.0);
        assert!(sel.score.is_finite());
    }

    #[test]
    fn select_seeded_is_bit_identical_across_thread_counts() {
        let cv =
            CrossValidation::with_repeats(vec![1.0, 10.0, 100.0], vec![5.0, 50.0, 500.0], 3, 3)
                .unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 16);
        let reference = cv.select_seeded(&early, &late, 42, 1).unwrap();
        for threads in [2, 3, 7, 16] {
            let par = cv.select_seeded(&early, &late, 42, threads).unwrap();
            assert_eq!(par, reference, "threads = {threads}");
        }
        let refined_ref = cv.select_refined_seeded(&early, &late, 3, 42, 1).unwrap();
        for threads in [2, 7] {
            let par = cv
                .select_refined_seeded(&early, &late, 3, 42, threads)
                .unwrap();
            assert_eq!(par, refined_ref, "threads = {threads}");
        }
    }

    #[test]
    fn duplicate_grid_values_are_deduplicated() {
        let cv =
            CrossValidation::new(vec![1.0, 10.0, 1.0, 10.0, 1.0], vec![5.0, 5.0, 50.0], 2).unwrap();
        assert_eq!(cv.kappa_grid(), &[1.0, 10.0]);
        assert_eq!(cv.nu_grid(), &[5.0, 50.0]);
        assert_eq!(cv.feasible_candidate_count(2), 4);
        assert_eq!(cv.feasible_candidate_count(49), 2);
        assert_eq!(cv.feasible_candidate_count(50), 0);
        // Selection still works and scores each unique candidate once.
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 10);
        let sel = cv.select(&early, &late, &mut r).unwrap();
        assert_eq!(sel.grid.len(), 4);
    }

    #[test]
    fn infeasible_grid_error_names_the_grid() {
        let cv = CrossValidation::new(vec![1.0], vec![1.0, 2.0], 2).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: Vector::zeros(2),
            cov: Matrix::identity(2),
        };
        let late = truth().sample_matrix(&mut r, 8);
        let err = cv.select(&early, &late, &mut r).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("no feasible (kappa0, nu0) candidate"),
            "infeasible-grid failure must blame the grid: {msg}"
        );
        assert!(!msg.contains("failed to score"), "{msg}");
    }

    #[test]
    fn all_failed_error_names_the_failing_stage_not_the_grid() {
        // The grid IS feasible (nu0 = 5 > d = 2); a NaN late sample makes
        // every candidate fail at the sufficient-statistics stage. The old
        // code conflated this with grid infeasibility.
        let cv = CrossValidation::new(vec![1.0, 10.0], vec![5.0], 2).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: Vector::zeros(2),
            cov: Matrix::identity(2),
        };
        let mut late = truth().sample_matrix(&mut r, 8);
        late[(3, 1)] = f64::NAN;
        for naive in [false, true] {
            let err = cv
                .clone()
                .with_naive_scoring(naive)
                .select_seeded(&early, &late, 11, 1)
                .unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("failed to score"),
                "naive = {naive}: all-failed diagnosis must name scoring, got: {msg}"
            );
            assert!(
                msg.contains("sufficient statistics"),
                "naive = {naive}: failing stage must be named, got: {msg}"
            );
            assert!(
                !msg.contains("no feasible"),
                "naive = {naive}: must not blame a feasible grid, got: {msg}"
            );
        }
    }

    #[test]
    fn fast_scoring_matches_naive_oracle() {
        let cv = CrossValidation::with_repeats(vec![1.0, 4.67, 120.0], vec![2.5, 7.0, 310.0], 3, 2)
            .unwrap();
        assert!(!cv.naive_scoring());
        let naive_cv = cv.clone().with_naive_scoring(true);
        assert!(naive_cv.naive_scoring());
        let mut r = rng();
        let early = MomentEstimate {
            mean: Vector::from_slice(&[0.4, -0.2]),
            cov: truth().cov() * 1.7,
        };
        let late = truth().sample_matrix(&mut r, 12);
        let fast = cv.select_seeded(&early, &late, 7, 1).unwrap();
        let naive = naive_cv.select_seeded(&early, &late, 7, 1).unwrap();
        assert_eq!(fast.grid.len(), naive.grid.len());
        for (f, n) in fast.grid.iter().zip(naive.grid.iter()) {
            assert_eq!((f.kappa0, f.nu0), (n.kappa0, n.nu0));
            let tol = 1e-10 * n.score.abs().max(1.0);
            assert!(
                (f.score - n.score).abs() <= tol,
                "({}, {}): fast {} vs naive {}",
                f.kappa0,
                f.nu0,
                f.score,
                n.score
            );
        }
        assert_eq!((fast.kappa0, fast.nu0), (naive.kappa0, naive.nu0));
    }

    #[test]
    fn grid_scores_are_reported_for_all_feasible_points() {
        let cv = CrossValidation::new(vec![1.0, 10.0], vec![5.0, 50.0], 2).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 10);
        let sel = cv.select(&early, &late, &mut r).unwrap();
        assert_eq!(sel.grid.len(), 4);
        assert!(sel.grid.iter().all(|p| p.score.is_finite()));
        // Winner really is the argmax of the reported grid.
        let max = sel
            .grid
            .iter()
            .cloned()
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .unwrap();
        assert_eq!(max.score, sel.score);
    }
}
