//! Two-dimensional cross-validation for hyper-parameter selection (§4.2).
//!
//! The confidence hyper-parameters `(ν₀, κ₀)` encode how much the early
//! stage is trusted; the paper selects them by sweeping a two-dimensional
//! candidate grid (Fig. 2a) and scoring each combination with Q-fold
//! cross-validation on the few late-stage samples (Fig. 2b): fit the BMF
//! MAP estimate on `Q−1` folds, evaluate the Gaussian log-likelihood
//! (Eq. 9) of the held-out fold, and average over the `Q` runs.

use crate::map::BmfEstimator;
use crate::parallel;
use crate::prior::NormalWishartPrior;
use crate::{BmfError, MomentEstimate, Result};
use bmf_linalg::Matrix;
use bmf_stats::{descriptive, MultivariateNormal};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One scored grid point of the CV search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CvGridPoint {
    /// Candidate `κ₀`.
    pub kappa0: f64,
    /// Candidate `ν₀`.
    pub nu0: f64,
    /// Mean held-out log-likelihood per test sample (−∞ when the
    /// combination could not be evaluated).
    pub score: f64,
}

/// The result of one hyper-parameter search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperParameterSelection {
    /// Selected `κ₀`.
    pub kappa0: f64,
    /// Selected `ν₀`.
    pub nu0: f64,
    /// Score of the winning combination.
    pub score: f64,
    /// The full scored grid (paper Fig. 2a), for diagnostics/plots.
    pub grid: Vec<CvGridPoint>,
}

impl HyperParameterSelection {
    /// Distils the scored grid into the health-report surface summary:
    /// the argmax, the *spread* (best score minus the median finite
    /// score — near zero means the surface is flat and the selection
    /// arbitrary), and whether the argmax sits on the **lower** edge of
    /// either hyper-parameter axis as actually searched (the feasible
    /// grid). The upper edge is not flagged: the top of the paper's
    /// `[1, 1000]` grid already means near-total trust in the prior,
    /// whereas the bottom edge suggests the optimum may lie below the
    /// searched range.
    pub fn surface_summary(&self) -> bmf_obs::health::CvSurface {
        let mut finite: Vec<f64> = self
            .grid
            .iter()
            .map(|p| p.score)
            .filter(|s| s.is_finite())
            .collect();
        finite.sort_by(f64::total_cmp);
        let median = if finite.is_empty() {
            f64::NAN
        } else {
            finite[finite.len() / 2]
        };
        let spread = self.score - median;
        let min_kappa = self
            .grid
            .iter()
            .map(|p| p.kappa0)
            .fold(f64::INFINITY, f64::min);
        let min_nu = self
            .grid
            .iter()
            .map(|p| p.nu0)
            .fold(f64::INFINITY, f64::min);
        // A single-point axis has no interior, so its "edge" is not
        // informative; only flag axes with at least two distinct values.
        let kappa_values: std::collections::BTreeSet<u64> =
            self.grid.iter().map(|p| p.kappa0.to_bits()).collect();
        let nu_values: std::collections::BTreeSet<u64> =
            self.grid.iter().map(|p| p.nu0.to_bits()).collect();
        let boundary_hit = (kappa_values.len() > 1 && self.kappa0 == min_kappa)
            || (nu_values.len() > 1 && self.nu0 == min_nu);
        bmf_obs::health::CvSurface {
            kappa0: self.kappa0,
            nu0: self.nu0,
            score: self.score,
            spread,
            boundary_hit,
            severity: bmf_obs::health::classify_cv_surface(spread, boundary_hit),
        }
    }
}

/// Two-dimensional Q-fold cross-validation over a `(κ₀, ν₀)` grid.
///
/// The default reproduces the paper's setup: both axes span `[1, 1000]`
/// (log-spaced, 12 points each — the paper reports non-integer optima such
/// as κ₀ = 4.67, so the grid must be finer than integers), with `Q = 4`
/// folds.
///
/// # Example
///
/// ```
/// use bmf_core::cv::CrossValidation;
///
/// let cv = CrossValidation::default();
/// assert_eq!(cv.fold_count(), 4);
/// assert!(cv.kappa_grid().len() >= 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    kappa_grid: Vec<f64>,
    nu_grid: Vec<f64>,
    q: usize,
    repeats: usize,
}

/// Builds a log-spaced grid over `[lo, hi]` with `points` entries.
fn log_grid(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    if points == 1 {
        // A single point has no spacing to interpolate; the general
        // formula below would divide by zero and yield NaN.
        return vec![lo];
    }
    let llo = lo.ln();
    let lhi = hi.ln();
    (0..points)
        .map(|k| (llo + (lhi - llo) * k as f64 / (points - 1) as f64).exp())
        .collect()
}

impl Default for CrossValidation {
    fn default() -> Self {
        CrossValidation {
            kappa_grid: log_grid(1.0, 1000.0, 12),
            nu_grid: log_grid(1.0, 1000.0, 12),
            q: 4,
            repeats: 8,
        }
    }
}

impl CrossValidation {
    /// Creates a search with explicit grids and fold count.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::InvalidConfig`] for empty grids, non-positive
    /// candidates or `q < 2`.
    pub fn new(kappa_grid: Vec<f64>, nu_grid: Vec<f64>, q: usize) -> Result<Self> {
        Self::with_repeats(kappa_grid, nu_grid, q, 1)
    }

    /// Creates a **repeated** Q-fold search: the fold assignment is
    /// re-randomised `repeats` times and scores are averaged, which
    /// stabilises the argmax when the folds are tiny (e.g. n = 8, Q = 4 →
    /// two-sample test folds).
    ///
    /// # Errors
    ///
    /// As [`CrossValidation::new`], plus `repeats >= 1`.
    pub fn with_repeats(
        kappa_grid: Vec<f64>,
        nu_grid: Vec<f64>,
        q: usize,
        repeats: usize,
    ) -> Result<Self> {
        if kappa_grid.is_empty() || nu_grid.is_empty() {
            return Err(BmfError::InvalidConfig {
                reason: "hyper-parameter grids must be non-empty".to_string(),
            });
        }
        if q < 2 {
            return Err(BmfError::InvalidConfig {
                reason: format!("need at least 2 folds, got {q}"),
            });
        }
        if repeats == 0 {
            return Err(BmfError::InvalidConfig {
                reason: "need at least one CV repeat".to_string(),
            });
        }
        for &k in &kappa_grid {
            if !(k > 0.0) || !k.is_finite() {
                return Err(BmfError::InvalidConfig {
                    reason: format!("kappa candidate {k} must be positive and finite"),
                });
            }
        }
        for &v in &nu_grid {
            if !(v > 0.0) || !v.is_finite() {
                return Err(BmfError::InvalidConfig {
                    reason: format!("nu candidate {v} must be positive and finite"),
                });
            }
        }
        Ok(CrossValidation {
            kappa_grid,
            nu_grid,
            q,
            repeats,
        })
    }

    /// The κ₀ candidate grid.
    pub fn kappa_grid(&self) -> &[f64] {
        &self.kappa_grid
    }

    /// The ν₀ candidate grid.
    pub fn nu_grid(&self) -> &[f64] {
        &self.nu_grid
    }

    /// Number of folds `Q`.
    pub fn fold_count(&self) -> usize {
        self.q
    }

    /// Number of re-randomised fold assignments averaged per grid point.
    pub fn repeat_count(&self) -> usize {
        self.repeats
    }

    /// Runs the search: scores every `(κ₀, ν₀)` combination by Q-fold CV
    /// on `late_samples` and returns the maximiser.
    ///
    /// Candidates with `ν₀ ≤ d` are skipped (the prior of Eq. 20 requires
    /// `ν₀ > d`); the effective fold count shrinks to `n` when `n < Q`.
    ///
    /// Draws a single root seed from `rng` and delegates to
    /// [`CrossValidation::select_seeded`] on one thread; pass an explicit
    /// seed and thread count there for parallel execution.
    ///
    /// # Errors
    ///
    /// * [`BmfError::InvalidSamples`] when there are fewer than 2 samples
    ///   or dimensions mismatch.
    /// * [`BmfError::InvalidConfig`] when no grid candidate is feasible.
    pub fn select<R: Rng + ?Sized>(
        &self,
        early: &MomentEstimate,
        late_samples: &Matrix,
        rng: &mut R,
    ) -> Result<HyperParameterSelection> {
        self.select_seeded(early, late_samples, rng.next_u64(), 1)
    }

    /// [`CrossValidation::select`] with an explicit root seed and thread
    /// count: candidates are scored in parallel over `threads` scoped
    /// workers, and the per-repeat fold shuffles are derived from `seed`
    /// (stream [`parallel::streams::CV_FOLD_SHUFFLE`], index = repeat).
    ///
    /// The result is **bit-identical for every `threads` value**: each
    /// candidate's score is accumulated entirely within one task in repeat
    /// order, and tasks are combined in candidate order, so neither the
    /// random streams nor the floating-point reduction order depend on
    /// scheduling.
    ///
    /// # Errors
    ///
    /// As [`CrossValidation::select`], plus [`BmfError::Worker`] if a
    /// scoring worker panics.
    pub fn select_seeded(
        &self,
        early: &MomentEstimate,
        late_samples: &Matrix,
        seed: u64,
        threads: usize,
    ) -> Result<HyperParameterSelection> {
        let _span = bmf_obs::span("cv.select");
        early.validate()?;
        let d = early.dim();
        let n = late_samples.nrows();
        if n < 2 {
            return Err(BmfError::InvalidSamples {
                reason: format!("cross-validation needs at least 2 late-stage samples, got {n}"),
            });
        }
        if late_samples.ncols() != d {
            return Err(BmfError::InvalidSamples {
                reason: format!(
                    "late samples have {} columns, early moments have {d}",
                    late_samples.ncols()
                ),
            });
        }

        // Feasible candidate pairs (Eq. 20 needs ν₀ > d).
        let candidates: Vec<(f64, f64)> = self
            .nu_grid
            .iter()
            .filter(|&&nu0| nu0 > d as f64 + 1e-9)
            .flat_map(|&nu0| self.kappa_grid.iter().map(move |&kappa0| (kappa0, nu0)))
            .collect();

        // Assemble each repeat's folds and training sets up front (cheap —
        // data movement only), with the row shuffle of repeat `rep` drawn
        // from its own derived seed so it is independent of both thread
        // count and the caller's RNG state.
        let mut fold_sets: Vec<(Vec<Matrix>, Vec<Matrix>)> = Vec::with_capacity(self.repeats);
        for rep in 0..self.repeats {
            let mut rng = rand::rngs::StdRng::seed_from_u64(parallel::derive_seed(
                seed,
                parallel::streams::CV_FOLD_SHUFFLE,
                rep as u64,
            ));
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng);
            let shuffled = Matrix::from_fn(n, d, |i, j| late_samples[(order[i], j)]);
            let q = self.q.min(n);
            let folds = descriptive::split_folds(&shuffled, q)?;

            // Pre-assemble the Q training sets (all folds but one).
            let mut training: Vec<Matrix> = Vec::with_capacity(q);
            for k in 0..q {
                let parts: Vec<&Matrix> = folds
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != k)
                    .map(|(_, f)| f)
                    .collect();
                training.push(descriptive::vstack(&parts)?);
            }
            fold_sets.push((training, folds));
        }

        // Score candidates in parallel; this is the hot loop (one BMF fit
        // per candidate × repeat × fold).
        bmf_obs::counters::CV_CANDIDATES.add(candidates.len() as u64);
        let scores = parallel::map_slice(&candidates, threads, |_, &(kappa0, nu0)| {
            let _span = bmf_obs::span("cv.candidate");
            let mut score = 0.0_f64;
            for (training, folds) in &fold_sets {
                score += self.score_combination(early, kappa0, nu0, training, folds)
                    / self.repeats as f64;
            }
            score
        })?;

        let mut grid = Vec::with_capacity(candidates.len());
        let mut best: Option<CvGridPoint> = None;
        for (&(kappa0, nu0), &score) in candidates.iter().zip(scores.iter()) {
            let point = CvGridPoint { kappa0, nu0, score };
            grid.push(point);
            let better = match best {
                None => score.is_finite(),
                Some(b) => score > b.score,
            };
            if better {
                best = Some(point);
            }
        }

        let best = best.ok_or_else(|| BmfError::InvalidConfig {
            reason: format!(
                "no feasible (kappa0, nu0) candidate for d = {d}; extend the nu grid above d"
            ),
        })?;
        if !best.score.is_finite() {
            return Err(BmfError::InvalidConfig {
                reason: "every hyper-parameter combination failed to score".to_string(),
            });
        }
        Ok(HyperParameterSelection {
            kappa0: best.kappa0,
            nu0: best.nu0,
            score: best.score,
            grid,
        })
    }

    /// Two-stage search: the coarse grid of [`CrossValidation::select`]
    /// followed by a zoomed re-search on a fine local grid around the
    /// coarse argmax (one coarse-grid step each way, `zoom_points` per
    /// axis). This is how optima like the paper's κ₀ = 4.67 — between
    /// integer grid lines — are resolved.
    ///
    /// Draws a single root seed from `rng` and delegates to
    /// [`CrossValidation::select_refined_seeded`] on one thread.
    ///
    /// # Errors
    ///
    /// As [`CrossValidation::select`].
    pub fn select_refined<R: Rng + ?Sized>(
        &self,
        early: &MomentEstimate,
        late_samples: &Matrix,
        zoom_points: usize,
        rng: &mut R,
    ) -> Result<HyperParameterSelection> {
        self.select_refined_seeded(early, late_samples, zoom_points, rng.next_u64(), 1)
    }

    /// [`CrossValidation::select_refined`] with an explicit root seed and
    /// thread count. The coarse and zoomed stages run on seeds derived
    /// from `seed` (streams [`parallel::streams::CV_COARSE`] and
    /// [`parallel::streams::CV_ZOOM`]), each scoring its grid across
    /// `threads` workers — bit-identical for every thread count.
    ///
    /// The zoomed ν₀ window is clamped above the feasibility floor
    /// `ν₀ > d`, so no zoom point is wasted on candidates the prior must
    /// reject; if the zoomed stage still fails (e.g. a degenerate window
    /// around an extreme coarse optimum), the coarse selection is
    /// returned instead of an error.
    ///
    /// # Errors
    ///
    /// As [`CrossValidation::select_seeded`] (from the coarse stage —
    /// zoomed-stage failures fall back to the coarse result).
    pub fn select_refined_seeded(
        &self,
        early: &MomentEstimate,
        late_samples: &Matrix,
        zoom_points: usize,
        seed: u64,
        threads: usize,
    ) -> Result<HyperParameterSelection> {
        if zoom_points < 2 {
            return Err(BmfError::InvalidConfig {
                reason: format!("zoom grid needs at least 2 points per axis, got {zoom_points}"),
            });
        }
        let coarse_seed = parallel::derive_seed(seed, parallel::streams::CV_COARSE, 0);
        let zoom_seed = parallel::derive_seed(seed, parallel::streams::CV_ZOOM, 0);
        let coarse = self.select_seeded(early, late_samples, coarse_seed, threads)?;

        // Local window: one coarse step each way in log space (with the
        // coarse step ratio estimated from the grids themselves).
        let step_ratio = |grid: &[f64]| -> f64 {
            if grid.len() < 2 {
                2.0
            } else {
                (grid[grid.len() - 1] / grid[0]).powf(1.0 / (grid.len() as f64 - 1.0))
            }
        };
        let rk = step_ratio(&self.kappa_grid);
        let rn = step_ratio(&self.nu_grid);
        let zoom = |centre: f64, ratio: f64, floor: Option<f64>| -> Vec<f64> {
            let (mut lo, mut hi) = (centre / ratio, centre * ratio);
            if lo > hi {
                // A descending grid yields ratio < 1; normalise.
                std::mem::swap(&mut lo, &mut hi);
            }
            if let Some(floor) = floor {
                // Clamp the window into the feasible region ν₀ > d. The
                // coarse optimum is feasible, so centre (≤ hi) is a valid
                // upper bound whenever the floor crosses hi.
                lo = lo.max(floor);
                hi = hi.max(lo);
            }
            log_grid(lo, hi, zoom_points)
        };
        let d = early.dim();
        let nu_floor = (d as f64 + 1e-9) * (1.0 + 1e-9);
        let refined = CrossValidation::with_repeats(
            zoom(coarse.kappa0, rk, None),
            zoom(coarse.nu0, rn, Some(nu_floor)),
            self.q,
            self.repeats,
        )
        .and_then(|fine| fine.select_seeded(early, late_samples, zoom_seed, threads));
        let refined = match refined {
            Ok(r) => r,
            // The zoom is an opportunistic improvement; a degenerate fine
            // grid (e.g. non-finite window endpoints around an extreme
            // coarse optimum) must not discard the valid coarse result.
            Err(_) => return Ok(coarse),
        };

        // Keep whichever stage scored better (the zoom can only help when
        // its folds agree), and report the union of both scored grids.
        let mut grid = coarse.grid;
        grid.extend(refined.grid);
        if refined.score >= coarse.score {
            Ok(HyperParameterSelection {
                kappa0: refined.kappa0,
                nu0: refined.nu0,
                score: refined.score,
                grid,
            })
        } else {
            Ok(HyperParameterSelection {
                kappa0: coarse.kappa0,
                nu0: coarse.nu0,
                score: coarse.score,
                grid,
            })
        }
    }

    /// Scores one combination: mean held-out per-sample log-likelihood.
    fn score_combination(
        &self,
        early: &MomentEstimate,
        kappa0: f64,
        nu0: f64,
        training: &[Matrix],
        folds: &[Matrix],
    ) -> f64 {
        let prior = match NormalWishartPrior::from_early_moments(early, kappa0, nu0) {
            Ok(p) => p,
            Err(_) => return f64::NEG_INFINITY,
        };
        let estimator = match BmfEstimator::new(prior) {
            Ok(e) => e,
            Err(_) => return f64::NEG_INFINITY,
        };
        let mut total = 0.0;
        let mut count = 0usize;
        for (train, test) in training.iter().zip(folds.iter()) {
            if test.nrows() == 0 || train.nrows() == 0 {
                continue;
            }
            bmf_obs::counters::CV_FOLD_EVALS.incr();
            let est = match estimator.estimate(train) {
                Ok(e) => e,
                Err(_) => return f64::NEG_INFINITY,
            };
            let model = match MultivariateNormal::new(est.map.mean.clone(), est.map.cov.clone()) {
                Ok(m) => m,
                Err(_) => return f64::NEG_INFINITY,
            };
            match model.ln_likelihood(test) {
                Ok(ll) => {
                    total += ll;
                    count += test.nrows();
                }
                Err(_) => return f64::NEG_INFINITY,
            }
        }
        if count == 0 {
            f64::NEG_INFINITY
        } else {
            total / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_linalg::{Matrix, Vector};
    use bmf_stats::MultivariateNormal;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    fn truth() -> MultivariateNormal {
        MultivariateNormal::new(
            Vector::from_slice(&[0.0, 0.0]),
            Matrix::from_rows(&[&[1.0, 0.5], &[0.5, 1.0]]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn log_grid_spans_range() {
        let g = log_grid(1.0, 1000.0, 12);
        assert_eq!(g.len(), 12);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[11] - 1000.0).abs() < 1e-9);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn log_grid_single_point_is_lo_not_nan() {
        // Regression: `points == 1` used to interpolate with a 0/0 step
        // and produce a NaN candidate, which the CV constructor rejects.
        assert_eq!(log_grid(5.0, 1000.0, 1), vec![5.0]);
        let cv = CrossValidation::new(vec![3.0], vec![7.0], 2).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 8);
        let sel = cv.select(&early, &late, &mut r).unwrap();
        assert_eq!((sel.kappa0, sel.nu0), (3.0, 7.0));
    }

    #[test]
    fn construction_validates() {
        assert!(CrossValidation::new(vec![], vec![1.0], 4).is_err());
        assert!(CrossValidation::new(vec![1.0], vec![], 4).is_err());
        assert!(CrossValidation::new(vec![1.0], vec![5.0], 1).is_err());
        assert!(CrossValidation::new(vec![0.0], vec![5.0], 4).is_err());
        assert!(CrossValidation::new(vec![1.0], vec![-5.0], 4).is_err());
        assert!(CrossValidation::new(vec![1.0], vec![5.0], 4).is_ok());
    }

    #[test]
    fn good_prior_selects_high_confidence() {
        // Early moments == truth: averaged over repetitions, CV should
        // trust the prior (large ν₀) — a single run sits on a flat score
        // landscape, so we test the average and the outcome (BMF error
        // not worse than MLE).
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let cv = CrossValidation::default();
        let reps = 10;
        let mut nu_sum = 0.0;
        let mut bmf_err = 0.0;
        let mut mle_err = 0.0;
        for _ in 0..reps {
            let late = truth().sample_matrix(&mut r, 16);
            let sel = cv.select(&early, &late, &mut r).unwrap();
            assert!(sel.score.is_finite());
            assert!(!sel.grid.is_empty());
            nu_sum += sel.nu0;
            let prior =
                crate::prior::NormalWishartPrior::from_early_moments(&early, sel.kappa0, sel.nu0)
                    .unwrap();
            let est = crate::map::BmfEstimator::new(prior)
                .unwrap()
                .estimate(&late)
                .unwrap();
            bmf_err += est.map.cov.max_abs_diff(truth().cov()).unwrap();
            let mle = crate::mle::MleEstimator::new().estimate(&late).unwrap();
            mle_err += mle.cov.max_abs_diff(truth().cov()).unwrap();
        }
        let nu_mean = nu_sum / reps as f64;
        assert!(
            nu_mean > 20.0,
            "expected large average nu0 for a perfect covariance prior, got {nu_mean}"
        );
        assert!(
            bmf_err < mle_err,
            "with a perfect prior BMF ({bmf_err}) must beat MLE ({mle_err})"
        );
    }

    #[test]
    fn wrong_mean_prior_selects_small_kappa() {
        // Early mean badly wrong, covariance right: CV should distrust the
        // mean (small κ₀) but keep the covariance confidence.
        let mut r = rng();
        let early = MomentEstimate {
            mean: Vector::from_slice(&[3.0, -3.0]), // 3σ wrong
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 32);
        let sel = CrossValidation::default()
            .select(&early, &late, &mut r)
            .unwrap();
        assert!(
            sel.kappa0 < 20.0,
            "expected small kappa0 for a wrong mean prior, got {}",
            sel.kappa0
        );
        assert!(
            sel.nu0 > 20.0,
            "covariance prior is good, expected large nu0, got {}",
            sel.nu0
        );
    }

    #[test]
    fn wrong_cov_prior_selects_small_nu() {
        // Early covariance wildly wrong (inflated 25×), mean right.
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov() * 25.0,
        };
        let late = truth().sample_matrix(&mut r, 64);
        let sel = CrossValidation::default()
            .select(&early, &late, &mut r)
            .unwrap();
        assert!(
            sel.nu0 < 50.0,
            "expected small nu0 for a wrong covariance prior, got {}",
            sel.nu0
        );
    }

    #[test]
    fn infeasible_nu_candidates_are_skipped() {
        // Grid contains only nu0 <= d → no feasible candidate.
        let cv = CrossValidation::new(vec![1.0], vec![1.0, 2.0], 2).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: Vector::zeros(2),
            cov: Matrix::identity(2),
        };
        let late = truth().sample_matrix(&mut r, 8);
        assert!(cv.select(&early, &late, &mut r).is_err());
        // Adding one feasible candidate fixes it.
        let cv = CrossValidation::new(vec![1.0], vec![2.0, 5.0], 2).unwrap();
        let sel = cv.select(&early, &late, &mut r).unwrap();
        assert_eq!(sel.nu0, 5.0);
    }

    #[test]
    fn rejects_insufficient_samples() {
        let cv = CrossValidation::default();
        let mut r = rng();
        let early = MomentEstimate {
            mean: Vector::zeros(2),
            cov: Matrix::identity(2),
        };
        let one = Matrix::from_rows(&[&[0.1, 0.2]]).unwrap();
        assert!(cv.select(&early, &one, &mut r).is_err());
        let wrong_width = Matrix::zeros(8, 3);
        assert!(cv.select(&early, &wrong_width, &mut r).is_err());
    }

    #[test]
    fn fold_count_adapts_to_tiny_n() {
        // n = 3 < Q = 4: the effective fold count shrinks, still works.
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 3);
        let sel = CrossValidation::default()
            .select(&early, &late, &mut r)
            .unwrap();
        assert!(sel.score.is_finite());
    }

    #[test]
    fn refined_search_zooms_between_grid_lines() {
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 24);
        let cv = CrossValidation::default();
        let refined = cv.select_refined(&early, &late, 5, &mut r).unwrap();
        // The refined optimum never scores below the coarse grid's best.
        let coarse_best = refined
            .grid
            .iter()
            .take(cv.kappa_grid().len() * cv.nu_grid().len())
            .map(|p| p.score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(refined.score >= coarse_best - 1e-12);
        assert!(refined.nu0 > 2.0);
        assert!(cv.select_refined(&early, &late, 1, &mut r).is_err());
    }

    #[test]
    fn refined_zoom_clamps_nu_window_above_d() {
        // Coarse optimum ν₀ = 2.1 sits just above d = 2; the naive zoom
        // window [2.1/476, 2.1·476] would waste half its ν₀ points on the
        // infeasible region ν₀ ≤ d. With the clamp every zoomed candidate
        // is feasible, so the reported grid holds the full fine grid.
        let cv = CrossValidation::with_repeats(vec![5.0], vec![2.1, 1000.0], 2, 2).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov() * 25.0, // inflated prior → small ν₀ wins
        };
        let late = truth().sample_matrix(&mut r, 32);
        let zoom_points = 4;
        let sel = cv
            .select_refined(&early, &late, zoom_points, &mut r)
            .unwrap();
        let coarse_candidates = 2; // 1 κ₀ × 2 feasible ν₀
        assert_eq!(
            sel.grid.len(),
            coarse_candidates + zoom_points * zoom_points,
            "zoomed nu window must be clamped into the feasible region"
        );
        assert!(sel.grid.iter().all(|p| p.nu0 > 2.0));
        assert!(sel.nu0 > 2.0);
    }

    #[test]
    fn refined_falls_back_to_coarse_when_zoom_fails() {
        // A coarse optimum at the very bottom of the float range makes the
        // zoom window's lower edge underflow to 0 (5e-324 / 2 rounds to
        // zero), which the fine-grid constructor rejects as non-positive;
        // select_refined must return the valid coarse result, not error.
        let kappa_min = f64::MIN_POSITIVE * f64::EPSILON; // 5e-324
        assert_eq!(kappa_min / 2.0, 0.0);
        let cv = CrossValidation::with_repeats(vec![kappa_min], vec![5.0], 2, 1).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: Vector::zeros(2),
            cov: Matrix::identity(2),
        };
        let late = truth().sample_matrix(&mut r, 8);
        let sel = cv.select_refined(&early, &late, 3, &mut r).unwrap();
        assert_eq!(sel.kappa0, kappa_min);
        assert_eq!(sel.nu0, 5.0);
        assert!(sel.score.is_finite());
    }

    #[test]
    fn select_seeded_is_bit_identical_across_thread_counts() {
        let cv =
            CrossValidation::with_repeats(vec![1.0, 10.0, 100.0], vec![5.0, 50.0, 500.0], 3, 3)
                .unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 16);
        let reference = cv.select_seeded(&early, &late, 42, 1).unwrap();
        for threads in [2, 3, 7, 16] {
            let par = cv.select_seeded(&early, &late, 42, threads).unwrap();
            assert_eq!(par, reference, "threads = {threads}");
        }
        let refined_ref = cv.select_refined_seeded(&early, &late, 3, 42, 1).unwrap();
        for threads in [2, 7] {
            let par = cv
                .select_refined_seeded(&early, &late, 3, 42, threads)
                .unwrap();
            assert_eq!(par, refined_ref, "threads = {threads}");
        }
    }

    #[test]
    fn grid_scores_are_reported_for_all_feasible_points() {
        let cv = CrossValidation::new(vec![1.0, 10.0], vec![5.0, 50.0], 2).unwrap();
        let mut r = rng();
        let early = MomentEstimate {
            mean: truth().mean().clone(),
            cov: truth().cov().clone(),
        };
        let late = truth().sample_matrix(&mut r, 10);
        let sel = cv.select(&early, &late, &mut r).unwrap();
        assert_eq!(sel.grid.len(), 4);
        assert!(sel.grid.iter().all(|p| p.score.is_finite()));
        // Winner really is the argmax of the reported grid.
        let max = sel
            .grid
            .iter()
            .cloned()
            .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
            .unwrap();
        assert_eq!(max.score, sel.score);
    }
}
