//! Streaming drift monitor over windowed late-stage batches.
//!
//! The BMF prior assumes the early- and late-stage populations share a
//! distribution up to the §4.1 shift/scale; when a process drifts (or
//! the populations decorrelate, as the multiple-population work warns),
//! that assumption silently decays. [`DriftMonitor`] watches for this:
//! late-stage samples stream in, every full window of `window` samples
//! is closed into a [`DriftWindow`] comparing the window's sample
//! moments against the early-stage reference — Gaussian KL divergence
//! `KL(N_window ‖ N_early)` plus the mean distance and the relative
//! Frobenius drift of the covariance — and each window is classified
//! with the documented thresholds from [`bmf_obs::health`].
//!
//! Monitoring is strictly passive: the monitor only *reads* sample
//! values, never touches an RNG stream, and its outputs feed telemetry
//! (the `drift.windows` / `drift.alerts` counters and the dashboard),
//! never an estimator. Estimates are bit-identical with a monitor
//! attached or not.

use crate::{BmfError, MomentEstimate, Result};
use bmf_linalg::{Cholesky, Matrix};
use bmf_obs::health::{classify_drift, DriftTimeline, DriftWindow, Severity};
use bmf_stats::descriptive;

/// Configuration for [`DriftMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Samples per window. Must exceed the data dimension `d`, or the
    /// window covariance is always singular. The default of 32 keeps
    /// the finite-window KL bias `(d + d(d+1)/2)/(2·window)` well below
    /// the warn threshold for the dimensionalities in this repo.
    pub window: usize,
    /// KL divergence (nats) above which a window warns.
    pub kl_warn: f64,
    /// KL divergence (nats) above which a window is critical.
    pub kl_critical: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 32,
            kl_warn: bmf_obs::health::DRIFT_KL_WARN,
            kl_critical: bmf_obs::health::DRIFT_KL_CRITICAL,
        }
    }
}

impl DriftConfig {
    fn classify(&self, kl: f64) -> Severity {
        if !kl.is_finite() || kl > self.kl_critical {
            Severity::Critical
        } else if kl > self.kl_warn {
            Severity::Warn
        } else {
            Severity::Ok
        }
    }
}

/// Streaming monitor comparing windowed late-stage batches against a
/// fixed early-stage reference model. See the module docs.
#[derive(Debug)]
pub struct DriftMonitor {
    early: MomentEstimate,
    chol_early: Cholesky,
    ln_det_early: f64,
    early_frob: f64,
    config: DriftConfig,
    /// Row-major buffer of the current (not yet closed) window.
    buffer: Vec<f64>,
    samples_seen: usize,
    timeline: DriftTimeline,
}

impl DriftMonitor {
    /// Creates a monitor against the early-stage reference `early`.
    ///
    /// # Errors
    ///
    /// [`BmfError::InvalidConfig`] when the window does not exceed the
    /// dimension or the thresholds are not ordered finite positives;
    /// propagates the Cholesky error when the reference covariance is
    /// not SPD.
    pub fn new(early: &MomentEstimate, config: DriftConfig) -> Result<Self> {
        let d = early.dim();
        if config.window <= d {
            return Err(BmfError::InvalidConfig {
                reason: format!(
                    "drift window = {} must exceed the dimension d = {d} \
                     (a smaller window has a singular sample covariance)",
                    config.window
                ),
            });
        }
        if !(config.kl_warn > 0.0)
            || !(config.kl_critical > config.kl_warn)
            || !config.kl_critical.is_finite()
        {
            return Err(BmfError::InvalidConfig {
                reason: format!(
                    "drift thresholds warn = {}, critical = {} must satisfy \
                     0 < warn < critical < inf",
                    config.kl_warn, config.kl_critical
                ),
            });
        }
        early.validate()?;
        let chol_early = Cholesky::new(&early.cov)?;
        let ln_det_early = chol_early.ln_det();
        let early_frob = early.cov.norm_frobenius();
        Ok(DriftMonitor {
            early: early.clone(),
            chol_early,
            ln_det_early,
            early_frob,
            config,
            buffer: Vec::with_capacity(config.window * d),
            samples_seen: 0,
            timeline: DriftTimeline::default(),
        })
    }

    /// The configuration the monitor runs with.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Feeds one sample (length `d`).
    ///
    /// # Errors
    ///
    /// [`BmfError::InvalidSamples`] when the sample length differs from
    /// the reference dimension.
    pub fn push_sample(&mut self, row: &[f64]) -> Result<()> {
        let d = self.early.dim();
        if row.len() != d {
            return Err(BmfError::InvalidSamples {
                reason: format!(
                    "drift sample has {} entries, reference dimension is {d}",
                    row.len()
                ),
            });
        }
        self.buffer.extend_from_slice(row);
        self.samples_seen += 1;
        if self.buffer.len() == self.config.window * d {
            self.close_window();
        }
        Ok(())
    }

    /// Feeds every row of `samples` in order.
    ///
    /// # Errors
    ///
    /// As [`DriftMonitor::push_sample`].
    pub fn push_batch(&mut self, samples: &Matrix) -> Result<()> {
        let d = self.early.dim();
        if samples.ncols() != d {
            return Err(BmfError::InvalidSamples {
                reason: format!(
                    "drift batch has {} columns, reference dimension is {d}",
                    samples.ncols()
                ),
            });
        }
        for i in 0..samples.nrows() {
            let row: Vec<f64> = (0..d).map(|j| samples[(i, j)]).collect();
            self.push_sample(&row)?;
        }
        Ok(())
    }

    /// Closed windows and alerts so far. Samples still in the partial
    /// buffer are not represented (they close with the next full window).
    pub fn timeline(&self) -> &DriftTimeline {
        &self.timeline
    }

    /// Consumes the monitor, returning the timeline.
    pub fn into_timeline(self) -> DriftTimeline {
        self.timeline
    }

    fn close_window(&mut self) {
        let d = self.early.dim();
        let n = self.config.window;
        let index = self.timeline.windows.len();
        let start_sample = self.samples_seen - n;
        let window = Matrix::from_fn(n, d, |i, j| self.buffer[i * d + j]);
        self.buffer.clear();

        let (kl, mean_dist, cov_frob) = self.window_divergence(&window);
        let severity = self.config.classify(kl);
        // The documented-threshold classification must agree with the
        // default-config one when defaults are in use.
        debug_assert!(self.config != DriftConfig::default() || severity == classify_drift(kl));
        bmf_obs::counters::DRIFT_WINDOWS.incr();
        if severity >= Severity::Warn {
            bmf_obs::counters::DRIFT_ALERTS.incr();
            // Runtime-computed level (Warn vs Error) so the raw `emit`
            // entry point is used instead of the `event!` macro.
            let level = if severity == Severity::Critical {
                bmf_obs::Level::Error
            } else {
                bmf_obs::Level::Warn
            };
            if bmf_obs::event::stream_on(level) {
                let mut fields = String::new();
                bmf_obs::event::push_field(&mut fields, "window", &index);
                bmf_obs::event::push_field(&mut fields, "kl", &kl);
                bmf_obs::event::push_field(&mut fields, "mean_dist", &mean_dist);
                bmf_obs::event::push_field(&mut fields, "cov_frob", &cov_frob);
                bmf_obs::event::push_field(&mut fields, "severity", &severity.label());
                bmf_obs::event::emit(level, "drift.alert", fields);
            }
            self.timeline.alerts.push(format!(
                "window {index} (samples {start_sample}..{}): KL = {kl:.4} nats > {} threshold {} \
                 (mean dist {mean_dist:.4}, cov drift {cov_frob:.4})",
                start_sample + n,
                severity.label(),
                if severity == Severity::Critical {
                    self.config.kl_critical
                } else {
                    self.config.kl_warn
                },
            ));
        }
        self.timeline.windows.push(DriftWindow {
            index,
            start_sample,
            n,
            kl,
            mean_dist,
            cov_frob,
            severity,
        });
        // Live view: a scraper polling /health mid-run sees the drift
        // state as of the last closed window, not just at exit. Gated so
        // the recording-off path stays a single relaxed load.
        if bmf_obs::is_enabled() {
            bmf_obs::serve::publish_drift(&self.timeline);
        }
    }

    /// `(KL, mean distance, relative Frobenius drift)` of one window
    /// against the early reference. A window whose sample covariance is
    /// not SPD reports `KL = +∞` (maximal drift signal) rather than an
    /// error: a degenerate window *is* an anomaly.
    fn window_divergence(&self, window: &Matrix) -> (f64, f64, f64) {
        let d = self.early.dim() as f64;
        let Ok(mu_w) = descriptive::mean_vector(window) else {
            return (f64::INFINITY, f64::NAN, f64::NAN);
        };
        let Ok(sigma_w) = descriptive::covariance_mle(window) else {
            return (f64::INFINITY, f64::NAN, f64::NAN);
        };

        let mut mean_dist_sq = 0.0;
        for j in 0..self.early.dim() {
            let delta = mu_w[j] - self.early.mean[j];
            mean_dist_sq += delta * delta;
        }
        let mean_dist = mean_dist_sq.sqrt();

        let mut diff = sigma_w.clone();
        diff -= &self.early.cov;
        let cov_frob = if self.early_frob > 0.0 {
            diff.norm_frobenius() / self.early_frob
        } else {
            f64::NAN
        };

        // KL(N_w ‖ N_E) = ½ [ tr(Σ_E⁻¹ Σ_w) + (μ_E−μ_w)ᵀ Σ_E⁻¹ (μ_E−μ_w)
        //                     − d + ln det Σ_E − ln det Σ_w ]
        let trace_term = match self.chol_early.solve_mat(&sigma_w).and_then(|m| m.trace()) {
            Ok(t) => t,
            Err(_) => return (f64::INFINITY, mean_dist, cov_frob),
        };
        let maha = match self.chol_early.mahalanobis_sq(&mu_w, &self.early.mean) {
            Ok(m) => m,
            Err(_) => return (f64::INFINITY, mean_dist, cov_frob),
        };
        let ln_det_w = match Cholesky::new(&sigma_w) {
            Ok(chol) => chol.ln_det(),
            Err(_) => return (f64::INFINITY, mean_dist, cov_frob),
        };
        let kl = 0.5 * (trace_term + maha - d + self.ln_det_early - ln_det_w);
        // Numerical round-off can nudge a zero-drift KL fractionally
        // negative; clamp so classification sees a proper divergence.
        (kl.max(0.0), mean_dist, cov_frob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_linalg::Vector;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn reference(d: usize) -> MomentEstimate {
        MomentEstimate {
            mean: Vector::zeros(d),
            cov: Matrix::from_fn(d, d, |i, j| if i == j { 1.0 } else { 0.2 }),
        }
    }

    fn gaussian_ish(d: usize, n: usize, seed: u64, offset: f64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, d, |_, _| {
            // Sum of uniforms ≈ normal; exact shape is irrelevant, the
            // windows just need realistic spread around `offset`.
            let s: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum();
            offset + (s - 6.0) * 0.45
        })
    }

    #[test]
    fn config_validation_rejects_bad_setups() {
        let early = reference(3);
        assert!(DriftMonitor::new(
            &early,
            DriftConfig {
                window: 3,
                ..DriftConfig::default()
            }
        )
        .is_err());
        assert!(DriftMonitor::new(
            &early,
            DriftConfig {
                kl_warn: 5.0,
                kl_critical: 2.0,
                ..DriftConfig::default()
            }
        )
        .is_err());
        assert!(DriftMonitor::new(&early, DriftConfig::default()).is_ok());
    }

    #[test]
    fn stationary_stream_stays_ok_and_counts_windows() {
        let d = 2;
        let early_samples = gaussian_ish(d, 2000, 11, 0.0);
        let early = MomentEstimate {
            mean: descriptive::mean_vector(&early_samples).unwrap(),
            cov: descriptive::covariance_mle(&early_samples).unwrap(),
        };
        let mut monitor = DriftMonitor::new(&early, DriftConfig::default()).unwrap();
        monitor
            .push_batch(&gaussian_ish(d, 3 * 32 + 5, 12, 0.0))
            .unwrap();
        let timeline = monitor.timeline();
        assert_eq!(timeline.windows.len(), 3); // 5 samples still buffered
        assert_eq!(timeline.overall(), Severity::Ok, "{timeline:?}");
        assert!(timeline.alerts.is_empty());
        for (i, w) in timeline.windows.iter().enumerate() {
            assert_eq!(w.index, i);
            assert_eq!(w.start_sample, i * 32);
            assert_eq!(w.n, 32);
            assert!(w.kl.is_finite() && w.kl >= 0.0);
        }
    }

    #[test]
    fn shifted_stream_raises_alerts() {
        let d = 2;
        let early_samples = gaussian_ish(d, 2000, 11, 0.0);
        let early = MomentEstimate {
            mean: descriptive::mean_vector(&early_samples).unwrap(),
            cov: descriptive::covariance_mle(&early_samples).unwrap(),
        };
        let mut monitor = DriftMonitor::new(&early, DriftConfig::default()).unwrap();
        // One healthy window, then a hard mean shift.
        monitor.push_batch(&gaussian_ish(d, 32, 12, 0.0)).unwrap();
        monitor.push_batch(&gaussian_ish(d, 64, 13, 4.0)).unwrap();
        let timeline = monitor.timeline();
        assert_eq!(timeline.windows.len(), 3);
        assert_eq!(timeline.windows[0].severity, Severity::Ok);
        assert!(timeline.windows[1].severity >= Severity::Warn);
        assert!(timeline.windows[1].kl > timeline.windows[0].kl);
        assert!(timeline.windows[1].mean_dist > 1.0);
        assert_eq!(timeline.alerts.len(), 2);
        assert!(timeline.overall() >= Severity::Warn);
    }

    #[test]
    fn drift_counters_track_windows_and_alerts() {
        // Serialized against other obs tests via the shared registry.
        let early = reference(2);
        let mut monitor = DriftMonitor::new(&early, DriftConfig::default()).unwrap();
        bmf_obs::reset();
        bmf_obs::enable();
        monitor.push_batch(&gaussian_ish(2, 64, 5, 0.0)).unwrap();
        monitor.push_batch(&gaussian_ish(2, 32, 6, 8.0)).unwrap();
        bmf_obs::disable();
        let snap = bmf_obs::metrics::snapshot();
        assert_eq!(snap.counter("drift.windows"), 3);
        assert!(snap.counter("drift.alerts") >= 1);
        bmf_obs::reset();
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let early = reference(3);
        let mut monitor = DriftMonitor::new(&early, DriftConfig::default()).unwrap();
        assert!(monitor.push_sample(&[1.0, 2.0]).is_err());
        assert!(monitor
            .push_batch(&Matrix::from_fn(4, 2, |_, _| 0.0))
            .is_err());
    }

    #[test]
    fn identical_moments_give_near_zero_kl() {
        // Feed the exact reference-generating samples: window moments
        // approximate the reference, so KL stays near the finite-window
        // bias level.
        let d = 2;
        let samples = gaussian_ish(d, 320, 21, 0.0);
        let early = MomentEstimate {
            mean: descriptive::mean_vector(&samples).unwrap(),
            cov: descriptive::covariance_mle(&samples).unwrap(),
        };
        let mut monitor = DriftMonitor::new(
            &early,
            DriftConfig {
                window: 320,
                ..DriftConfig::default()
            },
        )
        .unwrap();
        monitor.push_batch(&samples).unwrap();
        let w = &monitor.timeline().windows[0];
        assert!(w.kl < 0.05, "kl = {}", w.kl);
        assert!(w.cov_frob < 1e-9);
        assert!(w.mean_dist < 1e-9);
    }
}
