//! Multivariate moment estimation via Bayesian model fusion (BMF).
//!
//! Reference implementation of *“Efficient Multivariate Moment Estimation
//! via Bayesian Model Fusion for Analog and Mixed-Signal Circuits”*
//! (Huang, Fang, Yang, Zeng, Li — DAC 2015).
//!
//! Given abundant **early-stage** data (e.g. schematic-level Monte Carlo)
//! and very few **late-stage** samples (e.g. post-layout simulation or
//! silicon measurement), the method estimates the late-stage mean vector
//! `μ` and covariance matrix `Σ` of `d` correlated performance metrics by:
//!
//! 1. **Shift & scale** (§4.1, [`transform::ShiftScale`]) — centre each
//!    stage on its nominal performance and normalise by the early-stage
//!    per-dimension spread, making the two distributions comparable.
//! 2. **Prior encoding** (§3.2, [`prior::NormalWishartPrior`]) — place a
//!    normal-Wishart prior whose mode sits on the early-stage moments.
//! 3. **Hyper-parameter selection** (§4.2, [`cv::CrossValidation`]) —
//!    pick the confidence parameters `(ν₀, κ₀)` by two-dimensional Q-fold
//!    cross-validation on the few late-stage samples.
//! 4. **MAP estimation** (§3.3, [`map::BmfEstimator`]) — the closed-form
//!    posterior mode of Eq. 31–32.
//!
//! The MLE baseline of the paper's comparison lives in [`mle`], the error
//! criteria of Eq. 37–38 in [`error_metrics`], and a complete
//! figure-regeneration harness in [`experiment`]. Parametric-yield
//! estimation from the fitted moments — the application motivating the
//! paper — is provided in [`yield_estimation`] (plain Monte Carlo plus
//! mean-shift importance sampling for high-sigma failures).
//!
//! Companion modules extend the reproduction: [`univariate`] (the
//! single-metric prior art the paper generalises), [`bernoulli`] (BMF-BD
//! pass/fail yield fusion), [`diagnostics`] (Mardia normality test for the
//! Gaussian assumption), [`robustness`] (non-Gaussian stress harness) and
//! [`io`] (CSV interchange).
//!
//! # Quickstart
//!
//! ```
//! use bmf_core::prelude::*;
//! use bmf_linalg::{Matrix, Vector};
//! use bmf_stats::MultivariateNormal;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), bmf_core::BmfError> {
//! // Early-stage knowledge: moments of 10k cheap samples.
//! let truth = MultivariateNormal::new(
//!     Vector::from_slice(&[0.1, -0.1]),
//!     Matrix::from_rows(&[&[1.0, 0.6], &[0.6, 1.2]]).unwrap(),
//! ).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//!
//! let early = MomentEstimate {
//!     mean: Vector::zeros(2),
//!     cov: Matrix::from_rows(&[&[1.0, 0.55], &[0.55, 1.15]]).unwrap(),
//! };
//!
//! // Very few late-stage samples.
//! let late_samples = truth.sample_matrix(&mut rng, 10);
//!
//! // Fuse: CV-select hyper-parameters, then MAP-estimate the moments.
//! let selection = CrossValidation::default().select(&early, &late_samples, &mut rng)?;
//! let prior = NormalWishartPrior::from_early_moments(
//!     &early, selection.kappa0, selection.nu0)?;
//! let estimate = BmfEstimator::new(prior)?.estimate(&late_samples)?;
//! assert_eq!(estimate.map.mean.len(), 2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
// Validation deliberately uses `!(x > 0.0)`-style negated comparisons: they
// reject NaN along with out-of-domain values in one test, which is exactly
// the semantics every constructor here wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod bernoulli;
pub mod cv;
pub mod diagnostics;
pub mod drift;
mod error;
pub mod error_metrics;
pub mod experiment;
pub mod guard;
pub mod health;
pub mod io;
pub mod map;
pub mod mle;
pub mod parallel;
pub mod pipeline;
pub mod prior;
pub mod robustness;
pub mod sequential;
pub mod suffstats;
pub mod transform;
pub mod univariate;
pub mod yield_estimation;

pub use error::BmfError;

/// Convenience result alias for fallible BMF operations.
pub type Result<T> = std::result::Result<T, BmfError>;

use bmf_linalg::{Matrix, Vector};
use serde::{Deserialize, Serialize};

/// A point estimate of the first two multivariate moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MomentEstimate {
    /// Estimated mean vector `μ` (length `d`).
    pub mean: Vector,
    /// Estimated covariance matrix `Σ` (`d × d`).
    pub cov: Matrix,
}

impl MomentEstimate {
    /// Dimension `d` of the estimate.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Validates internal consistency: matching shapes, finite entries,
    /// symmetric covariance.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::InvalidMoments`] when any check fails.
    pub fn validate(&self) -> Result<()> {
        if self.cov.shape() != (self.mean.len(), self.mean.len()) {
            return Err(BmfError::InvalidMoments {
                reason: format!(
                    "mean has length {} but covariance is {}x{}",
                    self.mean.len(),
                    self.cov.nrows(),
                    self.cov.ncols()
                ),
            });
        }
        if !self.mean.is_finite() || !self.cov.is_finite() {
            return Err(BmfError::InvalidMoments {
                reason: "non-finite moment entries".to_string(),
            });
        }
        if !self.cov.is_symmetric(1e-9) {
            return Err(BmfError::InvalidMoments {
                reason: "covariance is not symmetric".to_string(),
            });
        }
        Ok(())
    }
}

/// Common imports for downstream users.
pub mod prelude {
    pub use crate::cv::{CrossValidation, HyperParameterSelection};
    pub use crate::drift::{DriftConfig, DriftMonitor};
    pub use crate::error_metrics::{error_cov, error_mean};
    pub use crate::experiment::{SweepConfig, TwoStageData};
    pub use crate::guard::{DataQualityReport, GuardPolicy};
    pub use crate::health::assess as assess_health;
    pub use crate::map::{BmfEstimate, BmfEstimator};
    pub use crate::mle::MleEstimator;
    pub use crate::pipeline::{FailureMode, FallbackLevel, FusionReport, RobustPipeline};
    pub use crate::prior::NormalWishartPrior;
    pub use crate::suffstats::SufficientStats;
    pub use crate::transform::ShiftScale;
    pub use crate::yield_estimation::{SpecLimits, YieldEstimate};
    pub use crate::{BmfError, MomentEstimate};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moment_estimate_validation() {
        let ok = MomentEstimate {
            mean: Vector::zeros(2),
            cov: Matrix::identity(2),
        };
        assert!(ok.validate().is_ok());
        assert_eq!(ok.dim(), 2);

        let bad_shape = MomentEstimate {
            mean: Vector::zeros(3),
            cov: Matrix::identity(2),
        };
        assert!(bad_shape.validate().is_err());

        let mut asym = Matrix::identity(2);
        asym[(0, 1)] = 0.5;
        let bad_sym = MomentEstimate {
            mean: Vector::zeros(2),
            cov: asym,
        };
        assert!(bad_sym.validate().is_err());

        let mut inf = Matrix::identity(2);
        inf[(0, 0)] = f64::INFINITY;
        let bad_finite = MomentEstimate {
            mean: Vector::zeros(2),
            cov: inf,
        };
        assert!(bad_finite.validate().is_err());
    }
}
