//! Normal-Wishart prior construction from early-stage moments (§3.2).

use crate::{BmfError, MomentEstimate, Result};
use bmf_linalg::{Cholesky, Matrix, Vector};
use bmf_stats::NormalWishart;
use serde::{Deserialize, Serialize};

/// The BMF prior: a normal-Wishart distribution anchored on early-stage
/// moments.
///
/// The paper sets the hyper-parameters so that the prior **mode** coincides
/// with the early-stage knowledge (Eq. 17–20):
///
/// * `μ₀ = μ_E`
/// * `T₀ = Λ_E / (ν₀ − d)`   so that   `Λ_M = (ν₀ − d) T₀ = Λ_E`
///
/// leaving only the two confidence scalars `(κ₀, ν₀)` free; they are chosen
/// by cross-validation ([`crate::cv`]).
///
/// # Example
///
/// ```
/// use bmf_core::prior::NormalWishartPrior;
/// use bmf_core::MomentEstimate;
/// use bmf_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), bmf_core::BmfError> {
/// let early = MomentEstimate {
///     mean: Vector::from_slice(&[1.0, 2.0]),
///     cov: Matrix::from_rows(&[&[1.0, 0.2], &[0.2, 0.5]]).unwrap(),
/// };
/// let prior = NormalWishartPrior::from_early_moments(&early, 5.0, 20.0)?;
/// let (mu_mode, sigma_mode) = prior.mode_moments()?;
/// // The prior mode reproduces the early-stage moments exactly.
/// assert!((&mu_mode - &early.mean).norm2() < 1e-12);
/// assert!(sigma_mode.max_abs_diff(&early.cov).unwrap() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NormalWishartPrior {
    mu0: Vector,
    kappa0: f64,
    nu0: f64,
    /// Early-stage covariance `Σ_E` (kept, since the MAP update uses it
    /// directly via Eq. 32).
    sigma_e: Matrix,
}

impl NormalWishartPrior {
    /// Builds the prior from early-stage moments and confidence
    /// hyper-parameters.
    ///
    /// # Errors
    ///
    /// * [`BmfError::InvalidHyperParameter`] when `κ₀ <= 0` or `ν₀ <= d`.
    /// * [`BmfError::InvalidMoments`] when the early moments are malformed.
    /// * [`BmfError::Linalg`] when `Σ_E` is not positive definite.
    pub fn from_early_moments(early: &MomentEstimate, kappa0: f64, nu0: f64) -> Result<Self> {
        early.validate()?;
        let d = early.dim() as f64;
        if !(kappa0 > 0.0) || !kappa0.is_finite() {
            return Err(BmfError::InvalidHyperParameter {
                name: "kappa0",
                value: kappa0,
                constraint: "kappa0 > 0 and finite".to_string(),
            });
        }
        if !(nu0 > d) || !nu0.is_finite() {
            return Err(BmfError::InvalidHyperParameter {
                name: "nu0",
                value: nu0,
                constraint: format!("nu0 > d = {d} (T0 = Λ_E/(ν0−d) must be positive)"),
            });
        }
        // Verify Σ_E is SPD now so estimation can't fail later.
        Cholesky::new(&early.cov)?;
        Ok(NormalWishartPrior {
            mu0: early.mean.clone(),
            kappa0,
            nu0,
            sigma_e: early.cov.clone(),
        })
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.mu0.len()
    }

    /// Location hyper-parameter `μ₀` (= early-stage mean).
    pub fn mu0(&self) -> &Vector {
        &self.mu0
    }

    /// Mean-confidence hyper-parameter `κ₀`.
    pub fn kappa0(&self) -> f64 {
        self.kappa0
    }

    /// Covariance-confidence hyper-parameter `ν₀`.
    pub fn nu0(&self) -> f64 {
        self.nu0
    }

    /// Early-stage covariance `Σ_E`.
    pub fn sigma_e(&self) -> &Matrix {
        &self.sigma_e
    }

    /// Wishart scale matrix `T₀ = Λ_E / (ν₀ − d)` (Eq. 20).
    ///
    /// # Errors
    ///
    /// Propagates the (already verified) SPD inversion.
    pub fn t0(&self) -> Result<Matrix> {
        let d = self.dim() as f64;
        let lambda_e = Cholesky::new(&self.sigma_e)?.inverse()?;
        Ok(&lambda_e / (self.nu0 - d))
    }

    /// The prior mode expressed as moments `(μ_M, Σ_M)` — by construction
    /// the early-stage moments (Eq. 15–18).
    ///
    /// # Errors
    ///
    /// Propagates matrix inversion failures.
    pub fn mode_moments(&self) -> Result<(Vector, Matrix)> {
        // Λ_M = (ν₀ − d) T₀ = Λ_E  ⇒  Σ_M = Σ_E.
        Ok((self.mu0.clone(), self.sigma_e.clone()))
    }

    /// Converts to the generic [`NormalWishart`] distribution from
    /// `bmf-stats` (for sampling from the prior or evaluating its density).
    ///
    /// # Errors
    ///
    /// Propagates construction failures (unreachable for validated
    /// hyper-parameters).
    pub fn to_normal_wishart(&self) -> Result<NormalWishart> {
        Ok(NormalWishart::new(
            self.mu0.clone(),
            self.kappa0,
            self.nu0,
            self.t0()?,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn early() -> MomentEstimate {
        MomentEstimate {
            mean: Vector::from_slice(&[1.0, -2.0]),
            cov: Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).unwrap(),
        }
    }

    #[test]
    fn construction_validates_hyper_parameters() {
        let e = early();
        assert!(NormalWishartPrior::from_early_moments(&e, 0.0, 10.0).is_err());
        assert!(NormalWishartPrior::from_early_moments(&e, -1.0, 10.0).is_err());
        assert!(NormalWishartPrior::from_early_moments(&e, 1.0, 2.0).is_err()); // nu0 <= d
        assert!(NormalWishartPrior::from_early_moments(&e, 1.0, f64::NAN).is_err());
        assert!(NormalWishartPrior::from_early_moments(&e, 1.0, 2.1).is_ok());
    }

    #[test]
    fn construction_rejects_bad_moments() {
        let bad = MomentEstimate {
            mean: Vector::zeros(2),
            cov: Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(), // indefinite
        };
        assert!(NormalWishartPrior::from_early_moments(&bad, 1.0, 10.0).is_err());
    }

    #[test]
    fn t0_satisfies_equation_20() {
        let e = early();
        let prior = NormalWishartPrior::from_early_moments(&e, 3.0, 12.0).unwrap();
        let t0 = prior.t0().unwrap();
        // (ν₀ − d) T₀ = Λ_E  ⇔  (ν₀ − d) T₀ Σ_E = I
        let prod = (&t0 * (12.0 - 2.0)).mat_mul(&e.cov).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-12);
    }

    #[test]
    fn mode_is_early_moments() {
        let e = early();
        let prior = NormalWishartPrior::from_early_moments(&e, 7.0, 30.0).unwrap();
        let (mu, sigma) = prior.mode_moments().unwrap();
        assert_eq!(mu, e.mean);
        assert_eq!(sigma, e.cov);
    }

    #[test]
    fn converts_to_normal_wishart_with_matching_mode() {
        let e = early();
        let prior = NormalWishartPrior::from_early_moments(&e, 2.0, 9.0).unwrap();
        let nw = prior.to_normal_wishart().unwrap();
        assert_eq!(nw.kappa0(), 2.0);
        assert_eq!(nw.nu0(), 9.0);
        // Mode of Λ in the joint density is (ν₀−d)T₀ = Λ_E.
        let (_, lambda_mode) = nw.mode();
        let sigma_mode = Cholesky::new(&lambda_mode).unwrap().inverse().unwrap();
        assert!(sigma_mode.max_abs_diff(&e.cov).unwrap() < 1e-10);
    }

    #[test]
    fn accessors() {
        let e = early();
        let prior = NormalWishartPrior::from_early_moments(&e, 2.5, 8.0).unwrap();
        assert_eq!(prior.dim(), 2);
        assert_eq!(prior.kappa0(), 2.5);
        assert_eq!(prior.nu0(), 8.0);
        assert_eq!(prior.mu0(), &e.mean);
        assert_eq!(prior.sigma_e(), &e.cov);
    }
}
