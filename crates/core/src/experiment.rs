//! Figure-regeneration harness: the paper's evaluation protocol (§5).
//!
//! For each circuit the paper plots estimation error versus the number of
//! late-stage samples `n`, comparing MLE against BMF (Fig. 4 for the
//! op-amp, Fig. 5 for the ADC). This module implements that protocol
//! end-to-end on a [`TwoStageData`] bundle:
//!
//! 1. normalise both stages with the shift-and-scale transform (§4.1),
//! 2. compute the early-stage prior moments and the "exact" late-stage
//!    moments from the full Monte Carlo pools,
//! 3. for every `n` in the sweep and every repetition: draw `n` late
//!    samples, run MLE and BMF (with two-dimensional CV), record the
//!    errors of Eq. 37–38,
//! 4. average over repetitions and derive the **cost-reduction factor**
//!    (how many MLE samples match BMF's accuracy — the paper's headline
//!    16×/3×/10× numbers).

use crate::cv::CrossValidation;
use crate::error_metrics::{error_cov, error_mean};
use crate::map::BmfEstimator;
use crate::mle::MleEstimator;
use crate::parallel;
use crate::prior::NormalWishartPrior;
use crate::transform::ShiftScale;
use crate::{BmfError, MomentEstimate, Result};
use bmf_linalg::{Matrix, Vector};
use bmf_stats::descriptive;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Raw two-stage Monte Carlo data for one circuit: the input of every
/// experiment. Produced by `bmf-circuits`' Monte Carlo engine (or any other
/// simulator/measurement source).
#[derive(Debug, Clone)]
pub struct TwoStageData {
    /// Metric names (length `d`).
    pub metric_names: Vec<String>,
    /// Early-stage nominal performance `P_E,NOM`.
    pub early_nominal: Vector,
    /// Early-stage sample pool (`N_E × d`).
    pub early_samples: Matrix,
    /// Late-stage nominal performance `P_L,NOM`.
    pub late_nominal: Vector,
    /// Late-stage sample pool (`N_L × d`) — subsampled in the sweep, with
    /// the full pool providing the "exact" reference moments.
    pub late_samples: Matrix,
}

impl TwoStageData {
    /// Validates shape consistency.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::InvalidSamples`] on any inconsistency.
    pub fn validate(&self) -> Result<()> {
        let d = self.metric_names.len();
        if d == 0 {
            return Err(BmfError::InvalidSamples {
                reason: "need at least one metric".to_string(),
            });
        }
        for (what, len) in [
            ("early_nominal", self.early_nominal.len()),
            ("late_nominal", self.late_nominal.len()),
            ("early_samples columns", self.early_samples.ncols()),
            ("late_samples columns", self.late_samples.ncols()),
        ] {
            if len != d {
                return Err(BmfError::InvalidSamples {
                    reason: format!("{what} has dimension {len}, expected {d}"),
                });
            }
        }
        if self.early_samples.nrows() < 2 || self.late_samples.nrows() < 2 {
            return Err(BmfError::InvalidSamples {
                reason: "both stages need at least 2 samples".to_string(),
            });
        }
        if !self.early_samples.is_finite() || !self.late_samples.is_finite() {
            return Err(BmfError::InvalidSamples {
                reason: "sample pools contain non-finite values".to_string(),
            });
        }
        Ok(())
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.metric_names.len()
    }
}

/// Normalised study: everything the estimators need, in scaled space.
#[derive(Debug, Clone)]
pub struct PreparedStudy {
    /// Early-stage moments in normalised space — the BMF prior knowledge.
    pub early_moments: MomentEstimate,
    /// "Exact" late-stage moments (from the full pool) in normalised space.
    pub exact_late: MomentEstimate,
    /// Normalised late-stage pool for subsampling.
    pub late_pool: Matrix,
    /// The early-stage transform (shift = `P_E,NOM`, scale = early σ).
    pub early_transform: ShiftScale,
    /// The late-stage transform (shift = `P_L,NOM`, scale = early σ).
    pub late_transform: ShiftScale,
}

/// Applies §4.1 to raw two-stage data: shift each stage by its nominal,
/// scale both by the early-stage per-dimension standard deviation, then
/// compute prior and reference moments from the full pools.
///
/// # Errors
///
/// Propagates validation and descriptive-statistics failures.
pub fn prepare(data: &TwoStageData) -> Result<PreparedStudy> {
    data.validate()?;
    let early_sd = descriptive::column_stddevs(&data.early_samples)?;
    for (j, &s) in early_sd.iter().enumerate() {
        if !(s > 0.0) {
            // A constant metric is a study-configuration problem (the
            // metric does not vary, so it cannot be fused), not a bad
            // sample — surface it as InvalidConfig naming the metric
            // rather than letting ShiftScale emit a bare scale error.
            return Err(BmfError::InvalidConfig {
                reason: format!(
                    "metric '{}' (column {j}) has zero early-stage spread; \
                     §4.1 scaling is undefined — drop the metric or fix the testbench",
                    data.metric_names[j]
                ),
            });
        }
    }
    let early_transform = ShiftScale::from_nominal_and_early_sd(&data.early_nominal, &early_sd)?;
    let late_transform = ShiftScale::from_nominal_and_early_sd(&data.late_nominal, &early_sd)?;

    let early_norm = early_transform.apply_samples(&data.early_samples)?;
    let late_norm = late_transform.apply_samples(&data.late_samples)?;

    let early_moments = MomentEstimate {
        mean: descriptive::mean_vector(&early_norm)?,
        cov: descriptive::covariance_mle(&early_norm)?,
    };
    let exact_late = MomentEstimate {
        mean: descriptive::mean_vector(&late_norm)?,
        cov: descriptive::covariance_mle(&late_norm)?,
    };
    early_moments.validate()?;
    exact_late.validate()?;

    Ok(PreparedStudy {
        early_moments,
        exact_late,
        late_pool: late_norm,
        early_transform,
        late_transform,
    })
}

/// Configuration of one error-vs-n sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Late-stage sample counts to evaluate (the figure's x-axis).
    pub sample_sizes: Vec<usize>,
    /// Repetitions per sample count (the paper uses 100).
    pub repetitions: usize,
    /// Hyper-parameter search strategy.
    pub cv: CrossValidation,
    /// RNG seed for reproducible subsampling.
    pub seed: u64,
}

impl SweepConfig {
    /// The paper's op-amp/ADC protocol: `n ∈ {8, 16, …, 512}`, 100
    /// repetitions.
    pub fn paper_default() -> Self {
        SweepConfig {
            sample_sizes: vec![8, 16, 32, 64, 128, 256, 512],
            repetitions: 100,
            cv: CrossValidation::default(),
            seed: 2015,
        }
    }

    /// Validates the configuration against a pool size.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::InvalidConfig`] for empty axes, zero
    /// repetitions, or sample sizes exceeding the pool.
    pub fn validate(&self, pool_size: usize) -> Result<()> {
        if self.sample_sizes.is_empty() {
            return Err(BmfError::InvalidConfig {
                reason: "sweep needs at least one sample size".to_string(),
            });
        }
        if self.repetitions == 0 {
            return Err(BmfError::InvalidConfig {
                reason: "sweep needs at least one repetition".to_string(),
            });
        }
        for &n in &self.sample_sizes {
            if n < 2 {
                return Err(BmfError::InvalidConfig {
                    reason: format!("sample size {n} too small (need >= 2)"),
                });
            }
            if n > pool_size {
                return Err(BmfError::InvalidConfig {
                    reason: format!("sample size {n} exceeds the late-stage pool ({pool_size})"),
                });
            }
        }
        Ok(())
    }
}

/// Aggregated errors for one sample count `n` — one point of each curve in
/// the paper's Figures 4/5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Number of late-stage samples.
    pub n: usize,
    /// Mean (over repetitions) of Eq. 37 for the MLE estimator.
    pub mle_mean_err: f64,
    /// Mean of Eq. 37 for BMF.
    pub bmf_mean_err: f64,
    /// Mean of Eq. 38 for the MLE estimator.
    pub mle_cov_err: f64,
    /// Mean of Eq. 38 for BMF.
    pub bmf_cov_err: f64,
    /// Average CV-selected `κ₀` (paper reports these, e.g. 4.67@n=32).
    pub mean_kappa0: f64,
    /// Average CV-selected `ν₀` (e.g. 557.3@n=32).
    pub mean_nu0: f64,
}

/// Full sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// One row per sample count, ascending in `n`.
    pub rows: Vec<SweepRow>,
}

impl SweepResult {
    /// Renders the result as an aligned text table (the harness binaries
    /// print this).
    pub fn to_table(&self) -> String {
        let mut out = String::from(
            "    n |  mean_err MLE |  mean_err BMF |   cov_err MLE |   cov_err BMF |   kappa0 |      nu0\n",
        );
        out.push_str(
            "------+---------------+---------------+---------------+---------------+----------+---------\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:5} | {:13.5} | {:13.5} | {:13.5} | {:13.5} | {:8.2} | {:8.1}\n",
                r.n,
                r.mle_mean_err,
                r.bmf_mean_err,
                r.mle_cov_err,
                r.bmf_cov_err,
                r.mean_kappa0,
                r.mean_nu0
            ));
        }
        out
    }
}

/// Draws `n` distinct rows from `pool` uniformly at random.
fn subsample<R: Rng + ?Sized>(pool: &Matrix, n: usize, rng: &mut R) -> Matrix {
    let total = pool.nrows();
    let mut idx: Vec<usize> = (0..total).collect();
    idx.shuffle(rng);
    idx.truncate(n);
    Matrix::from_fn(n, pool.ncols(), |i, j| pool[(idx[i], j)])
}

/// One repetition's contribution to a [`SweepRow`].
#[derive(Debug, Clone, Copy, Default)]
struct RepetitionOutcome {
    mle_mean_err: f64,
    bmf_mean_err: f64,
    mle_cov_err: f64,
    bmf_cov_err: f64,
    kappa0: f64,
    nu0: f64,
}

/// Deterministic seed for repetition `rep` of sample size `n`, so parallel
/// and sequential execution see identical random streams. The sample size
/// acts as the stream, the repetition as the task index; the mixing is
/// [`parallel::derive_seed`]'s.
fn repetition_seed(base: u64, n: usize, rep: usize) -> u64 {
    parallel::derive_seed(base, n as u64, rep as u64)
}

/// Runs one repetition (subsample → MLE + CV + BMF → errors) with its own
/// deterministic RNG.
fn run_repetition(
    study: &PreparedStudy,
    config: &SweepConfig,
    n: usize,
    rep: usize,
) -> Result<RepetitionOutcome> {
    let _span = bmf_obs::span("sweep.repetition");
    let mut rng = rand::rngs::StdRng::seed_from_u64(repetition_seed(config.seed, n, rep));
    let samples = subsample(&study.late_pool, n, &mut rng);

    let mle_est = MleEstimator::new().estimate(&samples)?;
    let selection = config.cv.select(&study.early_moments, &samples, &mut rng)?;
    let prior = NormalWishartPrior::from_early_moments(
        &study.early_moments,
        selection.kappa0,
        selection.nu0,
    )?;
    let bmf_est = BmfEstimator::new(prior)?.estimate(&samples)?;

    Ok(RepetitionOutcome {
        mle_mean_err: error_mean(&mle_est, &study.exact_late)?,
        bmf_mean_err: error_mean(&bmf_est.map, &study.exact_late)?,
        mle_cov_err: error_cov(&mle_est, &study.exact_late)?,
        bmf_cov_err: error_cov(&bmf_est.map, &study.exact_late)?,
        kappa0: selection.kappa0,
        nu0: selection.nu0,
    })
}

fn aggregate(n: usize, outcomes: &[RepetitionOutcome]) -> SweepRow {
    let r = outcomes.len() as f64;
    SweepRow {
        n,
        mle_mean_err: outcomes.iter().map(|o| o.mle_mean_err).sum::<f64>() / r,
        bmf_mean_err: outcomes.iter().map(|o| o.bmf_mean_err).sum::<f64>() / r,
        mle_cov_err: outcomes.iter().map(|o| o.mle_cov_err).sum::<f64>() / r,
        bmf_cov_err: outcomes.iter().map(|o| o.bmf_cov_err).sum::<f64>() / r,
        mean_kappa0: outcomes.iter().map(|o| o.kappa0).sum::<f64>() / r,
        mean_nu0: outcomes.iter().map(|o| o.nu0).sum::<f64>() / r,
    }
}

/// Runs the paper's error-vs-n sweep on a prepared study.
///
/// Each repetition draws its RNG from a deterministic per-`(n, rep)` seed,
/// so results are reproducible and identical to
/// [`run_error_sweep_parallel`].
///
/// # Errors
///
/// Propagates configuration validation and estimation failures.
pub fn run_error_sweep(study: &PreparedStudy, config: &SweepConfig) -> Result<SweepResult> {
    config.validate(study.late_pool.nrows())?;
    let mut rows = Vec::with_capacity(config.sample_sizes.len());
    for &n in &config.sample_sizes {
        let outcomes: Result<Vec<RepetitionOutcome>> = (0..config.repetitions)
            .map(|rep| run_repetition(study, config, n, rep))
            .collect();
        rows.push(aggregate(n, &outcomes?));
    }
    Ok(SweepResult { rows })
}

/// Multi-threaded version of [`run_error_sweep`]: repetitions are
/// distributed over `threads` scoped workers via
/// [`parallel::map_range`]. Because every repetition owns a deterministic
/// seed, the result is **bit-identical** to the sequential run regardless
/// of scheduling; `threads` may exceed the repetition count (the surplus
/// workers are simply not spawned).
///
/// # Errors
///
/// * [`BmfError::InvalidConfig`] when `threads == 0`.
/// * [`BmfError::Worker`] when a repetition panics — the panic is
///   contained instead of aborting the caller.
/// * Propagates the first repetition failure encountered.
pub fn run_error_sweep_parallel(
    study: &PreparedStudy,
    config: &SweepConfig,
    threads: usize,
) -> Result<SweepResult> {
    if threads == 0 {
        return Err(BmfError::InvalidConfig {
            reason: "need at least one worker thread".to_string(),
        });
    }
    config.validate(study.late_pool.nrows())?;
    let mut rows = Vec::with_capacity(config.sample_sizes.len());
    for &n in &config.sample_sizes {
        let _span = bmf_obs::span("sweep.sample_size");
        let outcomes = parallel::map_range(config.repetitions, threads, |rep| {
            run_repetition(study, config, n, rep)
        })?;
        let outcomes: Result<Vec<RepetitionOutcome>> = outcomes.into_iter().collect();
        rows.push(aggregate(n, &outcomes?));
    }
    Ok(SweepResult { rows })
}

/// Which error curve a cost-reduction query refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Mean-vector error (Eq. 37).
    Mean,
    /// Covariance error (Eq. 38).
    Covariance,
}

/// Cost-reduction factors: for each BMF point `(n, err)`, the number of
/// samples MLE needs (log-log interpolated on the measured MLE curve) to
/// reach the same error, divided by `n`. This is the paper's headline
/// metric (16× for the op-amp covariance, ~3× for its mean, >10× for the
/// ADC).
///
/// Returns one `(n, factor)` pair per sweep row; `factor` is
/// `f64::INFINITY` when even the largest measured MLE run is worse than
/// BMF at `n` (the true factor exceeds the measured range).
pub fn cost_reduction(result: &SweepResult, kind: ErrorKind) -> Vec<(usize, f64)> {
    let pick = |r: &SweepRow| -> (f64, f64) {
        match kind {
            ErrorKind::Mean => (r.mle_mean_err, r.bmf_mean_err),
            ErrorKind::Covariance => (r.mle_cov_err, r.bmf_cov_err),
        }
    };
    // MLE error is monotone decreasing in n (up to noise); build the curve.
    let mle_curve: Vec<(f64, f64)> = result
        .rows
        .iter()
        .map(|r| (r.n as f64, pick(r).0))
        .collect();

    result
        .rows
        .iter()
        .map(|r| {
            let (_, bmf_err) = pick(r);
            let n_equiv = mle_samples_for_error(&mle_curve, bmf_err);
            let factor = match n_equiv {
                Some(ne) => ne / r.n as f64,
                None => f64::INFINITY,
            };
            (r.n, factor)
        })
        .collect()
}

/// Log-log interpolation: the MLE sample count whose error equals `target`.
/// Returns `None` when `target` is below the last measured MLE error.
fn mle_samples_for_error(curve: &[(f64, f64)], target: f64) -> Option<f64> {
    // Find the first segment where the (noisy but mostly decreasing) MLE
    // curve crosses the target.
    if curve.is_empty() {
        return None;
    }
    if target >= curve[0].1 {
        // BMF is no better than MLE at the smallest n.
        return Some(curve[0].0);
    }
    for w in curve.windows(2) {
        let (n0, e0) = w[0];
        let (n1, e1) = w[1];
        if (e0 >= target && target >= e1) || (e1 >= target && target >= e0) {
            // Log-log linear interpolation.
            let t = (target.ln() - e0.ln()) / (e1.ln() - e0.ln());
            return Some((n0.ln() + t * (n1.ln() - n0.ln())).exp());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_stats::MultivariateNormal;

    /// Builds a synthetic two-stage dataset with controllable prior
    /// quality: the late stage shares the early stage's covariance shape
    /// (scaled), with an optional unexplained mean discrepancy.
    fn synthetic_data(mean_offset: f64, n_pool: usize, seed: u64) -> TwoStageData {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let early_nominal = Vector::from_slice(&[10.0, -5.0]);
        let late_nominal = Vector::from_slice(&[12.0, -4.0]);
        let cov = Matrix::from_rows(&[&[1.0, 0.4], &[0.4, 0.8]]).unwrap();
        let early_dist = MultivariateNormal::new(early_nominal.clone(), cov.clone()).unwrap();
        // Late stage: same covariance, mean shifted beyond its nominal by
        // `mean_offset` (the part nominal shifting cannot explain).
        let late_mean = Vector::from_slice(&[12.0 + mean_offset, -4.0 + mean_offset]);
        let late_dist = MultivariateNormal::new(late_mean, cov).unwrap();
        TwoStageData {
            metric_names: vec!["m0".into(), "m1".into()],
            early_samples: early_dist.sample_matrix(&mut rng, n_pool),
            early_nominal,
            late_samples: late_dist.sample_matrix(&mut rng, n_pool),
            late_nominal,
        }
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let mut d = synthetic_data(0.0, 50, 1);
        assert!(d.validate().is_ok());
        d.metric_names.push("extra".into());
        assert!(d.validate().is_err());

        let mut d = synthetic_data(0.0, 50, 1);
        d.late_nominal = Vector::zeros(3);
        assert!(d.validate().is_err());

        let mut d = synthetic_data(0.0, 50, 1);
        d.early_samples = Matrix::zeros(1, 2);
        assert!(d.validate().is_err());

        let mut d = synthetic_data(0.0, 50, 1);
        d.late_samples[(0, 0)] = f64::NAN;
        assert!(d.validate().is_err());
    }

    #[test]
    fn prepare_normalises_early_stage() {
        let data = synthetic_data(0.0, 2000, 2);
        let study = prepare(&data).unwrap();
        // Early stage: near-zero mean (nominal = true mean), near-unit σ.
        assert!(study.early_moments.mean.norm_inf() < 0.1);
        assert!((study.early_moments.cov[(0, 0)] - 1.0).abs() < 0.1);
        assert!((study.early_moments.cov[(1, 1)] - 1.0).abs() < 0.1);
        // Correlation is preserved: 0.4/sqrt(0.8) ≈ 0.447.
        let corr = study.early_moments.cov[(0, 1)]
            / (study.early_moments.cov[(0, 0)] * study.early_moments.cov[(1, 1)]).sqrt();
        assert!((corr - 0.447).abs() < 0.08, "corr = {corr}");
        assert_eq!(study.late_pool.nrows(), 2000);
    }

    #[test]
    fn prepare_rejects_zero_spread() {
        let mut data = synthetic_data(0.0, 50, 3);
        // Make metric 0 constant in the early stage.
        for i in 0..data.early_samples.nrows() {
            data.early_samples[(i, 0)] = 1.0;
        }
        let err = prepare(&data).unwrap_err();
        // The driver must classify this as a configuration problem and
        // name the offending metric — not surface a bare scale error.
        assert!(
            matches!(err, BmfError::InvalidConfig { .. }),
            "expected InvalidConfig, got {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("'m0'"), "missing metric name: {msg}");
        assert!(msg.contains("zero early-stage spread"), "{msg}");
    }

    #[test]
    fn constant_metric_surfaces_through_full_pipeline() {
        // Satellite: drive the complete experiment path (prepare → sweep)
        // with a constant early-stage metric and check the typed error
        // naming the metric is what callers actually see.
        let mut data = synthetic_data(0.0, 200, 14);
        data.metric_names[1] = "stuck_gain_db".into();
        for i in 0..data.early_samples.nrows() {
            data.early_samples[(i, 1)] = 42.0;
        }
        let err = match prepare(&data) {
            Err(e) => e,
            Ok(study) => {
                // Should be unreachable; if prepare ever stops catching
                // it, the sweep must still fail loudly rather than fuse a
                // degenerate metric.
                run_error_sweep(
                    &study,
                    &SweepConfig {
                        sample_sizes: vec![8],
                        repetitions: 2,
                        cv: CrossValidation::default(),
                        seed: 1,
                    },
                )
                .unwrap_err()
            }
        };
        assert!(matches!(err, BmfError::InvalidConfig { .. }), "{err:?}");
        assert!(
            err.to_string().contains("stuck_gain_db"),
            "error must name the metric: {err}"
        );
    }

    #[test]
    fn sweep_config_validation() {
        let c = SweepConfig::paper_default();
        assert!(c.validate(5000).is_ok());
        assert!(c.validate(100).is_err()); // 512 > 100
        let mut c2 = c.clone();
        c2.sample_sizes.clear();
        assert!(c2.validate(5000).is_err());
        let mut c3 = c.clone();
        c3.repetitions = 0;
        assert!(c3.validate(5000).is_err());
        let mut c4 = c;
        c4.sample_sizes = vec![1];
        assert!(c4.validate(5000).is_err());
    }

    #[test]
    fn bmf_beats_mle_at_small_n_with_good_prior() {
        // Same covariance, aligned means: the prior is excellent; BMF must
        // dominate at n = 8.
        let data = synthetic_data(0.0, 3000, 4);
        let study = prepare(&data).unwrap();
        let config = SweepConfig {
            sample_sizes: vec![8, 64],
            repetitions: 20,
            cv: CrossValidation::default(),
            seed: 7,
        };
        let result = run_error_sweep(&study, &config).unwrap();
        let r8 = &result.rows[0];
        assert!(
            r8.bmf_cov_err < r8.mle_cov_err * 0.6,
            "bmf {} vs mle {}",
            r8.bmf_cov_err,
            r8.mle_cov_err
        );
        assert!(r8.bmf_mean_err < r8.mle_mean_err);
        // Errors decrease with n for MLE.
        assert!(result.rows[1].mle_cov_err < r8.mle_cov_err);
    }

    #[test]
    fn mean_discrepancy_drives_kappa_down() {
        // A late-stage mean shift the nominal cannot explain: CV should
        // respond with smaller κ₀ than in the aligned case (the op-amp
        // story of §5.1).
        let aligned = prepare(&synthetic_data(0.0, 3000, 5)).unwrap();
        let shifted = prepare(&synthetic_data(0.8, 3000, 5)).unwrap();
        let config = SweepConfig {
            sample_sizes: vec![32],
            repetitions: 20,
            cv: CrossValidation::default(),
            seed: 11,
        };
        let ka = run_error_sweep(&aligned, &config).unwrap().rows[0].mean_kappa0;
        let ks = run_error_sweep(&shifted, &config).unwrap().rows[0].mean_kappa0;
        assert!(
            ks < ka,
            "kappa with shifted mean ({ks}) should be below aligned ({ka})"
        );
    }

    #[test]
    fn cost_reduction_is_large_for_good_prior() {
        let data = synthetic_data(0.0, 4000, 6);
        let study = prepare(&data).unwrap();
        let config = SweepConfig {
            sample_sizes: vec![8, 16, 32, 64, 128, 256],
            repetitions: 15,
            cv: CrossValidation::default(),
            seed: 13,
        };
        let result = run_error_sweep(&study, &config).unwrap();
        let cr = cost_reduction(&result, ErrorKind::Covariance);
        // At the smallest n the reduction should be substantial (>2×
        // conservatively; the paper reports 16× on its circuit).
        assert!(
            cr[0].1 > 2.0,
            "cost reduction at n=8 should exceed 2x, got {}",
            cr[0].1
        );
        assert_eq!(cr.len(), result.rows.len());
    }

    #[test]
    fn cost_reduction_handles_edge_cases() {
        // Synthetic rows: MLE error halves per doubling; BMF flat & tiny.
        let rows = vec![
            SweepRow {
                n: 8,
                mle_mean_err: 0.8,
                bmf_mean_err: 0.1,
                mle_cov_err: 1.6,
                bmf_cov_err: 0.2,
                mean_kappa0: 1.0,
                mean_nu0: 1.0,
            },
            SweepRow {
                n: 32,
                mle_mean_err: 0.4,
                bmf_mean_err: 0.1,
                mle_cov_err: 0.8,
                bmf_cov_err: 0.2,
                mean_kappa0: 1.0,
                mean_nu0: 1.0,
            },
            SweepRow {
                n: 128,
                mle_mean_err: 0.2,
                bmf_mean_err: 0.1,
                mle_cov_err: 0.4,
                bmf_cov_err: 0.2,
                mean_kappa0: 1.0,
                mean_nu0: 1.0,
            },
        ];
        let result = SweepResult { rows };
        let cr = cost_reduction(&result, ErrorKind::Mean);
        // BMF@8 has err 0.1 < MLE@128's 0.2 → beyond range → infinite.
        assert!(cr[0].1.is_infinite());
        let cr = cost_reduction(&result, ErrorKind::Covariance);
        assert!(cr[0].1.is_infinite());

        // A BMF error worse than MLE at the smallest n → factor <= 1.
        let rows = vec![SweepRow {
            n: 8,
            mle_mean_err: 0.1,
            bmf_mean_err: 0.5,
            mle_cov_err: 0.1,
            bmf_cov_err: 0.5,
            mean_kappa0: 1.0,
            mean_nu0: 1.0,
        }];
        let cr = cost_reduction(&SweepResult { rows }, ErrorKind::Mean);
        assert!(cr[0].1 <= 1.0);
    }

    #[test]
    fn interpolation_is_log_log_exact_on_power_law() {
        // err = n^{-1/2}: target err(n=50) → interpolated n = 50.
        let curve: Vec<(f64, f64)> = [8.0, 32.0, 128.0]
            .iter()
            .map(|&n: &f64| (n, n.powf(-0.5)))
            .collect();
        let n = mle_samples_for_error(&curve, 50f64.powf(-0.5)).unwrap();
        assert!((n - 50.0).abs() < 1.0, "n = {n}");
        // Out of range below.
        assert!(mle_samples_for_error(&curve, 0.01).is_none());
        // Above the first point clamps to the smallest n.
        assert_eq!(mle_samples_for_error(&curve, 10.0), Some(8.0));
        assert!(mle_samples_for_error(&[], 0.1).is_none());
    }

    #[test]
    fn table_rendering_contains_all_rows() {
        let data = synthetic_data(0.0, 500, 8);
        let study = prepare(&data).unwrap();
        let config = SweepConfig {
            sample_sizes: vec![8, 16],
            repetitions: 3,
            cv: CrossValidation::default(),
            seed: 1,
        };
        let result = run_error_sweep(&study, &config).unwrap();
        let table = result.to_table();
        assert!(table.contains("mean_err MLE"));
        assert_eq!(table.lines().count(), 4); // header + separator + 2 rows
    }

    #[test]
    fn sweep_is_reproducible() {
        let data = synthetic_data(0.3, 800, 9);
        let study = prepare(&data).unwrap();
        let config = SweepConfig {
            sample_sizes: vec![16],
            repetitions: 5,
            cv: CrossValidation::default(),
            seed: 21,
        };
        let a = run_error_sweep(&study, &config).unwrap();
        let b = run_error_sweep(&study, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_sweep_matches_sequential_exactly() {
        let data = synthetic_data(0.2, 600, 10);
        let study = prepare(&data).unwrap();
        let config = SweepConfig {
            sample_sizes: vec![8, 16],
            repetitions: 6,
            cv: CrossValidation::default(),
            seed: 33,
        };
        let seq = run_error_sweep(&study, &config).unwrap();
        for threads in [1, 2, 4] {
            let par = run_error_sweep_parallel(&study, &config, threads).unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
        assert!(run_error_sweep_parallel(&study, &config, 0).is_err());
    }

    #[test]
    fn parallel_sweep_accepts_more_threads_than_repetitions() {
        let data = synthetic_data(0.1, 400, 12);
        let study = prepare(&data).unwrap();
        let config = SweepConfig {
            sample_sizes: vec![8],
            repetitions: 2,
            cv: CrossValidation::default(),
            seed: 5,
        };
        let seq = run_error_sweep(&study, &config).unwrap();
        let par = run_error_sweep_parallel(&study, &config, 16).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn repetition_seeds_are_distinct() {
        // Collisions across the (n, rep) grid would silently correlate
        // repetitions.
        let mut seen = std::collections::HashSet::new();
        for n in [8usize, 16, 32, 64, 128, 256, 512] {
            for rep in 0..100 {
                assert!(
                    seen.insert(repetition_seed(2015, n, rep)),
                    "collision at ({n}, {rep})"
                );
            }
        }
    }
}
