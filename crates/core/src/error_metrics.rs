//! Estimation-error criteria of the paper's evaluation (Eq. 37–38).
//!
//! Errors are *absolute* norms evaluated in the shifted-and-scaled space of
//! [`crate::transform::ShiftScale`]: after normalisation every dimension has
//! comparable magnitude, so the 2-norm/Frobenius norm weighs all metrics
//! equally and small-valued performances are not concealed (§5.1).

use crate::{BmfError, MomentEstimate, Result};

/// Mean-vector estimation error `‖μ_ESTI − μ_EXACT‖₂` (Eq. 37).
///
/// # Errors
///
/// Returns [`BmfError::InvalidMoments`] for dimension mismatch.
///
/// # Example
///
/// ```
/// use bmf_core::error_metrics::error_mean;
/// use bmf_core::MomentEstimate;
/// use bmf_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), bmf_core::BmfError> {
/// let exact = MomentEstimate { mean: Vector::zeros(2), cov: Matrix::identity(2) };
/// let esti = MomentEstimate {
///     mean: Vector::from_slice(&[3.0, 4.0]),
///     cov: Matrix::identity(2),
/// };
/// assert!((error_mean(&esti, &exact)? - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn error_mean(estimated: &MomentEstimate, exact: &MomentEstimate) -> Result<f64> {
    if estimated.dim() != exact.dim() {
        return Err(BmfError::InvalidMoments {
            reason: format!(
                "estimated dimension {} != exact dimension {}",
                estimated.dim(),
                exact.dim()
            ),
        });
    }
    Ok((&estimated.mean - &exact.mean).norm2())
}

/// Covariance estimation error `‖Σ_ESTI − Σ_EXACT‖_F` (Eq. 38).
///
/// # Errors
///
/// Returns [`BmfError::InvalidMoments`] for dimension mismatch.
pub fn error_cov(estimated: &MomentEstimate, exact: &MomentEstimate) -> Result<f64> {
    if estimated.dim() != exact.dim() {
        return Err(BmfError::InvalidMoments {
            reason: format!(
                "estimated dimension {} != exact dimension {}",
                estimated.dim(),
                exact.dim()
            ),
        });
    }
    Ok((&estimated.cov - &exact.cov).norm_frobenius())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_linalg::{Matrix, Vector};

    fn exact() -> MomentEstimate {
        MomentEstimate {
            mean: Vector::from_slice(&[1.0, 2.0]),
            cov: Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap(),
        }
    }

    #[test]
    fn zero_error_for_identical_moments() {
        let e = exact();
        assert_eq!(error_mean(&e, &e).unwrap(), 0.0);
        assert_eq!(error_cov(&e, &e).unwrap(), 0.0);
    }

    #[test]
    fn matches_hand_computed_norms() {
        let est = MomentEstimate {
            mean: Vector::from_slice(&[4.0, 6.0]),
            cov: Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 1.0]]).unwrap(),
        };
        // mean diff = (3, 4) → 5; cov diff = [[1,1],[1,0]] → sqrt(3)
        assert!((error_mean(&est, &exact()).unwrap() - 5.0).abs() < 1e-12);
        assert!((error_cov(&est, &exact()).unwrap() - 3.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let three = MomentEstimate {
            mean: Vector::zeros(3),
            cov: Matrix::identity(3),
        };
        assert!(error_mean(&three, &exact()).is_err());
        assert!(error_cov(&three, &exact()).is_err());
    }

    #[test]
    fn errors_are_symmetric_in_arguments() {
        let est = MomentEstimate {
            mean: Vector::from_slice(&[0.0, 0.0]),
            cov: Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 3.0]]).unwrap(),
        };
        assert_eq!(
            error_mean(&est, &exact()).unwrap(),
            error_mean(&exact(), &est).unwrap()
        );
        assert_eq!(
            error_cov(&est, &exact()).unwrap(),
            error_cov(&exact(), &est).unwrap()
        );
    }
}
