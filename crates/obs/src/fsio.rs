//! Crash-safe artifact writes: write-temp-then-rename.
//!
//! Every artifact the workspace persists — reports, dashboards, event
//! logs, traces, metrics snapshots, bench history, flight dumps, shard
//! packets — goes through [`atomic_write`]. The contents are written to
//! a sibling temporary file in the destination directory (so the final
//! rename never crosses a filesystem boundary) and the file only
//! appears under its real name once it is complete. A process killed
//! mid-write leaves at worst a stray `.tmp` sibling, never a truncated
//! or half-written artifact under the real name — which is what lets a
//! shard orchestrator treat "packet file exists" as "packet file is
//! whole", and lets `bmf merge` treat a corrupt packet as data
//! corruption rather than an ordinary crash artifact.

use std::io;
use std::io::Write as _;
use std::path::Path;

/// Writes `contents` to `path` atomically: the bytes land in a
/// temporary sibling (`.{name}.tmp-{pid}` in the same directory) that
/// is flushed, synced (best-effort) and then renamed over `path`.
/// Readers observe either the previous file or the complete new one,
/// never a prefix. On error the destination is left untouched and the
/// temporary is cleaned up.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_ref())?;
        file.flush()?;
        // fsync is best-effort: rename-atomicity is the property the
        // workspace relies on; durability-after-power-loss is not.
        let _ = file.sync_all();
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bmf-fsio-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_overwrites_leaving_no_temp_sibling() {
        let dir = temp_dir("basic");
        let path = dir.join("artifact.json");
        atomic_write(&path, b"{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        atomic_write(&path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failure_leaves_existing_destination_intact() {
        let dir = temp_dir("fail");
        let path = dir.join("keep.json");
        atomic_write(&path, b"precious").unwrap();
        // A destination whose parent does not exist must fail cleanly…
        let bad = dir.join("no-such-subdir").join("out.json");
        assert!(atomic_write(&bad, b"x").is_err());
        // …and a failed write elsewhere never disturbs earlier output.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "precious");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_pathless_destination() {
        assert!(atomic_write(PathBuf::from(".."), b"x").is_err());
    }
}
