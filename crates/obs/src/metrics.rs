//! Process-wide registry of named counters and histograms.
//!
//! Counters are relaxed [`AtomicU64`]s: every worker thread increments
//! the same cell, so "merging" across the scoped workers of
//! `bmf_stats::parallel` is free and totals are thread-count invariant.
//! Histograms bucket nanosecond durations into power-of-two bins so a
//! hot operation (a Cholesky factorization runs millions of times per
//! sweep) can be characterised without emitting one trace event per call.
//!
//! Every metric is a `static` declared in [`counters`] / [`histograms`]
//! and listed in the corresponding `all()` registry; [`snapshot`] walks
//! the registries, so adding a metric is a two-line change.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A named monotonic counter. All operations are relaxed atomics; when
/// recording is disabled, [`Counter::add`] is a single load-and-branch.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Const constructor so counters can live in `static`s.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The registry name, e.g. `"cholesky.calls"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` if recording is enabled; no-op otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::is_enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 if recording is enabled; no-op otherwise.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two duration buckets: bucket `i` holds values `v`
/// with `floor(log2(v)) == i` (bucket 0 also holds 0), so the range
/// covers 1 ns up to ~2.3 s per call with the last bucket catching
/// everything longer.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A named histogram of nanosecond durations with power-of-two buckets
/// plus exact count/sum/min/max. Lock-free; merging across threads is
/// inherent because all threads record into the same atomics.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Const constructor so histograms can live in `static`s.
    pub const fn new(name: &'static str) -> Self {
        // An inline-const repeat operand: each bucket gets its own
        // freshly created atomic (no shared interior-mutable const).
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The registry name, e.g. `"cholesky.ns"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((63 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one duration (in nanoseconds) if recording is enabled.
    #[inline]
    pub fn record(&self, ns: u64) {
        if !crate::is_enabled() {
            return;
        }
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Starts an RAII timer that records into this histogram on drop.
    /// When recording is disabled, no clock is queried at either end.
    #[inline]
    pub fn timer(&'static self) -> HistogramTimer {
        HistogramTimer {
            start: crate::is_enabled().then(Instant::now),
            histogram: self,
        }
    }

    /// Immutable view of the current values.
    pub fn stats(&self) -> HistogramStats {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramStats {
            name: self.name,
            count,
            sum_ns: self.sum.load(Ordering::Relaxed),
            min_ns: if count == 0 { 0 } else { min },
            max_ns: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// RAII timer handed out by [`Histogram::timer`]. `start` is `None`
/// when recording was disabled at creation, making drop a no-op.
pub struct HistogramTimer {
    start: Option<Instant>,
    histogram: &'static Histogram,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStats {
    pub name: &'static str,
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramStats {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds by
    /// linear interpolation inside the power-of-two bucket containing
    /// the target rank. Bucket `i` covers `[2^i, 2^(i+1))` (bucket 0
    /// covers `[0, 2)`); within a bucket the mass is assumed uniform.
    /// The estimate is clamped to the exact `[min_ns, max_ns]` range,
    /// which also makes single-observation histograms exact. Returns
    /// `None` for an empty histogram — a 0 here would read as a real
    /// (and absurdly fast) measurement in exported JSON and the
    /// Prometheus exposition.
    pub fn percentile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank in [0, count): the index (in sorted order) whose value
        // we estimate. `q * count` rounds down, capped at the last.
        let rank = ((q * self.count as f64) as u64).min(self.count - 1);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if rank < cumulative + b {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = if i >= 63 {
                    u64::MAX as f64
                } else {
                    (1u64 << (i + 1)) as f64
                };
                let frac = (rank - cumulative) as f64 / b as f64;
                let est = lo + frac * (hi - lo);
                let est = est.clamp(self.min_ns as f64, self.max_ns as f64);
                return Some(est.round() as u64);
            }
            cumulative += b;
        }
        Some(self.max_ns)
    }

    /// Median estimate (see [`HistogramStats::percentile_ns`]).
    pub fn p50_ns(&self) -> Option<u64> {
        self.percentile_ns(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90_ns(&self) -> Option<u64> {
        self.percentile_ns(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99_ns(&self) -> Option<u64> {
        self.percentile_ns(0.99)
    }
}

/// Point-in-time process self-metrics read from `/proc/self` on Linux.
/// On platforms without procfs (or when any file fails to parse) the
/// sample is simply absent — callers emit nothing rather than zeros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessStats {
    /// Resident set size in bytes (`VmRSS` from `/proc/self/status`).
    pub rss_bytes: u64,
    /// User-mode CPU time in milliseconds (`utime` ticks at `USER_HZ`).
    pub user_cpu_ms: u64,
    /// Kernel-mode CPU time in milliseconds (`stime` ticks).
    pub sys_cpu_ms: u64,
    /// Process uptime in milliseconds (boot uptime minus `starttime`).
    pub uptime_ms: u64,
    /// Open file descriptors (entries in `/proc/self/fd`).
    pub open_fds: u64,
}

/// Kernel `USER_HZ`: the unit of the `utime`/`stime`/`starttime` fields
/// in `/proc/<pid>/stat`. Fixed at 100 on every Linux ABI in use (the
/// kernel scales internally so userspace always sees 100 ticks/second).
const USER_HZ: u64 = 100;

impl ProcessStats {
    /// Samples `/proc/self`; `None` anywhere procfs is absent or odd.
    pub fn sample() -> Option<ProcessStats> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let rss_kb: u64 = status
            .lines()
            .find_map(|l| l.strip_prefix("VmRSS:"))
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())?;

        // /proc/self/stat: the command field (2) may contain spaces, so
        // split on the closing paren; utime/stime/starttime are fields
        // 14/15/22, i.e. 11/12/19 in the post-paren remainder.
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        let rest = stat.rsplit_once(')')?.1;
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let tick_field = |i: usize| -> Option<u64> { fields.get(i)?.parse().ok() };
        let utime = tick_field(11)?;
        let stime = tick_field(12)?;
        let start_ticks = tick_field(19)?;

        let uptime_text = std::fs::read_to_string("/proc/uptime").ok()?;
        let boot_uptime_s: f64 = uptime_text.split_whitespace().next()?.parse().ok()?;
        let boot_uptime_ms = (boot_uptime_s * 1000.0) as u64;
        let start_ms = start_ticks * 1000 / USER_HZ;

        let open_fds = std::fs::read_dir("/proc/self/fd").ok()?.count() as u64;

        Some(ProcessStats {
            rss_bytes: rss_kb * 1024,
            user_cpu_ms: utime * 1000 / USER_HZ,
            sys_cpu_ms: stime * 1000 / USER_HZ,
            uptime_ms: boot_uptime_ms.saturating_sub(start_ms),
            open_fds,
        })
    }

    /// Serializes the sample as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rss_bytes\":{},\"user_cpu_ms\":{},\"sys_cpu_ms\":{},\"uptime_ms\":{},\"open_fds\":{}}}",
            self.rss_bytes, self.user_cpu_ms, self.sys_cpu_ms, self.uptime_ms, self.open_fds
        )
    }
}

/// The process-wide counters. Names are stable identifiers used in the
/// metrics snapshot JSON and in `FusionReport`.
pub mod counters {
    use super::Counter;

    /// Successful simulator evaluations (Monte Carlo samples produced).
    pub static MONTE_CARLO_SIMS: Counter = Counter::new("monte_carlo.sims");
    /// Simulator retries after an injected/real failure.
    pub static MONTE_CARLO_RETRIES: Counter = Counter::new("monte_carlo.retries");
    /// Cholesky factorization attempts (`Cholesky::new`).
    pub static CHOLESKY_CALLS: Counter = Counter::new("cholesky.calls");
    /// Factorizations that needed the SPD repair ladder.
    pub static CHOLESKY_REPAIRS: Counter = Counter::new("cholesky.repairs");
    /// O(d²) rank-one factor updates (`Cholesky::rank1_update`).
    pub static CHOLESKY_RANK1_UPDATES: Counter = Counter::new("cholesky.rank1_updates");
    /// Symmetric eigendecompositions (`SymmetricEigen::new`).
    pub static EIGEN_CALLS: Counter = Counter::new("eigen.calls");
    /// Total Jacobi sweeps across all eigendecompositions.
    pub static EIGEN_SWEEPS: Counter = Counter::new("eigen.sweeps");
    /// Hyper-parameter candidates scored by the CV grid search.
    pub static CV_CANDIDATES: Counter = Counter::new("cv.candidates");
    /// Individual (training set, held-out fold) evaluations.
    pub static CV_FOLD_EVALS: Counter = Counter::new("cv.fold_evals");
    /// Duplicate grid values dropped by the CV constructor (a non-zero
    /// value means a caller supplied a grid with repeated candidates).
    pub static CV_GRID_DUPLICATES: Counter = Counter::new("cv.grid_duplicates");
    /// Faults fired by `FaultInjector` (failures, NaNs, outliers).
    pub static FAULT_INJECTIONS: Counter = Counter::new("fault.injections");
    /// Cells/rows/columns flagged by the data-quality guard.
    pub static GUARD_FLAGS: Counter = Counter::new("guard.flags");
    /// Downgrade steps taken by the `RobustPipeline` ladder.
    pub static LADDER_RUNG_TRANSITIONS: Counter = Counter::new("ladder.rung_transitions");
    /// FFT invocations (`fft_real` and friends).
    pub static FFT_CALLS: Counter = Counter::new("fft.calls");
    /// Spectrum analyses (`spectrum::analyze`).
    pub static SPECTRUM_ANALYSES: Counter = Counter::new("spectrum.analyses");
    /// Drift-monitor windows closed.
    pub static DRIFT_WINDOWS: Counter = Counter::new("drift.windows");
    /// Drift windows classified `Warn` or worse.
    pub static DRIFT_ALERTS: Counter = Counter::new("drift.alerts");
    /// Shard packets written by `bmf shard`.
    pub static SHARD_PACKETS_WRITTEN: Counter = Counter::new("shard.packets_written");
    /// Shard packets accepted by a merge.
    pub static SHARD_PACKETS_MERGED: Counter = Counter::new("shard.packets_merged");
    /// Duplicate shard packets dropped by a merge.
    pub static SHARD_DUPLICATES: Counter = Counter::new("shard.duplicates");
    /// Packets rejected by a merge (corrupt, incompatible, invalid).
    pub static SHARD_REJECTS: Counter = Counter::new("shard.rejects");

    static ALL: [&Counter; 21] = [
        &MONTE_CARLO_SIMS,
        &MONTE_CARLO_RETRIES,
        &CHOLESKY_CALLS,
        &CHOLESKY_REPAIRS,
        &CHOLESKY_RANK1_UPDATES,
        &EIGEN_CALLS,
        &EIGEN_SWEEPS,
        &CV_CANDIDATES,
        &CV_FOLD_EVALS,
        &CV_GRID_DUPLICATES,
        &FAULT_INJECTIONS,
        &GUARD_FLAGS,
        &LADDER_RUNG_TRANSITIONS,
        &FFT_CALLS,
        &SPECTRUM_ANALYSES,
        &DRIFT_WINDOWS,
        &DRIFT_ALERTS,
        &SHARD_PACKETS_WRITTEN,
        &SHARD_PACKETS_MERGED,
        &SHARD_DUPLICATES,
        &SHARD_REJECTS,
    ];

    /// Every registered counter, in snapshot order.
    pub fn all() -> &'static [&'static Counter] {
        &ALL
    }
}

/// The process-wide duration histograms.
pub mod histograms {
    use super::Histogram;

    /// Wall time of each Cholesky factorization.
    pub static CHOLESKY_NS: Histogram = Histogram::new("cholesky.ns");
    /// Wall time of each symmetric eigendecomposition.
    pub static EIGEN_NS: Histogram = Histogram::new("eigen.ns");
    /// Wall time of each spectrum analysis (FFT + metric extraction).
    pub static SPECTRUM_NS: Histogram = Histogram::new("spectrum.ns");

    static ALL: [&Histogram; 3] = [&CHOLESKY_NS, &EIGEN_NS, &SPECTRUM_NS];

    /// Every registered histogram, in snapshot order.
    pub fn all() -> &'static [&'static Histogram] {
        &ALL
    }
}

/// Point-in-time copy of every registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, in registry order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-histogram stats, in registry order.
    pub histograms: Vec<HistogramStats>,
    /// Process self-metrics; `None` where `/proc/self` is unavailable.
    pub process: Option<ProcessStats>,
}

impl MetricsSnapshot {
    /// Value of the counter named `name`, or 0 if unknown.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// Captures the current value of every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: counters::all()
            .iter()
            .map(|c| (c.name(), c.get()))
            .collect(),
        histograms: histograms::all().iter().map(|h| h.stats()).collect(),
        process: ProcessStats::sample(),
    }
}

/// Zeroes every registered metric.
pub fn reset_all() {
    for c in counters::all() {
        c.reset();
    }
    for h in histograms::all() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_lock;

    #[test]
    fn counters_are_noop_when_disabled() {
        let _g = test_lock();
        crate::reset();
        counters::MONTE_CARLO_SIMS.incr();
        counters::MONTE_CARLO_SIMS.add(41);
        assert_eq!(counters::MONTE_CARLO_SIMS.get(), 0);
        crate::reset();
    }

    #[test]
    fn counters_accumulate_across_threads() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        counters::CV_FOLD_EVALS.incr();
                    }
                });
            }
        });
        crate::disable();
        assert_eq!(counters::CV_FOLD_EVALS.get(), 4000);
        assert_eq!(snapshot().counter("cv.fold_evals"), 4000);
        crate::reset();
    }

    #[test]
    fn histogram_buckets_cover_the_ns_range() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_stats_and_resets() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        histograms::CHOLESKY_NS.record(10);
        histograms::CHOLESKY_NS.record(1000);
        histograms::CHOLESKY_NS.record(5);
        let stats = histograms::CHOLESKY_NS.stats();
        assert_eq!(stats.count, 3);
        assert_eq!(stats.sum_ns, 1015);
        assert_eq!(stats.min_ns, 5);
        assert_eq!(stats.max_ns, 1000);
        assert_eq!(stats.buckets.iter().sum::<u64>(), 3);
        crate::reset();
        let stats = histograms::CHOLESKY_NS.stats();
        assert_eq!(stats.count, 0);
        assert_eq!(stats.min_ns, 0);
        crate::reset();
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let mut stats = HistogramStats {
            name: "test",
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        // Empty histogram: percentiles are explicitly absent, never 0.
        assert_eq!(stats.p50_ns(), None);
        assert_eq!(stats.p90_ns(), None);
        assert_eq!(stats.p99_ns(), None);
        assert_eq!(stats.percentile_ns(0.0), None);
        assert_eq!(stats.percentile_ns(1.0), None);

        // Single observation: clamping to [min, max] makes it exact.
        stats.count = 1;
        stats.sum_ns = 700;
        stats.min_ns = 700;
        stats.max_ns = 700;
        stats.buckets[Histogram::bucket_index(700)] = 1;
        assert_eq!(stats.p50_ns(), Some(700));
        assert_eq!(stats.p99_ns(), Some(700));

        // 100 observations evenly split between bucket 4 ([16,32)) and
        // bucket 10 ([1024,2048)): p50 falls at the start of the upper
        // bucket, p90 interpolates 80% of the way through it, p99 lands
        // near its top but clamps to the recorded max.
        let mut stats = HistogramStats {
            name: "test",
            count: 100,
            sum_ns: 0,
            min_ns: 16,
            max_ns: 1500,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        stats.buckets[4] = 50;
        stats.buckets[10] = 50;
        let p50 = stats.p50_ns().unwrap();
        assert!((1024..1100).contains(&p50), "p50 = {p50}");
        let p90 = stats.p90_ns().unwrap();
        assert!((1500..=1945).contains(&p90), "p90 = {p90}");
        assert!(p50 <= p90);
        // p99 interpolates past max_ns=1500, so the clamp holds it there.
        assert_eq!(stats.p99_ns(), Some(1500));
        // Monotone in q even with the clamp.
        assert!(stats.percentile_ns(0.10) <= stats.percentile_ns(0.49));
        assert!(stats.percentile_ns(0.49) <= stats.percentile_ns(0.51));
    }

    #[test]
    fn drift_counters_are_registered() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        counters::DRIFT_WINDOWS.add(3);
        counters::DRIFT_ALERTS.incr();
        let snap = snapshot();
        assert_eq!(snap.counter("drift.windows"), 3);
        assert_eq!(snap.counter("drift.alerts"), 1);
        crate::reset();
    }

    #[test]
    fn process_stats_sample_is_sane_on_linux() {
        // Only assert substance where procfs exists; elsewhere the
        // graceful-absence contract is the whole test.
        match ProcessStats::sample() {
            Some(p) => {
                assert!(p.rss_bytes > 0, "a live process has resident pages");
                assert!(p.open_fds > 0, "stdio alone keeps fds open");
                let v = crate::json::parse(&p.to_json()).expect("process JSON parses");
                assert!(
                    v.get("rss_bytes")
                        .and_then(crate::json::Value::as_f64)
                        .unwrap()
                        > 0.0
                );
                assert!(v.get("open_fds").is_some());
                assert!(v.get("uptime_ms").is_some());
            }
            None => {
                if cfg!(target_os = "linux") {
                    panic!("procfs expected on Linux");
                }
            }
        }
    }

    #[test]
    fn timer_is_inert_when_disabled() {
        let _g = test_lock();
        crate::reset();
        {
            let _t = histograms::EIGEN_NS.timer();
        }
        assert_eq!(histograms::EIGEN_NS.stats().count, 0);
        crate::enable();
        {
            let _t = histograms::EIGEN_NS.timer();
        }
        assert_eq!(histograms::EIGEN_NS.stats().count, 1);
        crate::reset();
    }
}
