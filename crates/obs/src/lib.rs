//! `bmf_obs` — in-house tracing, metrics and profiling for the BMF
//! workspace.
//!
//! The paper's headline claim is a *cost* claim (up to 16× fewer
//! late-stage samples for the same covariance accuracy), so the repo has
//! to be able to say where its own wall-clock goes. This crate is the
//! shared observability substrate every other crate instruments against:
//!
//! * **[`span()`] timing** — hierarchical RAII spans recorded into
//!   thread-local buffers. The hot path touches only thread-local state;
//!   buffers merge into the process-wide sink when a thread exits (i.e.
//!   at the join of every `std::thread::scope` worker spawned by
//!   `bmf_stats::parallel`), so instrumentation composes with the
//!   deterministic parallel layer without a lock on the recording path.
//! * **[`metrics`]** — a process-wide registry of named [`Counter`]s and
//!   [`Histogram`]s (Cholesky calls/repairs, eigen sweeps, CV fold
//!   evaluations, Monte Carlo sims/retries, fault injections, guard
//!   flags, ladder-rung transitions). Counters are plain relaxed atomics:
//!   merging across workers is free and the totals are thread-count
//!   invariant.
//! * **[`export`]** — three exporters: Chrome trace-event JSON (loadable
//!   in Perfetto/`chrome://tracing`), an aggregated per-span profile
//!   (total/self time, call count, min/max) as JSON or a pretty table,
//!   and a metrics snapshot JSON. All exports embed hardware context
//!   (detected core count, thread count used) so committed numbers from
//!   a 1-core CI container are never misread as a scaling regression.
//! * **[`json`]** — the hand-rolled JSON escaping shared with
//!   `bmf_core`'s `FusionReport`, plus a minimal parser used to validate
//!   exported traces in tests and CI.
//! * **[`mod@event`]** — the leveled structured event log: typed
//!   [`EventRecord`]s from every pipeline decision point (guard flags,
//!   SPD repairs, retries, ladder rung transitions, drift alerts),
//!   buffered thread-locally like spans, drained as JSONL via
//!   `--events-out`, filtered by `BMF_LOG`; plus the console macros
//!   ([`error!`]/[`warn!`]/[`info!`]/[`debug!`]/[`outln!`]) the binaries
//!   print through and the rate-limited progress [`Heartbeat`].
//! * **[`flight`]** — the crash flight recorder: a fixed ring of the
//!   last [`flight::FLIGHT_CAPACITY`] events, dumped to
//!   `flight-<run_id>.json` on panic, strict failure, or a ladder drop
//!   past MAP.
//! * **[`run`]** — the [`RunContext`] (run id from root seed + config
//!   hash) stamped into every event line, export, report and dashboard
//!   so one run's artifacts can be joined offline.
//! * **[`health`]** — the *statistical* observability vocabulary:
//!   [`Severity`], the per-run [`HealthReport`] (prior–data conflict,
//!   effective sample size, covariance spectrum, CV surface, data
//!   quality) and the [`DriftTimeline`], with documented thresholds.
//!   The math that fills these types lives in `bmf_core`.
//! * **[`dashboard`]** — a zero-dependency, self-contained HTML
//!   dashboard (inline CSS + SVG, no JavaScript) combining profile,
//!   metrics, health, drift and bench history in one static page.
//! * **[`cli`]** — `--trace-out/--profile/--metrics-out/--dashboard-out`
//!   flag handling shared by `bmf` and the figure binaries.
//!
//! # The two hard invariants
//!
//! 1. **Observability never changes a number.** No instrumentation point
//!    touches an RNG stream, reorders a floating-point reduction, or
//!    branches on recorded data. Estimates are bit-identical with
//!    tracing enabled or disabled, at every thread count
//!    (`tests/observability.rs` asserts this).
//! 2. **Disabled means no-op.** Recording is gated on one process-wide
//!    relaxed [`AtomicBool`]; when disabled, a span or counter call is a
//!    single load-and-branch with no time query, no allocation and no
//!    shared-memory write. CI fails if the measured no-op overhead on
//!    the CV micro-bench exceeds 2% (`obs_overhead`).
//!
//! # Example
//!
//! ```
//! bmf_obs::reset();
//! bmf_obs::enable();
//! {
//!     let _outer = bmf_obs::span("outer");
//!     let _inner = bmf_obs::span("inner");
//!     bmf_obs::counters::MONTE_CARLO_SIMS.incr();
//! }
//! bmf_obs::disable();
//! let events = bmf_obs::take_events();
//! assert_eq!(events.len(), 2);
//! assert!(bmf_obs::metrics::snapshot()
//!     .counters
//!     .iter()
//!     .any(|(name, v)| *name == "monte_carlo.sims" && *v == 1));
//! bmf_obs::reset();
//! ```

pub mod alert;
pub mod cli;
pub mod dashboard;
pub mod event;
pub mod export;
pub mod flight;
pub mod fsio;
pub mod health;
pub mod json;
pub mod metrics;
pub mod prom;
pub mod run;
pub mod serve;
pub mod shard;
pub mod span;
pub mod tsdb;

pub use cli::{ObsOptions, BENCH_HISTORY_FILE};
pub use event::{EventRecord, Heartbeat, Level, ProgressEntry, RateLimiter};
pub use export::{chrome_trace_json, metrics_json, profile_json, profile_table, HardwareContext};
pub use fsio::atomic_write;
pub use health::{DriftTimeline, DriftWindow, HealthReport, Severity};
pub use metrics::{counters, histograms, Counter, Histogram, MetricsSnapshot, ProcessStats};
pub use run::RunContext;
pub use serve::ObsServer;
pub use shard::{FleetShardRow, FleetSummary, ShardCoverage};
pub use span::{span, take_events, Span, SpanEvent};

/// Drains every recorded structured event (see [`mod@event`]).
pub use event::take_records as take_event_records;

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide recording switch. Everything in this crate gates on it
/// with a single relaxed load; see the crate docs for the no-op contract.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns recording on (idempotent). Also anchors the trace epoch on
/// first use so timestamps are relative to the first enable.
pub fn enable() {
    span::epoch(); // anchor the clock before any event is recorded
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off (idempotent). Spans already open keep recording
/// their close so per-thread stacks stay balanced.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether recording is currently on.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Disables recording and clears all recorded events and metric values:
/// spans, structured events, the flight-recorder ring, the run context,
/// the time-series store, the alert engine and the event level filters.
/// Intended for tests and for delimiting independent measurement
/// windows.
pub fn reset() {
    disable();
    tsdb::stop_global();
    span::clear();
    event::clear();
    event::reset_levels();
    flight::clear();
    run::clear();
    metrics::reset_all();
    serve::clear_live();
    tsdb::clear();
    alert::clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global state is process-wide; tests in this crate serialize on this
    // lock so cargo's parallel test runner cannot interleave them.
    pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_by_default_and_toggleable() {
        let _g = test_lock();
        reset();
        assert!(!is_enabled());
        enable();
        assert!(is_enabled());
        disable();
        assert!(!is_enabled());
        reset();
    }

    #[test]
    fn reset_clears_events_and_metrics() {
        let _g = test_lock();
        reset();
        enable();
        {
            let _s = span("reset-test");
            counters::CHOLESKY_CALLS.incr();
        }
        assert!(!take_events().is_empty() || counters::CHOLESKY_CALLS.get() > 0);
        reset();
        assert!(take_events().is_empty());
        assert_eq!(counters::CHOLESKY_CALLS.get(), 0);
    }
}
