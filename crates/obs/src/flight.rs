//! Crash flight recorder: the last N events, dumped on disaster.
//!
//! While event streaming is on, every record also lands in a fixed-size
//! ring (capacity [`FLIGHT_CAPACITY`]) that keeps only the most recent
//! events. On a panic (via a chained hook installed by
//! [`install_panic_hook`]), on a `--strict` pipeline failure, or when
//! the degradation ladder drops past MAP, [`dump`] writes the ring to a
//! `flight-<run_id>.json` black-box file so a chaos-suite failure is
//! debuggable post-mortem even when nobody asked for `--events-out`
//! telemetry up front — the last 256 decisions before the crash are in
//! the box.
//!
//! The ring is fed from [`crate::event::emit`], i.e. only while
//! recording is enabled; the disabled path keeps the crate's
//! one-relaxed-load contract. Recording into the ring takes a short
//! global mutex — acceptable because events mark *decisions* (repairs,
//! retries, rung drops), which are orders of magnitude rarer than spans
//! or counter bumps.

use crate::event::EventRecord;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Mutex, Once};

/// Ring capacity: the flight recorder keeps at most this many events.
pub const FLIGHT_CAPACITY: usize = 256;

static RING: Mutex<VecDeque<EventRecord>> = Mutex::new(VecDeque::new());

/// Where dumps are written; `None` = the current directory.
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// The most recent dump, for dashboards and status lines.
static LAST_DUMP: Mutex<Option<DumpInfo>> = Mutex::new(None);

/// Description of a completed flight-recorder dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpInfo {
    /// Why the dump fired (`"panic"`, `"strict_failure"`, ...).
    pub reason: String,
    /// Path of the written black-box file.
    pub path: PathBuf,
    /// Number of events in the dump (≤ [`FLIGHT_CAPACITY`]).
    pub events: usize,
}

/// Appends a record to the ring, evicting the oldest past capacity.
/// Called by the event layer for every recorded event.
pub(crate) fn record(rec: &EventRecord) {
    if let Ok(mut ring) = RING.lock() {
        if ring.len() == FLIGHT_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(rec.clone());
    }
}

/// Number of events currently held in the ring.
#[must_use]
pub fn occupancy() -> usize {
    RING.lock().map(|r| r.len()).unwrap_or(0)
}

/// Redirects future [`dump`]s into `dir` instead of the current
/// directory (used by tests and by binaries that want their artifacts
/// collected in one place).
pub fn set_dump_dir(dir: impl Into<PathBuf>) {
    if let Ok(mut d) = DUMP_DIR.lock() {
        *d = Some(dir.into());
    }
}

/// The most recent dump written by this process, if any.
#[must_use]
pub fn last_dump() -> Option<DumpInfo> {
    LAST_DUMP.lock().ok().and_then(|d| d.clone())
}

/// Writes the ring to `flight-<run_id>.json` (in the dump directory, or
/// the current directory) and returns the dump description. A no-op
/// returning `None` when the ring is empty — with event streaming off
/// there is nothing in the box worth writing.
///
/// Never panics: this runs inside the panic hook, so lock and I/O
/// failures are swallowed (`try_lock` guards against a panic raised
/// while the ring lock was held).
pub fn dump(reason: &str) -> Option<DumpInfo> {
    let events: Vec<EventRecord> = match RING.try_lock() {
        Ok(ring) => ring.iter().cloned().collect(),
        Err(_) => return None,
    };
    if events.is_empty() {
        return None;
    }
    let run = crate::run::current();
    let run_id = run
        .as_ref()
        .map_or_else(|| "unknown".to_string(), |r| r.run_id.clone());
    let dir = DUMP_DIR
        .lock()
        .ok()
        .and_then(|d| d.clone())
        .unwrap_or_else(|| PathBuf::from("."));
    let path = dir.join(format!("flight-{run_id}.json"));
    let body = render(reason, run.as_ref(), &events);
    crate::fsio::atomic_write(&path, body).ok()?;
    let info = DumpInfo {
        reason: reason.to_string(),
        path,
        events: events.len(),
    };
    if let Ok(mut last) = LAST_DUMP.lock() {
        *last = Some(info.clone());
    }
    Some(info)
}

/// Renders the current ring as the same black-box JSON document [`dump`]
/// writes, without touching the filesystem or [`last_dump`] — the live
/// `GET /flight` endpoint, so a hung run can be black-boxed without
/// killing it. Unlike [`dump`], an empty ring still renders (as an empty
/// `events` array): a scraper asking "what happened lately" deserves a
/// well-formed answer, not a 404.
#[must_use]
pub fn render_current(reason: &str) -> String {
    let events: Vec<EventRecord> = RING
        .lock()
        .map(|ring| ring.iter().cloned().collect())
        .unwrap_or_default();
    render(reason, crate::run::current().as_ref(), &events)
}

/// Renders the black-box JSON document.
fn render(reason: &str, run: Option<&crate::run::RunContext>, events: &[EventRecord]) -> String {
    let mut out = String::with_capacity(128 + events.len() * 96);
    out.push_str("{\"reason\":");
    out.push_str(&crate::json::string(reason));
    if let Some(run) = run {
        out.push(',');
        out.push_str(&run.json_fields());
    }
    out.push_str(&format!(
        ",\"captured\":{},\"capacity\":{FLIGHT_CAPACITY},\"events\":[",
        events.len()
    ));
    for (i, rec) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // The top-level object carries the run id once; per-event
        // stamping would only repeat it.
        out.push_str(&rec.to_json(None));
    }
    out.push_str("]}");
    out
}

/// Installs (once) a panic hook that dumps the flight recorder before
/// delegating to the previous hook, so a chaos-suite crash leaves a
/// black box next to the backtrace.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = dump("panic");
            previous(info);
        }));
    });
}

/// Empties the ring and forgets the last dump (part of [`crate::reset`];
/// the dump directory override survives so a test can set it before
/// arming the recorder).
pub(crate) fn clear() {
    if let Ok(mut ring) = RING.lock() {
        ring.clear();
    }
    if let Ok(mut last) = LAST_DUMP.lock() {
        *last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_lock;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bmf-flight-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ring_wraps_at_capacity_keeping_the_newest() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        for i in 0..(FLIGHT_CAPACITY + 40) {
            let mut fields = String::new();
            crate::event::push_field(&mut fields, "i", &(i as u64));
            crate::event::emit(crate::event::Level::Info, "wrap.test", fields);
        }
        crate::disable();
        assert_eq!(occupancy(), FLIGHT_CAPACITY);
        let dir = temp_dir("wrap");
        set_dump_dir(&dir);
        let info = dump("test").expect("non-empty ring dumps");
        assert_eq!(info.events, FLIGHT_CAPACITY);
        let body = std::fs::read_to_string(&info.path).unwrap();
        let v = crate::json::parse(&body).expect("flight dump is valid JSON");
        let events = v
            .get("events")
            .and_then(crate::json::Value::as_array)
            .unwrap();
        assert_eq!(events.len(), FLIGHT_CAPACITY);
        // The oldest 40 were evicted: the first surviving event is #40.
        assert_eq!(
            events[0].get("i").and_then(crate::json::Value::as_f64),
            Some(40.0)
        );
        assert_eq!(
            events[FLIGHT_CAPACITY - 1]
                .get("i")
                .and_then(crate::json::Value::as_f64),
            Some((FLIGHT_CAPACITY + 39) as f64)
        );
        let _ = std::fs::remove_file(&info.path);
        crate::reset();
    }

    #[test]
    fn dump_is_a_no_op_on_an_empty_ring() {
        let _g = test_lock();
        crate::reset();
        assert_eq!(dump("nothing"), None);
        assert_eq!(last_dump(), None);
        crate::reset();
    }

    #[test]
    fn render_current_serves_the_ring_without_dumping() {
        let _g = test_lock();
        crate::reset();
        // Empty ring still renders a well-formed document.
        let v = crate::json::parse(&render_current("live")).unwrap();
        assert_eq!(
            v.get("captured").and_then(crate::json::Value::as_f64),
            Some(0.0)
        );
        crate::enable();
        crate::event!(Warn, "live.peek", "i": 1u64);
        crate::disable();
        let body = render_current("live");
        let v = crate::json::parse(&body).unwrap();
        assert_eq!(
            v.get("reason").and_then(crate::json::Value::as_str),
            Some("live")
        );
        assert_eq!(
            v.get("captured").and_then(crate::json::Value::as_f64),
            Some(1.0)
        );
        // No file written, no dump recorded, ring untouched.
        assert_eq!(last_dump(), None);
        assert_eq!(occupancy(), 1);
        crate::reset();
    }

    #[test]
    fn dump_carries_run_context_and_reason() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        crate::run::set(crate::run::RunContext::derive(99, "flight test"));
        crate::event!(Error, "ladder.transition", "from": "map", "to": "mle");
        crate::disable();
        let dir = temp_dir("run");
        set_dump_dir(&dir);
        let info = dump("strict_failure").unwrap();
        let expected_id = crate::run::RunContext::derive(99, "flight test").run_id;
        assert!(info
            .path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .contains(&expected_id));
        let v = crate::json::parse(&std::fs::read_to_string(&info.path).unwrap()).unwrap();
        assert_eq!(
            v.get("reason").and_then(crate::json::Value::as_str),
            Some("strict_failure")
        );
        assert_eq!(
            v.get("run_id").and_then(crate::json::Value::as_str),
            Some(expected_id.as_str())
        );
        assert_eq!(
            v.get("capacity").and_then(crate::json::Value::as_f64),
            Some(FLIGHT_CAPACITY as f64)
        );
        assert_eq!(last_dump(), Some(info.clone()));
        let _ = std::fs::remove_file(&info.path);
        crate::reset();
        assert_eq!(last_dump(), None);
    }
}
