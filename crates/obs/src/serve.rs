//! Live telemetry plane: a zero-dependency HTTP/1.1 observability
//! server, hand-rolled on `std::net` like [`crate::json`] is on `std`.
//!
//! Any binary attaches one with `--obs-listen <addr>` (see
//! [`crate::cli`]); while the run computes, operators can scrape:
//!
//! * `GET /metrics` — Prometheus text exposition 0.0.4
//!   ([`crate::prom::render`]), run id + hardware context as labels
//! * `GET /health` — live [`HealthReport`] + [`DriftTimeline`] JSON;
//!   `503` when either grades `critical`, `200` otherwise
//! * `GET /events?level=&n=` — tail of the structured event stream as
//!   JSONL (non-draining; exit-time artifacts still see everything)
//! * `GET /progress` — heartbeat-derived completion fraction + ETA per
//!   labelled loop
//! * `GET /` — the self-contained HTML dashboard re-rendered on demand
//!   from live state
//! * `GET /flight` — the current flight-recorder ring, so a hung run
//!   can be black-boxed without killing it
//! * `GET /timeseries?metric=&since=&step=` — the [`crate::tsdb`] ring
//!   store as JSON, so a scraper can see a regression *developing*
//! * `GET /alerts` — current [`crate::alert`] rule states; a firing
//!   critical rule also flips `/health` to `503`
//!
//! **The server never perturbs results.** Handler threads only *read*
//! the existing lock-free registries through the non-draining peeks
//! ([`crate::event::peek_records`], [`crate::span::peek_events`],
//! [`crate::flight::render_current`], [`crate::metrics::snapshot`]);
//! they never touch an RNG stream, never drain a sink, and never emit
//! events of their own. `tests/serve.rs` enforces bit-identity of the
//! final estimate with the server on or off, under concurrent scrape
//! load, at 1/2/7 worker threads — the same gate `tests/observability.rs`
//! applies to tracing itself.
//!
//! Malformed input cannot wedge a run: request lines are capped at
//! [`MAX_REQUEST_LINE`] bytes and headers at [`MAX_HEADER_BYTES`] total
//! (`431` beyond that), non-GET methods get `405`, unknown paths `404`,
//! syntactically broken requests `400`, and a connection that stalls
//! mid-request (slow-loris) is cut off by a [`READ_TIMEOUT`] read
//! timeout with a `408`. Each connection is handled on its own detached
//! thread so one stuck client never blocks the accept loop.

use crate::export::HardwareContext;
use crate::health::{DriftTimeline, HealthReport, Severity};
use crate::shard::{FleetSummary, ShardCoverage};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Read timeout per connection: a client that cannot deliver its
/// request headers within this window is answered `408` and dropped.
pub const READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Write timeout per connection.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// Maximum accepted request-line length in bytes.
pub const MAX_REQUEST_LINE: usize = 4096;
/// Maximum accepted total header bytes (request line included).
pub const MAX_HEADER_BYTES: usize = 8192;
/// Default `GET /events` tail length when `n` is not given.
pub const DEFAULT_EVENT_TAIL: usize = 50;

/// Environment variable naming a file the bound address is written to
/// (atomic write). With `--obs-listen 127.0.0.1:0` the kernel picks the
/// port; this is how CI discovers it.
pub const ADDR_FILE_ENV: &str = "BMF_OBS_ADDR_FILE";

/// Live snapshots published by the binaries as they compute, so `GET /`
/// and `GET /health` reflect mid-run state instead of exit artifacts.
#[derive(Default)]
struct LiveState {
    title: String,
    threads_used: usize,
    health: Option<HealthReport>,
    drift: Option<DriftTimeline>,
    shard: Option<ShardCoverage>,
    fleet: Option<FleetSummary>,
}

static LIVE: Mutex<Option<LiveState>> = Mutex::new(None);

fn with_live<R>(f: impl FnOnce(&mut LiveState) -> R) -> R {
    let mut guard = LIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(LiveState::default))
}

/// Publishes the latest health report for live scrapers. A no-op (one
/// relaxed load) while recording is disabled, like every instrumentation
/// point in this crate.
pub fn publish_health(health: &HealthReport) {
    if !crate::is_enabled() {
        return;
    }
    with_live(|l| l.health = Some(health.clone()));
}

/// Publishes the latest drift timeline for live scrapers. No-op while
/// recording is disabled.
pub fn publish_drift(drift: &DriftTimeline) {
    if !crate::is_enabled() {
        return;
    }
    with_live(|l| l.drift = Some(drift.clone()));
}

/// Publishes the latest shard coverage for live scrapers. No-op while
/// recording is disabled.
pub fn publish_shard(shard: &ShardCoverage) {
    if !crate::is_enabled() {
        return;
    }
    with_live(|l| l.shard = Some(shard.clone()));
}

/// Publishes the latest fleet summary for live scrapers. No-op while
/// recording is disabled.
pub fn publish_fleet(fleet: &FleetSummary) {
    if !crate::is_enabled() {
        return;
    }
    with_live(|l| l.fleet = Some(fleet.clone()));
}

/// Records the dashboard title / worker thread count used by live
/// renders (mirrors `ObsOptions` state into the live plane).
pub fn set_live_context(title: &str, threads_used: usize) {
    with_live(|l| {
        l.title = title.to_string();
        l.threads_used = threads_used.max(1);
    });
}

/// Forgets all published live state (part of [`crate::reset`]).
pub(crate) fn clear_live() {
    if let Ok(mut guard) = LIVE.lock() {
        *guard = None;
    }
}

/// Current live (health, drift) severities, for the alert engine's
/// health/drift rules. `None` until the estimator publishes a report.
pub(crate) fn live_severities() -> (Option<Severity>, Option<Severity>) {
    with_live(|l| {
        (
            l.health.as_ref().map(HealthReport::overall),
            l.drift.as_ref().map(DriftTimeline::overall),
        )
    })
}

/// One rendered HTTP response.
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn new(status: u16, content_type: &'static str, body: String) -> Response {
        Response {
            status,
            content_type,
            body,
        }
    }

    fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status, "text/plain; charset=utf-8", body.into())
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }
}

/// Splits `path?query` and dispatches to the endpoint renderers. Pure
/// with respect to the request (all state comes from the registries),
/// so unit tests exercise endpoints without sockets.
fn respond(target: &str) -> Response {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => render_metrics(),
        "/health" => render_health(),
        "/events" => render_events(query),
        "/progress" => render_progress(),
        "/timeseries" => render_timeseries(query),
        "/alerts" => Response::new(200, "application/json", crate::alert::render_json()),
        "/" | "/index.html" => render_dashboard(),
        "/flight" => Response::new(
            200,
            "application/json",
            crate::flight::render_current("live"),
        ),
        _ => Response::text(404, format!("no such endpoint: {path}\n")),
    }
}

fn live_hardware() -> HardwareContext {
    HardwareContext::detect(with_live(|l| l.threads_used.max(1)))
}

fn render_metrics() -> Response {
    let snapshot = crate::metrics::snapshot();
    let run = crate::run::current();
    let body = crate::prom::render(&snapshot, &live_hardware(), run.as_ref());
    Response::new(200, "text/plain; version=0.0.4; charset=utf-8", body)
}

fn render_health() -> Response {
    let (health_json, drift_json, worst) = with_live(|l| {
        let mut worst = Severity::Ok;
        let health = l.health.as_ref().map(|h| {
            if h.overall() == Severity::Critical {
                worst = Severity::Critical;
            }
            h.to_json()
        });
        let drift = l.drift.as_ref().map(|d| {
            if d.overall() == Severity::Critical {
                worst = Severity::Critical;
            }
            d.to_json()
        });
        (health, drift, worst)
    });
    // A firing critical alert makes the process unhealthy too — the
    // rule engine's escalation has the same weight as the estimator's
    // own health grade.
    let critical_alerts = crate::alert::any_critical_firing();
    let body = format!(
        "{{\"health\":{},\"drift\":{},\"critical_alerts\":{critical_alerts}}}",
        health_json.unwrap_or_else(|| "null".to_string()),
        drift_json.unwrap_or_else(|| "null".to_string()),
    );
    let status = if worst == Severity::Critical || critical_alerts {
        503
    } else {
        200
    };
    Response::new(status, "application/json", body)
}

/// `GET /timeseries?metric=&since=&step=`: the tsdb ring store as JSON.
/// `metric` filters to series equal to or prefixed by the value;
/// `since` (ms since the trace epoch) and `step` (minimum ms between
/// returned points) must be unsigned integers.
fn render_timeseries(query: &str) -> Response {
    let mut metric: Option<String> = None;
    let mut since_ms: Option<u64> = None;
    let mut step_ms: Option<u64> = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "metric" => metric = Some(value.to_string()),
            "since" => match value.parse::<u64>() {
                Ok(ms) => since_ms = Some(ms),
                Err(_) => {
                    return Response::text(
                        400,
                        format!("since must be milliseconds, got {value:?}\n"),
                    );
                }
            },
            "step" => match value.parse::<u64>() {
                Ok(ms) => step_ms = Some(ms),
                Err(_) => {
                    return Response::text(
                        400,
                        format!("step must be milliseconds, got {value:?}\n"),
                    );
                }
            },
            _ => return Response::text(400, format!("unknown query key {key:?}\n")),
        }
    }
    Response::new(
        200,
        "application/json",
        crate::tsdb::render_json(metric.as_deref(), since_ms, step_ms),
    )
}

fn render_events(query: &str) -> Response {
    let mut max_level = crate::event::Level::Debug;
    let mut n = DEFAULT_EVENT_TAIL;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "level" => match crate::event::Level::parse(value) {
                Some(level) => max_level = level,
                None => {
                    return Response::text(400, format!("unknown level {value:?}\n"));
                }
            },
            "n" => match value.parse::<usize>() {
                Ok(count) => n = count.min(10_000),
                Err(_) => {
                    return Response::text(400, format!("n must be a count, got {value:?}\n"));
                }
            },
            _ => return Response::text(400, format!("unknown query key {key:?}\n")),
        }
    }
    let records = crate::event::peek_records();
    let run = crate::run::current();
    let run_id = run.as_ref().map(|r| r.run_id.as_str());
    let tail: Vec<&crate::event::EventRecord> =
        records.iter().filter(|r| r.level <= max_level).collect();
    let skip = tail.len().saturating_sub(n);
    let mut body = String::with_capacity(128 * tail.len().min(n));
    for record in &tail[skip..] {
        body.push_str(&record.to_json(run_id));
        body.push('\n');
    }
    Response::new(200, "application/x-ndjson", body)
}

fn render_progress() -> Response {
    let tasks = crate::event::progress_snapshot();
    let mut body = String::from("{\"tasks\":[");
    for (i, task) in tasks.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&task.to_json());
    }
    body.push_str("]}");
    Response::new(200, "application/json", body)
}

fn render_dashboard() -> Response {
    let events = crate::span::peek_events();
    let records = crate::event::peek_records();
    let snapshot = crate::metrics::snapshot();
    let run = crate::run::current();
    let hardware = live_hardware();
    let bench_history = std::fs::read_to_string(crate::cli::BENCH_HISTORY_FILE).ok();
    let flight_dump = crate::flight::last_dump();
    let timeseries = crate::tsdb::snapshot();
    let alerts_json = crate::alert::installed().then(crate::alert::render_json);
    let body = with_live(|l| {
        crate::dashboard::render(&crate::dashboard::DashboardData {
            title: if l.title.is_empty() {
                "bmf live"
            } else {
                &l.title
            },
            hardware: &hardware,
            run: run.as_ref(),
            events: &events,
            event_log: &records,
            flight_occupancy: crate::flight::occupancy(),
            flight_dump: flight_dump.as_ref(),
            snapshot: &snapshot,
            health: l.health.as_ref(),
            drift: l.drift.as_ref(),
            shard: l.shard.as_ref(),
            fleet: l.fleet.as_ref(),
            bench_history_json: bench_history.as_deref(),
            timeseries: &timeseries,
            alerts_json: alerts_json.as_deref(),
            // The live page re-fetches itself so sparklines move while
            // the run is in flight; static exports never set this.
            refresh_s: Some(2),
        })
    });
    Response::new(200, "text/html; charset=utf-8", body)
}

/// Outcome of reading one request off a connection.
enum Request {
    Get(String),
    BadMethod,
    TooLarge,
    Malformed,
    TimedOut,
    Disconnected,
}

/// Reads and parses the request head (request line + headers; bodies
/// are not accepted — every endpoint is a GET).
fn read_request(stream: &mut TcpStream) -> Request {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        // Enough bytes for the request line? Parse once the line is in.
        if let Some(line_end) = find_crlf(&buf) {
            if line_end > MAX_REQUEST_LINE {
                return Request::TooLarge;
            }
            if buf.len() > MAX_HEADER_BYTES {
                return Request::TooLarge;
            }
            if find_head_end(&buf).is_some() {
                let line = String::from_utf8_lossy(&buf[..line_end]);
                let mut parts = line.split_whitespace();
                let method = parts.next().unwrap_or("");
                let target = parts.next().unwrap_or("");
                let version = parts.next().unwrap_or("");
                if !version.starts_with("HTTP/1.") || parts.next().is_some() {
                    return Request::Malformed;
                }
                if method != "GET" {
                    return Request::BadMethod;
                }
                if !target.starts_with('/') {
                    return Request::Malformed;
                }
                return Request::Get(target.to_string());
            }
        } else if buf.len() > MAX_REQUEST_LINE {
            return Request::TooLarge;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Request::TooLarge;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Request::Disconnected
                } else {
                    Request::Malformed
                }
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Request::TimedOut;
            }
            Err(_) => return Request::Disconnected,
        }
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

fn handle_connection(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let response = match read_request(&mut stream) {
        Request::Get(target) => respond(&target),
        Request::BadMethod => Response::text(405, "only GET is served here\n"),
        Request::TooLarge => Response::text(431, "request head too large\n"),
        Request::Malformed => Response::text(400, "malformed request\n"),
        Request::TimedOut => Response::text(408, "request not received in time\n"),
        Request::Disconnected => return,
    };
    write_response(&mut stream, &response);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// A running observability server. Dropping (or [`ObsServer::stop`])
/// shuts the accept loop down; in-flight handler threads finish their
/// response and exit.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9100"`; port `0` lets the kernel
    /// choose) and starts the accept loop on a background thread. When
    /// the [`ADDR_FILE_ENV`] environment variable names a file, the
    /// bound address is written there so callers can discover an
    /// ephemeral port.
    pub fn start(addr: &str) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        if let Ok(path) = std::env::var(ADDR_FILE_ENV) {
            if !path.is_empty() {
                let _ = crate::fsio::atomic_write(&path, format!("{addr}\n"));
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("bmf-obs-serve".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match conn {
                        Ok(stream) => {
                            // Detached per-connection thread: one stuck
                            // client must never block the accept loop.
                            let _ = std::thread::Builder::new()
                                .name("bmf-obs-conn".to_string())
                                .spawn(move || handle_connection(stream));
                        }
                        Err(_) => continue,
                    }
                }
            })?;
        Ok(ObsServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. Idempotent.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(500));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The process-wide server started by `--obs-listen`.
static GLOBAL: Mutex<Option<ObsServer>> = Mutex::new(None);

/// Starts (or replaces) the process-wide server on `addr`, returning
/// the bound address.
pub fn start_global(addr: &str) -> io::Result<SocketAddr> {
    let server = ObsServer::start(addr)?;
    let bound = server.local_addr();
    if let Ok(mut guard) = GLOBAL.lock() {
        *guard = Some(server); // the old server, if any, stops on drop
    }
    Ok(bound)
}

/// Address of the process-wide server, if one is running.
#[must_use]
pub fn global_addr() -> Option<SocketAddr> {
    GLOBAL
        .lock()
        .ok()
        .and_then(|g| g.as_ref().map(ObsServer::local_addr))
}

/// Stops the process-wide server, if one is running.
pub fn stop_global() {
    if let Ok(mut guard) = GLOBAL.lock() {
        *guard = None; // drop stops it
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_lock;

    /// Minimal raw HTTP GET against a test server.
    fn http_get(addr: SocketAddr, target: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let request = format!("GET {target} HTTP/1.1\r\nHost: test\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        parse_response(&raw)
    }

    fn parse_response(raw: &str) -> (u16, String, String) {
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status: u16 = head
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let content_type = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Type: "))
            .unwrap_or("")
            .to_string();
        (status, content_type, body.to_string())
    }

    #[test]
    fn serves_all_eight_endpoints() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        crate::run::set(crate::run::RunContext::derive(7, "serve test"));
        set_live_context("serve test", 2);
        crate::event!(Info, "serve.test", "i": 1u64);
        crate::tsdb::record("serve.series", 100, 1.0);
        crate::tsdb::record("serve.series", 200, 2.0);
        {
            let hb = crate::event::Heartbeat::new("serve.loop", 3);
            for _ in 0..3 {
                hb.tick();
            }
        }
        // Handler threads only see the global sink: push this thread's
        // buffered events there, as an outermost span close would.
        crate::event::flush_thread();
        let mut server = ObsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let (status, ctype, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(ctype.contains("version=0.0.4"), "{ctype}");
        crate::prom::validate_exposition(&body).expect("served metrics validate");
        assert!(body.contains("bmf_run_info"));

        let (status, ctype, body) = http_get(addr, "/health");
        assert_eq!(status, 200, "no health attached → not critical");
        assert!(ctype.contains("application/json"));
        let v = crate::json::parse(&body).expect("health JSON parses");
        assert!(v.get("health").is_some() && v.get("drift").is_some());

        let (status, _, body) = http_get(addr, "/events?level=info&n=10");
        assert_eq!(status, 200);
        assert!(body.lines().count() >= 2, "event + progress lines:\n{body}");
        for line in body.lines() {
            crate::json::parse(line).expect("JSONL line parses");
        }

        let (status, _, body) = http_get(addr, "/progress");
        assert_eq!(status, 200);
        let v = crate::json::parse(&body).expect("progress JSON parses");
        let tasks = v
            .get("tasks")
            .and_then(crate::json::Value::as_array)
            .unwrap();
        assert!(tasks
            .iter()
            .any(|t| t.get("label").and_then(crate::json::Value::as_str) == Some("serve.loop")));

        let (status, ctype, body) = http_get(addr, "/");
        assert_eq!(status, 200);
        assert!(ctype.contains("text/html"));
        assert!(body.contains("<html"));
        assert!(body.contains("serve test"));

        let (status, _, body) = http_get(addr, "/flight");
        assert_eq!(status, 200);
        let v = crate::json::parse(&body).expect("flight JSON parses");
        assert_eq!(
            v.get("reason").and_then(crate::json::Value::as_str),
            Some("live")
        );

        let (status, ctype, body) = http_get(addr, "/timeseries?metric=serve.series");
        assert_eq!(status, 200);
        assert!(ctype.contains("application/json"));
        let v = crate::json::parse(&body).expect("timeseries JSON parses");
        let series = v
            .get("series")
            .and_then(crate::json::Value::as_array)
            .unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(
            series[0].get("name").and_then(crate::json::Value::as_str),
            Some("serve.series")
        );

        let (status, ctype, body) = http_get(addr, "/alerts");
        assert_eq!(status, 200);
        assert!(ctype.contains("application/json"));
        let v = crate::json::parse(&body).expect("alerts JSON parses");
        assert!(v
            .get("rules")
            .and_then(crate::json::Value::as_array)
            .is_some());
        assert_eq!(
            v.get("critical_firing")
                .and_then(crate::json::Value::as_bool),
            Some(false)
        );

        let (status, _, _) = http_get(addr, "/nope");
        assert_eq!(status, 404);

        // The scrapes must not have drained anything.
        assert!(!crate::event::peek_records().is_empty());
        server.stop();
        crate::reset();
    }

    #[test]
    fn rejects_bad_methods_and_oversized_and_malformed_requests() {
        let _g = test_lock();
        crate::reset();
        let mut server = ObsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"BREW /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");

        let mut stream = TcpStream::connect(addr).unwrap();
        let huge = format!(
            "GET /metrics HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES + 1)
        );
        stream.write_all(huge.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 431"), "{raw}");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GARBAGE\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

        // Server is still healthy after the abuse.
        let (status, _, _) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        server.stop();
        crate::reset();
    }

    #[test]
    fn health_endpoint_returns_503_on_critical() {
        let _g = test_lock();
        crate::reset();
        crate::enable(); // publish_* are no-ops while recording is off
        use crate::health::*;
        let report = HealthReport {
            conflict: PriorDataConflict {
                mahalanobis_sq: 99.0,
                p_value: 1e-9,
                severity: classify_conflict(1e-9),
            },
            ess: EffectiveSampleSize {
                n: 32,
                kappa_n: 42.0,
                nu_excess: 37.0,
                shrinkage: 0.2,
                severity: classify_shrinkage(0.2),
            },
            spectrum: CovarianceSpectrum {
                eigenvalues: vec![0.5, 1.0],
                condition: 2.0,
                severity: classify_spectrum(0.5, 2.0),
            },
            cv: None,
            data_quality: DataQualityHealth {
                rows_in: 32,
                rows_out: 32,
                dropped_fraction: 0.0,
                constant_columns: 0,
                severity: classify_data_quality(true, 0.0, 0),
            },
        };
        assert_eq!(report.overall(), Severity::Critical);
        publish_health(&report);
        let response = render_health();
        assert_eq!(response.status, 503);
        let v = crate::json::parse(&response.body).unwrap();
        assert_eq!(
            v.get("health")
                .and_then(|h| h.get("overall"))
                .and_then(crate::json::Value::as_str),
            Some("critical")
        );
        crate::reset();
        // reset clears live state → healthy again.
        assert_eq!(render_health().status, 200);
    }

    #[test]
    fn events_endpoint_validates_query() {
        let _g = test_lock();
        crate::reset();
        assert_eq!(render_events("level=bogus").status, 400);
        assert_eq!(render_events("n=many").status, 400);
        assert_eq!(render_events("what=ever").status, 400);
        assert_eq!(render_events("level=warn&n=5").status, 200);
        crate::reset();
    }

    #[test]
    fn timeseries_endpoint_validates_query() {
        let _g = test_lock();
        crate::reset();
        assert_eq!(render_timeseries("since=soon").status, 400);
        assert_eq!(render_timeseries("step=big").status, 400);
        assert_eq!(render_timeseries("what=ever").status, 400);
        assert_eq!(render_timeseries("metric=x&since=5&step=10").status, 200);
        assert_eq!(render_timeseries("").status, 200);
        crate::reset();
    }

    #[test]
    fn health_endpoint_returns_503_while_a_critical_alert_fires() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        crate::tsdb::record("m.x", 100, 50.0);
        crate::alert::install(vec![crate::alert::Rule {
            name: "hot".to_string(),
            series: "m.x".to_string(),
            severity: crate::health::Severity::Critical,
            for_ms: 0,
            kind: crate::alert::RuleKind::Threshold {
                op: crate::alert::Comparison::Ge,
                value: 10.0,
                clear: 10.0,
            },
        }]);
        crate::alert::evaluate(100);
        assert!(crate::alert::any_critical_firing());
        let response = render_health();
        assert_eq!(response.status, 503);
        let v = crate::json::parse(&response.body).unwrap();
        assert_eq!(
            v.get("critical_alerts")
                .and_then(crate::json::Value::as_bool),
            Some(true)
        );
        // The alert clearing flips /health back to 200.
        crate::tsdb::record("m.x", 200, 1.0);
        crate::alert::evaluate(200);
        assert!(!crate::alert::any_critical_firing());
        assert_eq!(render_health().status, 200);
        crate::reset();
    }
}
