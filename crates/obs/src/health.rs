//! Statistical health types: estimator diagnostics and drift telemetry.
//!
//! This module holds the *vocabulary* of statistical health — plain
//! serializable data types plus the documented thresholds that map raw
//! diagnostics onto [`Severity`] levels. The *computation* lives in
//! `bmf_core` (`bmf_core::health::assess` and `bmf_core::drift`): the
//! obs crate stays zero-dependency and never imports linear algebra,
//! while the core crate owns the math and hands finished reports back
//! down for export.
//!
//! Everything here honours the crate's two invariants: a report is
//! computed *from* estimator outputs, never fed back into them, so
//! health monitoring cannot perturb a numeric result; and nothing in
//! this module touches process-wide recording state, so building a
//! report is pure data shuffling.

use crate::json::{number, string};
use std::fmt;

// ---------------------------------------------------------------------------
// Severity
// ---------------------------------------------------------------------------

/// Three-level severity for a health check, ordered `Ok < Warn < Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The diagnostic is within its documented normal range.
    Ok,
    /// The diagnostic is outside its normal range; the estimate is
    /// still usable but should be reviewed.
    Warn,
    /// The diagnostic indicates the estimate is likely unreliable.
    Critical,
}

impl Severity {
    /// Stable lowercase label used in JSON exports and the dashboard.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Ok => "ok",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }

    /// The worse of two severities.
    pub fn worst(self, other: Severity) -> Severity {
        self.max(other)
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------------
// Documented thresholds
// ---------------------------------------------------------------------------
//
// Every classify_* function below is the single source of truth for one
// check; the constants are public so tests and docs can reference the
// same numbers the pipeline uses.

/// Prior–data conflict: `Warn` when the prior-predictive p-value of the
/// late-stage sample mean drops below this (one run in 200 by chance).
pub const CONFLICT_P_WARN: f64 = 5e-3;
/// Prior–data conflict: `Critical` below this p-value (a ≥ 4.4σ event
/// in one dimension; essentially never by chance).
pub const CONFLICT_P_CRITICAL: f64 = 1e-5;

/// Shrinkage weight `κ₀/(κ₀+n)`: `Warn` above this — the prior
/// contributes more than ~99.5% of the posterior mean, so the data is
/// barely being heard.
pub const SHRINKAGE_WARN: f64 = 0.995;
/// Shrinkage weight: `Critical` above this — the data is effectively
/// ignored.
pub const SHRINKAGE_CRITICAL: f64 = 0.9999;

/// Covariance condition number: `Warn` above this (roughly half of the
/// f64 mantissa consumed by the spread of eigenvalues).
pub const CONDITION_WARN: f64 = 1e6;
/// Covariance condition number: `Critical` above this (solves through
/// the matrix lose most of their precision).
pub const CONDITION_CRITICAL: f64 = 1e10;

/// CV surface flatness: `Warn` when the best score exceeds the median
/// finite score by less than this — the grid cannot distinguish
/// hyper-parameters, so the selected `(κ₀, ν₀)` is arbitrary.
pub const CV_FLAT_SPREAD: f64 = 1e-6;

/// Data quality: `Critical` when the guard dropped at least this
/// fraction of late-stage rows.
pub const DQ_DROP_CRITICAL: f64 = 0.25;

/// Drift: `Warn` when a window's Gaussian KL divergence from the
/// early-stage model exceeds this (in nats; well clear of the
/// finite-window estimation bias of `(d + d(d+1)/2)/(2·window)`).
pub const DRIFT_KL_WARN: f64 = 2.0;
/// Drift: `Critical` above this KL divergence.
pub const DRIFT_KL_CRITICAL: f64 = 6.0;

/// Classifies a prior-predictive p-value.
pub fn classify_conflict(p_value: f64) -> Severity {
    if !p_value.is_finite() || p_value < CONFLICT_P_CRITICAL {
        Severity::Critical
    } else if p_value < CONFLICT_P_WARN {
        Severity::Warn
    } else {
        Severity::Ok
    }
}

/// Classifies a shrinkage weight `κ₀/(κ₀+n)`.
pub fn classify_shrinkage(shrinkage: f64) -> Severity {
    if !shrinkage.is_finite() || shrinkage > SHRINKAGE_CRITICAL {
        Severity::Critical
    } else if shrinkage > SHRINKAGE_WARN {
        Severity::Warn
    } else {
        Severity::Ok
    }
}

/// Classifies a covariance eigenspectrum by its smallest eigenvalue and
/// condition number.
pub fn classify_spectrum(min_eigenvalue: f64, condition: f64) -> Severity {
    if min_eigenvalue <= 0.0 || !condition.is_finite() || condition > CONDITION_CRITICAL {
        Severity::Critical
    } else if condition > CONDITION_WARN {
        Severity::Warn
    } else {
        Severity::Ok
    }
}

/// Classifies a CV log-likelihood surface summary. A hit on the *lower*
/// grid boundary warns (the optimum may lie outside the searched range
/// toward an even weaker prior); the upper boundary is benign because
/// the grid top already corresponds to near-total trust in the prior.
/// A flat surface also warns: the selection is then arbitrary.
pub fn classify_cv_surface(spread: f64, lower_boundary_hit: bool) -> Severity {
    if lower_boundary_hit || !spread.is_finite() || spread < CV_FLAT_SPREAD {
        Severity::Warn
    } else {
        Severity::Ok
    }
}

/// Classifies data quality from the guard report: any finding warns,
/// heavy row loss or constant columns are critical.
pub fn classify_data_quality(
    clean: bool,
    dropped_fraction: f64,
    constant_columns: usize,
) -> Severity {
    if dropped_fraction >= DQ_DROP_CRITICAL || constant_columns > 0 {
        Severity::Critical
    } else if !clean {
        Severity::Warn
    } else {
        Severity::Ok
    }
}

/// Classifies a drift window by its KL divergence (nats).
pub fn classify_drift(kl: f64) -> Severity {
    if !kl.is_finite() || kl > DRIFT_KL_CRITICAL {
        Severity::Critical
    } else if kl > DRIFT_KL_WARN {
        Severity::Warn
    } else {
        Severity::Ok
    }
}

// ---------------------------------------------------------------------------
// Health report
// ---------------------------------------------------------------------------

/// Prior–data conflict check: Mahalanobis distance of the late-stage
/// sample mean under the prior predictive `N(μ₀, (1/κ₀ + 1/n)·Σ_E)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorDataConflict {
    /// Squared Mahalanobis distance of the sample mean, scaled by the
    /// prior-predictive variance inflation `1/κ₀ + 1/n`.
    pub mahalanobis_sq: f64,
    /// Upper-tail χ²(d) p-value of `mahalanobis_sq`.
    pub p_value: f64,
    /// Classification per [`classify_conflict`].
    pub severity: Severity,
}

/// Effective sample size and shrinkage of the normal-Wishart posterior.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectiveSampleSize {
    /// Raw late-stage sample count after guard screening.
    pub n: usize,
    /// Posterior mean pseudo-count `κ₀ + n`.
    pub kappa_n: f64,
    /// Posterior covariance degrees of freedom above the minimum,
    /// `ν₀ + n − d`.
    pub nu_excess: f64,
    /// Shrinkage weight `κ₀ / (κ₀ + n)` — the prior's share of the
    /// posterior mean.
    pub shrinkage: f64,
    /// Classification per [`classify_shrinkage`].
    pub severity: Severity,
}

/// Eigenspectrum of the fused covariance estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct CovarianceSpectrum {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Condition number `λ_max / λ_min`.
    pub condition: f64,
    /// Classification per [`classify_spectrum`].
    pub severity: Severity,
}

/// Summary of the cross-validation log-likelihood surface.
#[derive(Debug, Clone, PartialEq)]
pub struct CvSurface {
    /// Selected `κ₀`.
    pub kappa0: f64,
    /// Selected `ν₀`.
    pub nu0: f64,
    /// Log-likelihood score at the argmax.
    pub score: f64,
    /// Best score minus the median finite score — the surface's
    /// "decisiveness". Near zero means the grid cannot tell candidates
    /// apart.
    pub spread: f64,
    /// True when the argmax sits on the lower edge of either
    /// hyper-parameter grid.
    pub boundary_hit: bool,
    /// Classification per [`classify_cv_surface`].
    pub severity: Severity,
}

/// Data-quality summary distilled from the guard report.
#[derive(Debug, Clone, PartialEq)]
pub struct DataQualityHealth {
    /// Late-stage rows before screening.
    pub rows_in: usize,
    /// Rows surviving screening.
    pub rows_out: usize,
    /// Fraction of rows dropped.
    pub dropped_fraction: f64,
    /// Number of constant (zero-variance) columns found.
    pub constant_columns: usize,
    /// Classification per [`classify_data_quality`].
    pub severity: Severity,
}

/// Per-run statistical health report attached to a fusion result.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Prior–data conflict check.
    pub conflict: PriorDataConflict,
    /// Effective sample size and shrinkage.
    pub ess: EffectiveSampleSize,
    /// Eigenspectrum of the fused covariance.
    pub spectrum: CovarianceSpectrum,
    /// CV surface summary; `None` when CV was skipped or failed and the
    /// pipeline fell back to default hyper-parameters.
    pub cv: Option<CvSurface>,
    /// Data-quality summary.
    pub data_quality: DataQualityHealth,
}

impl HealthReport {
    /// The worst severity across all checks.
    pub fn overall(&self) -> Severity {
        let mut worst = self
            .conflict
            .severity
            .worst(self.ess.severity)
            .worst(self.spectrum.severity)
            .worst(self.data_quality.severity);
        if let Some(cv) = &self.cv {
            worst = worst.worst(cv.severity);
        }
        worst
    }

    /// Serializes the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(768);
        out.push_str("{\"overall\":");
        out.push_str(&string(self.overall().label()));
        out.push_str(",\"conflict\":{\"mahalanobis_sq\":");
        out.push_str(&number(self.conflict.mahalanobis_sq));
        out.push_str(",\"p_value\":");
        out.push_str(&number(self.conflict.p_value));
        out.push_str(",\"severity\":");
        out.push_str(&string(self.conflict.severity.label()));
        out.push_str("},\"ess\":{\"n\":");
        out.push_str(&self.ess.n.to_string());
        out.push_str(",\"kappa_n\":");
        out.push_str(&number(self.ess.kappa_n));
        out.push_str(",\"nu_excess\":");
        out.push_str(&number(self.ess.nu_excess));
        out.push_str(",\"shrinkage\":");
        out.push_str(&number(self.ess.shrinkage));
        out.push_str(",\"severity\":");
        out.push_str(&string(self.ess.severity.label()));
        out.push_str("},\"spectrum\":{\"eigenvalues\":[");
        for (i, ev) in self.spectrum.eigenvalues.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&number(*ev));
        }
        out.push_str("],\"condition\":");
        out.push_str(&number(self.spectrum.condition));
        out.push_str(",\"severity\":");
        out.push_str(&string(self.spectrum.severity.label()));
        out.push_str("},\"cv\":");
        match &self.cv {
            Some(cv) => {
                out.push_str("{\"kappa0\":");
                out.push_str(&number(cv.kappa0));
                out.push_str(",\"nu0\":");
                out.push_str(&number(cv.nu0));
                out.push_str(",\"score\":");
                out.push_str(&number(cv.score));
                out.push_str(",\"spread\":");
                out.push_str(&number(cv.spread));
                out.push_str(",\"boundary_hit\":");
                out.push_str(if cv.boundary_hit { "true" } else { "false" });
                out.push_str(",\"severity\":");
                out.push_str(&string(cv.severity.label()));
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"data_quality\":{\"rows_in\":");
        out.push_str(&self.data_quality.rows_in.to_string());
        out.push_str(",\"rows_out\":");
        out.push_str(&self.data_quality.rows_out.to_string());
        out.push_str(",\"dropped_fraction\":");
        out.push_str(&number(self.data_quality.dropped_fraction));
        out.push_str(",\"constant_columns\":");
        out.push_str(&self.data_quality.constant_columns.to_string());
        out.push_str(",\"severity\":");
        out.push_str(&string(self.data_quality.severity.label()));
        out.push_str("}}");
        out
    }

    /// One-line human summary for log output.
    pub fn summary(&self) -> String {
        format!(
            "health {}: conflict p={:.3e} [{}], shrinkage={:.4} [{}], cond={:.3e} [{}], cv={}, dq [{}]",
            self.overall().label(),
            self.conflict.p_value,
            self.conflict.severity.label(),
            self.ess.shrinkage,
            self.ess.severity.label(),
            self.spectrum.condition,
            self.spectrum.severity.label(),
            match &self.cv {
                Some(cv) => format!(
                    "(k0={:.3}, nu0={:.3}) [{}]",
                    cv.kappa0,
                    cv.nu0,
                    cv.severity.label()
                ),
                None => "skipped".to_string(),
            },
            self.data_quality.severity.label(),
        )
    }
}

// ---------------------------------------------------------------------------
// Drift timeline
// ---------------------------------------------------------------------------

/// One closed drift window: divergence of the window's sample moments
/// from the early-stage reference model.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftWindow {
    /// Zero-based window index.
    pub index: usize,
    /// Index of the first sample in this window.
    pub start_sample: usize,
    /// Number of samples in the window.
    pub n: usize,
    /// Gaussian KL divergence `KL(N_window ‖ N_early)` in nats;
    /// `+∞` when the window covariance is singular.
    pub kl: f64,
    /// Euclidean distance `‖μ_window − μ_early‖₂`.
    pub mean_dist: f64,
    /// Relative Frobenius drift `‖Σ_window − Σ_early‖_F / ‖Σ_early‖_F`.
    pub cov_frob: f64,
    /// Classification per [`classify_drift`].
    pub severity: Severity,
}

/// Full drift history over a run: closed windows plus the alert log.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriftTimeline {
    /// Closed windows in order.
    pub windows: Vec<DriftWindow>,
    /// Human-readable alert messages (one per `Warn`/`Critical` window).
    pub alerts: Vec<String>,
}

impl DriftTimeline {
    /// The worst severity across all windows (`Ok` when empty).
    pub fn overall(&self) -> Severity {
        self.windows
            .iter()
            .map(|w| w.severity)
            .fold(Severity::Ok, Severity::worst)
    }

    /// Serializes the timeline as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.windows.len() * 128);
        out.push_str("{\"overall\":");
        out.push_str(&string(self.overall().label()));
        out.push_str(",\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"index\":");
            out.push_str(&w.index.to_string());
            out.push_str(",\"start_sample\":");
            out.push_str(&w.start_sample.to_string());
            out.push_str(",\"n\":");
            out.push_str(&w.n.to_string());
            out.push_str(",\"kl\":");
            out.push_str(&number(w.kl));
            out.push_str(",\"mean_dist\":");
            out.push_str(&number(w.mean_dist));
            out.push_str(",\"cov_frob\":");
            out.push_str(&number(w.cov_frob));
            out.push_str(",\"severity\":");
            out.push_str(&string(w.severity.label()));
            out.push('}');
        }
        out.push_str("],\"alerts\":[");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&string(a));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_report() -> HealthReport {
        HealthReport {
            conflict: PriorDataConflict {
                mahalanobis_sq: 3.2,
                p_value: 0.67,
                severity: classify_conflict(0.67),
            },
            ess: EffectiveSampleSize {
                n: 32,
                kappa_n: 42.0,
                nu_excess: 37.0,
                shrinkage: 10.0 / 42.0,
                severity: classify_shrinkage(10.0 / 42.0),
            },
            spectrum: CovarianceSpectrum {
                eigenvalues: vec![0.5, 1.0, 2.5],
                condition: 5.0,
                severity: classify_spectrum(0.5, 5.0),
            },
            cv: Some(CvSurface {
                kappa0: 10.0,
                nu0: 7.0,
                score: -12.5,
                spread: 3.4,
                boundary_hit: false,
                severity: classify_cv_surface(3.4, false),
            }),
            data_quality: DataQualityHealth {
                rows_in: 40,
                rows_out: 32,
                dropped_fraction: 0.2,
                constant_columns: 0,
                severity: classify_data_quality(false, 0.2, 0),
            },
        }
    }

    #[test]
    fn severity_ordering_and_worst() {
        assert!(Severity::Ok < Severity::Warn);
        assert!(Severity::Warn < Severity::Critical);
        assert_eq!(Severity::Ok.worst(Severity::Warn), Severity::Warn);
        assert_eq!(Severity::Critical.worst(Severity::Ok), Severity::Critical);
    }

    #[test]
    fn thresholds_classify_as_documented() {
        assert_eq!(classify_conflict(0.5), Severity::Ok);
        assert_eq!(classify_conflict(1e-3), Severity::Warn);
        assert_eq!(classify_conflict(1e-9), Severity::Critical);
        assert_eq!(classify_conflict(f64::NAN), Severity::Critical);

        assert_eq!(classify_shrinkage(0.5), Severity::Ok);
        assert_eq!(classify_shrinkage(0.999), Severity::Warn);
        assert_eq!(classify_shrinkage(0.99999), Severity::Critical);

        assert_eq!(classify_spectrum(0.1, 10.0), Severity::Ok);
        assert_eq!(classify_spectrum(0.1, 1e8), Severity::Warn);
        assert_eq!(classify_spectrum(0.1, 1e12), Severity::Critical);
        assert_eq!(classify_spectrum(-1e-12, 10.0), Severity::Critical);

        assert_eq!(classify_cv_surface(1.0, false), Severity::Ok);
        assert_eq!(classify_cv_surface(1.0, true), Severity::Warn);
        assert_eq!(classify_cv_surface(1e-9, false), Severity::Warn);

        assert_eq!(classify_data_quality(true, 0.0, 0), Severity::Ok);
        assert_eq!(classify_data_quality(false, 0.1, 0), Severity::Warn);
        assert_eq!(classify_data_quality(false, 0.3, 0), Severity::Critical);
        assert_eq!(classify_data_quality(false, 0.0, 2), Severity::Critical);

        assert_eq!(classify_drift(0.5), Severity::Ok);
        assert_eq!(classify_drift(3.0), Severity::Warn);
        assert_eq!(classify_drift(10.0), Severity::Critical);
        assert_eq!(classify_drift(f64::INFINITY), Severity::Critical);
    }

    #[test]
    fn health_report_json_parses_back() {
        let report = sample_report();
        let value = parse(&report.to_json()).expect("health JSON must parse");
        assert_eq!(
            value.get("overall").and_then(|v| v.as_str()),
            Some(report.overall().label())
        );
        let conflict = value.get("conflict").expect("conflict section");
        assert_eq!(conflict.get("p_value").and_then(|v| v.as_f64()), Some(0.67));
        let evs = value
            .get("spectrum")
            .and_then(|s| s.get("eigenvalues"))
            .and_then(|v| v.as_array())
            .expect("eigenvalues array");
        assert_eq!(evs.len(), 3);
        assert!(value.get("cv").and_then(|c| c.get("kappa0")).is_some());
    }

    #[test]
    fn health_report_json_with_null_cv() {
        let mut report = sample_report();
        report.cv = None;
        let value = parse(&report.to_json()).expect("health JSON must parse");
        assert!(matches!(value.get("cv"), Some(crate::json::Value::Null)));
    }

    #[test]
    fn overall_tracks_worst_check() {
        let mut report = sample_report();
        assert_eq!(report.overall(), Severity::Warn); // dq is warn
        report.data_quality.severity = Severity::Ok;
        assert_eq!(report.overall(), Severity::Ok);
        report.conflict.severity = Severity::Critical;
        assert_eq!(report.overall(), Severity::Critical);
    }

    #[test]
    fn drift_timeline_json_parses_back() {
        let timeline = DriftTimeline {
            windows: vec![
                DriftWindow {
                    index: 0,
                    start_sample: 0,
                    n: 32,
                    kl: 0.2,
                    mean_dist: 0.1,
                    cov_frob: 0.05,
                    severity: classify_drift(0.2),
                },
                DriftWindow {
                    index: 1,
                    start_sample: 32,
                    n: 32,
                    kl: 4.0,
                    mean_dist: 1.8,
                    cov_frob: 0.6,
                    severity: classify_drift(4.0),
                },
            ],
            alerts: vec!["window 1: kl=4.0 \"exceeds\" warn".to_string()],
        };
        assert_eq!(timeline.overall(), Severity::Warn);
        let value = parse(&timeline.to_json()).expect("drift JSON must parse");
        let windows = value
            .get("windows")
            .and_then(|v| v.as_array())
            .expect("windows array");
        assert_eq!(windows.len(), 2);
        assert_eq!(
            windows[1].get("severity").and_then(|v| v.as_str()),
            Some("warn")
        );
        let alerts = value
            .get("alerts")
            .and_then(|v| v.as_array())
            .expect("alerts array");
        assert_eq!(alerts.len(), 1);
        // Hostile quote in the alert text survives the round trip.
        assert!(alerts[0].as_str().unwrap().contains('"'));
    }

    #[test]
    fn empty_timeline_is_ok_overall() {
        let timeline = DriftTimeline::default();
        assert_eq!(timeline.overall(), Severity::Ok);
        let value = parse(&timeline.to_json()).expect("empty drift JSON must parse");
        assert_eq!(value.get("overall").and_then(|v| v.as_str()), Some("ok"));
    }
}
