//! Run correlation: one id that joins every artifact of a run.
//!
//! A [`RunContext`] derives a 64-bit run id from the run's root seed and
//! a hash of its configuration string, so two runs with the same inputs
//! get the same id (reproducibility is the repo's whole point — the id
//! is a *name* for the run's inputs, not a nonce). Binaries install the
//! context once via [`ObsOptions::set_run`](crate::cli::ObsOptions::set_run);
//! the id is then stamped into every JSONL event line, the
//! `FusionReport`, the Chrome trace and metrics exports, the bench
//! history entries, the dashboard and any flight-recorder dump, letting
//! offline tools join them without guessing by timestamp.

use std::sync::Mutex;

/// Identity of the current process run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunContext {
    /// 16-hex-digit run id derived from `root_seed` and `config_hash`.
    pub run_id: String,
    /// The run's root RNG seed.
    pub root_seed: u64,
    /// FNV-1a hash of the configuration string.
    pub config_hash: u64,
}

/// FNV-1a, 64-bit. Public because shard packets reuse it as their
/// payload checksum — one hash, one implementation, everywhere.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64-style avalanche, so adjacent seeds get unrelated ids.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RunContext {
    /// Derives the context for a run with root seed `root_seed` and a
    /// free-form configuration description `config` (the binary's view
    /// of its own settings — flags, sample counts, thread count is
    /// deliberately *excluded* so the id is thread-count invariant).
    #[must_use]
    pub fn derive(root_seed: u64, config: &str) -> RunContext {
        let config_hash = fnv1a(config.as_bytes());
        let id = mix(root_seed.wrapping_add(0x9E37_79B9_7F4A_7C15) ^ mix(config_hash));
        RunContext {
            run_id: format!("{id:016x}"),
            root_seed,
            config_hash,
        }
    }

    /// Braceless JSON fields (`"run_id":...,"root_seed":...,...`) for
    /// splicing into export metadata objects.
    #[must_use]
    pub fn json_fields(&self) -> String {
        format!(
            "\"run_id\":\"{}\",\"root_seed\":{},\"config_hash\":\"{:016x}\"",
            crate::json::escape(&self.run_id),
            self.root_seed,
            self.config_hash
        )
    }
}

static CURRENT: Mutex<Option<RunContext>> = Mutex::new(None);

/// Installs `ctx` as the process-wide current run.
pub fn set(ctx: RunContext) {
    if let Ok(mut current) = CURRENT.lock() {
        *current = Some(ctx);
    }
}

/// The current run context, if one was installed.
#[must_use]
pub fn current() -> Option<RunContext> {
    CURRENT.lock().ok().and_then(|c| c.clone())
}

/// The current run id, if a context was installed.
#[must_use]
pub fn run_id() -> Option<String> {
    CURRENT
        .lock()
        .ok()
        .and_then(|c| c.as_ref().map(|ctx| ctx.run_id.clone()))
}

/// Clears the current run (test isolation; part of [`crate::reset`]).
pub(crate) fn clear() {
    if let Ok(mut current) = CURRENT.lock() {
        *current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_lock;

    #[test]
    fn derive_is_deterministic_and_sensitive_to_both_inputs() {
        let a = RunContext::derive(2015, "fig4 --quick");
        assert_eq!(a, RunContext::derive(2015, "fig4 --quick"));
        assert_eq!(a.run_id.len(), 16);
        assert!(a.run_id.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a.run_id, RunContext::derive(2016, "fig4 --quick").run_id);
        assert_ne!(a.run_id, RunContext::derive(2015, "fig4").run_id);
    }

    #[test]
    fn json_fields_parse_inside_an_object() {
        let ctx = RunContext::derive(7, "ablations");
        let doc = format!("{{{}}}", ctx.json_fields());
        let v = crate::json::parse(&doc).unwrap();
        assert_eq!(
            v.get("run_id").and_then(crate::json::Value::as_str),
            Some(ctx.run_id.as_str())
        );
        assert_eq!(
            v.get("root_seed").and_then(crate::json::Value::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn set_current_clear_round_trip() {
        let _g = test_lock();
        crate::reset();
        assert_eq!(current(), None);
        assert_eq!(run_id(), None);
        let ctx = RunContext::derive(42, "test");
        set(ctx.clone());
        assert_eq!(current(), Some(ctx.clone()));
        assert_eq!(run_id(), Some(ctx.run_id));
        crate::reset();
        assert_eq!(current(), None, "reset clears the run context");
    }
}
