//! Fixed-memory in-process time-series store and background sampler.
//!
//! Every other surface in this crate is *instantaneous*: a `/metrics`
//! scrape or dashboard render shows one snapshot. This module adds the
//! temporal axis: a background [`Sampler`] snapshots every counter,
//! histogram percentile (p50/p90/p99), progress fraction and
//! [`ProcessStats`](crate::metrics::ProcessStats) field at a fixed
//! cadence into per-series rings, so `/timeseries` and the dashboard's
//! Timeline sparklines can show a regression *developing* mid-run.
//!
//! Memory is strictly bounded: at most [`MAX_SERIES`] series of at most
//! [`RING_CAPACITY`] points each. Timestamps are stored delta-encoded
//! (`u32` milliseconds between consecutive points on top of one `u64`
//! base), and when a ring fills it downsamples in place by a power of
//! two — every other retained point is dropped, oldest data decaying to
//! a coarser cadence while the newest samples stay at full resolution.
//! The most recent sample of a series is always retained.
//!
//! The module obeys the crate's two invariants: recording is gated on
//! the one relaxed [`crate::is_enabled`] load, and nothing here is ever
//! read back into a numeric computation — the sampler only *observes*
//! the metrics registry.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Maximum points retained per series before downsampling halves it.
pub const RING_CAPACITY: usize = 512;

/// Maximum number of distinct series; later registrations are dropped
/// so an adversarial label stream cannot grow memory without bound.
pub const MAX_SERIES: usize = 128;

/// Default sampler cadence when `--sample-interval-ms` is not given.
pub const DEFAULT_SAMPLE_INTERVAL_MS: u64 = 250;

/// One series ring: delta-encoded timestamps plus raw values.
struct Series {
    /// Timestamp of `values[0]`, milliseconds since the trace epoch.
    base_ts_ms: u64,
    /// Timestamp of the newest point (cached to avoid a prefix sum).
    last_ts_ms: u64,
    /// `deltas_ms[i]` is `ts[i] - ts[i-1]`; `deltas_ms[0]` is zero.
    deltas_ms: Vec<u32>,
    values: Vec<f64>,
    /// Power-of-two factor the oldest data has been thinned by.
    downsample: u32,
}

impl Series {
    fn new() -> Self {
        Series {
            base_ts_ms: 0,
            last_ts_ms: 0,
            deltas_ms: Vec::new(),
            values: Vec::new(),
            downsample: 1,
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.values.len()
    }

    fn push(&mut self, ts_ms: u64, value: f64) {
        // Timestamps must be monotone for the ring algebra; a clock
        // oddity is clamped rather than trusted.
        let ts_ms = ts_ms.max(self.last_ts_ms);
        if self.values.is_empty() {
            self.base_ts_ms = ts_ms;
            self.last_ts_ms = ts_ms;
            self.deltas_ms.push(0);
            self.values.push(value);
            return;
        }
        if self.values.len() >= RING_CAPACITY {
            self.halve();
        }
        let delta = (ts_ms - self.last_ts_ms).min(u64::from(u32::MAX)) as u32;
        self.deltas_ms.push(delta);
        self.values.push(value);
        self.last_ts_ms = ts_ms;
    }

    /// Drops every other point, keeping indices counted from the *end*
    /// so the newest sample always survives; merged timestamps keep the
    /// deltas consistent.
    fn halve(&mut self) {
        let ts = self.timestamps();
        let n = ts.len();
        let mut new_ts = Vec::with_capacity(n / 2 + 1);
        let mut new_vals = Vec::with_capacity(n / 2 + 1);
        for (i, &t) in ts.iter().enumerate() {
            if (n - 1 - i).is_multiple_of(2) {
                new_ts.push(t);
                new_vals.push(self.values[i]);
            }
        }
        self.base_ts_ms = new_ts.first().copied().unwrap_or(0);
        self.deltas_ms.clear();
        let mut prev = self.base_ts_ms;
        for &t in &new_ts {
            self.deltas_ms
                .push((t - prev).min(u64::from(u32::MAX)) as u32);
            prev = t;
        }
        if let Some(first) = self.deltas_ms.first_mut() {
            *first = 0;
        }
        self.values = new_vals;
        self.downsample = self.downsample.saturating_mul(2);
    }

    /// Absolute timestamps reconstructed from the delta encoding.
    fn timestamps(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.deltas_ms.len());
        let mut t = self.base_ts_ms;
        for (i, &d) in self.deltas_ms.iter().enumerate() {
            if i > 0 {
                t += u64::from(d);
            }
            out.push(t);
        }
        out
    }

    fn points(&self) -> Vec<(u64, f64)> {
        self.timestamps()
            .into_iter()
            .zip(self.values.iter().copied())
            .collect()
    }
}

/// A read-only copy of one series for rendering and validation.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    pub name: String,
    /// Power-of-two thinning factor the ring has applied so far.
    pub downsample: u32,
    /// `(ts_ms, value)` pairs, timestamps strictly monotone
    /// non-decreasing, milliseconds since the trace epoch.
    pub points: Vec<(u64, f64)>,
}

static STORE: Mutex<BTreeMap<String, Series>> = Mutex::new(BTreeMap::new());

/// Records one observation. No-op when recording is disabled, when the
/// series budget ([`MAX_SERIES`]) is exhausted, or when the name would
/// not survive the `prom.rs` mangling rules (series share the metric
/// naming charset: ASCII alphanumerics, `.` and `_`, starting with a
/// letter or underscore).
pub fn record(name: &str, ts_ms: u64, value: f64) {
    if !crate::is_enabled() || !valid_series_name(name) {
        return;
    }
    let Ok(mut store) = STORE.lock() else {
        return;
    };
    if !store.contains_key(name) && store.len() >= MAX_SERIES {
        return;
    }
    store
        .entry(name.to_string())
        .or_insert_with(Series::new)
        .push(ts_ms, value);
}

/// Whether `name` is a legal series name: the `prom.rs` exposition
/// charset plus `.` (which [`crate::prom`] mangles to `_` on export).
pub fn valid_series_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Maps an arbitrary label (e.g. a progress heartbeat label) into the
/// series charset; characters outside it become `_`.
pub fn sanitize_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for (i, c) in label.chars().enumerate() {
        let ok = if i == 0 {
            c.is_ascii_alphabetic() || c == '_'
        } else {
            c.is_ascii_alphanumeric() || c == '_' || c == '.'
        };
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Copies every stored series (sorted by name).
pub fn snapshot() -> Vec<SeriesSnapshot> {
    let Ok(store) = STORE.lock() else {
        return Vec::new();
    };
    store
        .iter()
        .map(|(name, s)| SeriesSnapshot {
            name: name.clone(),
            downsample: s.downsample,
            points: s.points(),
        })
        .collect()
}

/// The newest `(ts_ms, value)` of a series, if it has any points.
pub fn latest(name: &str) -> Option<(u64, f64)> {
    let store = STORE.lock().ok()?;
    let s = store.get(name)?;
    if s.values.is_empty() {
        return None;
    }
    Some((s.last_ts_ms, *s.values.last().unwrap()))
}

/// Mean rate of change of a series in value-units per second over the
/// window `[since_ms, now]`. `None` until the window holds two points
/// at least one millisecond apart.
pub fn rate_per_sec(name: &str, since_ms: u64) -> Option<f64> {
    let store = STORE.lock().ok()?;
    let s = store.get(name)?;
    let points = s.points();
    let window: Vec<&(u64, f64)> = points.iter().filter(|(t, _)| *t >= since_ms).collect();
    let (first, last) = match (window.first(), window.last()) {
        (Some(f), Some(l)) if l.0 > f.0 => (*f, *l),
        _ => return None,
    };
    Some((last.1 - first.1) / ((last.0 - first.0) as f64 / 1000.0))
}

/// Discards every stored series.
pub fn clear() {
    if let Ok(mut store) = STORE.lock() {
        store.clear();
    }
}

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

/// Takes one sample of the whole observable surface — every counter,
/// histogram percentile, progress fraction and process-stat field —
/// stamping all series with the same tick timestamp. Returns that
/// timestamp (ms since the trace epoch); no-op (returning 0) when
/// recording is disabled.
///
/// Counters are recorded once they first become non-zero, so an idle
/// counter does not burn ring memory before it has a story to tell.
pub fn sample_once() -> u64 {
    if !crate::is_enabled() {
        return 0;
    }
    let ts_ms = crate::span::now_ns() / 1_000_000;
    let snap = crate::metrics::snapshot();
    for (name, value) in &snap.counters {
        if *value > 0 || latest(name).is_some() {
            record(name, ts_ms, *value as f64);
        }
    }
    for hist in &snap.histograms {
        if hist.count == 0 {
            continue;
        }
        for (suffix, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            if let Some(v) = hist.percentile_ns(q) {
                record(&format!("{}.{suffix}", hist.name), ts_ms, v as f64);
            }
        }
    }
    for entry in crate::event::progress_snapshot() {
        record(
            &format!("progress.{}", sanitize_label(entry.label)),
            ts_ms,
            entry.fraction(),
        );
    }
    if let Some(p) = &snap.process {
        record("process.rss_bytes", ts_ms, p.rss_bytes as f64);
        record("process.user_cpu_ms", ts_ms, p.user_cpu_ms as f64);
        record("process.sys_cpu_ms", ts_ms, p.sys_cpu_ms as f64);
        record("process.open_fds", ts_ms, p.open_fds as f64);
    }
    ts_ms
}

/// One sampler tick: sample the registry, then hand the tick to the
/// alert engine so rules see exactly the data that was just stored.
pub fn tick() -> u64 {
    let ts_ms = sample_once();
    if ts_ms > 0 {
        crate::alert::evaluate(ts_ms);
    }
    ts_ms
}

// ---------------------------------------------------------------------------
// JSON rendering (the `/timeseries` endpoint and packet digests)
// ---------------------------------------------------------------------------

/// Renders the store as the `/timeseries` JSON document, optionally
/// filtered to series whose name equals or starts with `metric`, to
/// points at or after `since_ms`, and thinned so consecutive emitted
/// points are at least `step_ms` apart (the newest point always
/// survives the thinning).
pub fn render_json(metric: Option<&str>, since_ms: Option<u64>, step_ms: Option<u64>) -> String {
    let now_ms = crate::span::now_ns() / 1_000_000;
    let mut out = String::from("{");
    out.push_str(&format!("\"now_ms\":{now_ms},\"series\":["));
    let mut first = true;
    for s in snapshot() {
        if let Some(m) = metric {
            if !(s.name == m || s.name.starts_with(m)) {
                continue;
            }
        }
        let kept = thin_points(&s.points, since_ms.unwrap_or(0), step_ms.unwrap_or(0));
        if kept.is_empty() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":{},\"downsample\":{},\"points\":[",
            crate::json::string(&s.name),
            s.downsample
        ));
        for (i, (t, v)) in kept.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{t},{}]", crate::json::number(*v)));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Applies the `since`/`step` query filters to one series' points.
fn thin_points(points: &[(u64, f64)], since_ms: u64, step_ms: u64) -> Vec<(u64, f64)> {
    let windowed: Vec<(u64, f64)> = points
        .iter()
        .copied()
        .filter(|(t, _)| *t >= since_ms)
        .collect();
    if step_ms == 0 || windowed.len() <= 1 {
        return windowed;
    }
    let mut out = Vec::new();
    let mut last_kept: Option<u64> = None;
    for (i, (t, v)) in windowed.iter().enumerate() {
        let is_last = i == windowed.len() - 1;
        if is_last || last_kept.is_none_or(|k| *t >= k + step_ms) {
            out.push((*t, *v));
            last_kept = Some(*t);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Background sampler
// ---------------------------------------------------------------------------

/// A background thread snapshotting the observable surface at a fixed
/// cadence. Stopping (or dropping) the sampler joins the thread after
/// one final synchronous tick, so the last state of every series — and
/// any alert resolution it implies — is always captured.
pub struct Sampler {
    shared: std::sync::Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling every `interval_ms` milliseconds (minimum 1).
    pub fn start(interval_ms: u64) -> Sampler {
        let interval = Duration::from_millis(interval_ms.max(1));
        let shared = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let thread_shared = std::sync::Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("bmf-sampler".to_string())
            .spawn(move || {
                let (stop, cvar) = &*thread_shared;
                loop {
                    tick();
                    let guard = match stop.lock() {
                        Ok(g) => g,
                        Err(_) => return,
                    };
                    let (guard, _) = match cvar.wait_timeout(guard, interval) {
                        Ok(r) => r,
                        Err(_) => return,
                    };
                    if *guard {
                        break;
                    }
                }
                // Final tick: capture the end state so a rule whose
                // condition cleared in the last interval still resolves.
                tick();
            })
            .expect("spawn sampler thread");
        Sampler {
            shared,
            handle: Some(handle),
        }
    }

    /// Signals the thread to stop and joins it (idempotent).
    pub fn stop(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        let (stop, cvar) = &*self.shared;
        if let Ok(mut guard) = stop.lock() {
            *guard = true;
        }
        cvar.notify_all();
        let _ = handle.join();
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The CLI-owned global sampler (mirrors `serve::start_global`).
static GLOBAL: Mutex<Option<Sampler>> = Mutex::new(None);

/// Starts the process-wide sampler (replacing any previous one).
pub fn start_global(interval_ms: u64) {
    let mut slot = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(mut old) = slot.take() {
        old.stop();
    }
    *slot = Some(Sampler::start(interval_ms));
}

/// Stops the process-wide sampler, if one is running.
pub fn stop_global() {
    let sampler = {
        let mut slot = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        slot.take()
    };
    if let Some(mut sampler) = sampler {
        sampler.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_lock;
    use proptest::prelude::*;

    #[test]
    fn disabled_record_is_a_noop() {
        let _g = test_lock();
        crate::reset();
        record("quiet.series", 10, 1.0);
        assert!(snapshot().is_empty());
        assert_eq!(sample_once(), 0);
        crate::reset();
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        record("a.counter", 10, 1.0);
        record("a.counter", 20, 2.0);
        record("b.gauge", 15, -0.5);
        let snap = snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a.counter");
        assert_eq!(snap[0].points, vec![(10, 1.0), (20, 2.0)]);
        assert_eq!(snap[1].points, vec![(15, -0.5)]);
        assert_eq!(latest("a.counter"), Some((20, 2.0)));
        assert_eq!(latest("nope"), None);
        crate::reset();
        assert!(snapshot().is_empty(), "reset clears the store");
    }

    #[test]
    fn invalid_names_and_series_overflow_are_dropped() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        record("bad name with spaces", 1, 1.0);
        record("1starts_with_digit", 1, 1.0);
        record("", 1, 1.0);
        assert!(snapshot().is_empty());
        for i in 0..(MAX_SERIES + 10) {
            record(&format!("s.{i}"), 1, 1.0);
        }
        assert_eq!(snapshot().len(), MAX_SERIES);
        crate::reset();
    }

    #[test]
    fn sanitize_label_maps_into_the_series_charset() {
        assert_eq!(sanitize_label("mc.schematic"), "mc.schematic");
        assert_eq!(sanitize_label("late stage"), "late_stage");
        assert_eq!(sanitize_label("9lives"), "_lives");
        assert_eq!(sanitize_label(""), "_");
        assert!(valid_series_name(&sanitize_label("weird ün!label")));
    }

    #[test]
    fn rate_per_sec_needs_two_points_in_window() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        record("r.series", 1000, 10.0);
        assert_eq!(rate_per_sec("r.series", 0), None);
        record("r.series", 2000, 30.0);
        assert_eq!(rate_per_sec("r.series", 0), Some(20.0));
        // Window that excludes the first point: one point left, no rate.
        assert_eq!(rate_per_sec("r.series", 1500), None);
        crate::reset();
    }

    #[test]
    fn sample_once_covers_counters_histograms_progress_and_process() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        crate::metrics::counters::MONTE_CARLO_SIMS.add(7);
        crate::metrics::histograms::CHOLESKY_NS.record(1_000);
        let hb = crate::event::Heartbeat::new("tsdb test stage", 4);
        hb.tick();
        hb.tick();
        let ts = sample_once();
        let names: Vec<String> = snapshot().into_iter().map(|s| s.name).collect();
        assert!(names.iter().any(|n| n == "monte_carlo.sims"), "{names:?}");
        assert!(
            names.iter().any(|n| n.ends_with(".p50")),
            "histogram percentiles missing: {names:?}"
        );
        assert!(
            names.iter().any(|n| n == "progress.tsdb_test_stage"),
            "{names:?}"
        );
        for name in &names {
            assert!(valid_series_name(name), "bad series name {name:?}");
        }
        assert_eq!(latest("monte_carlo.sims"), Some((ts, 7.0)));
        crate::reset();
    }

    #[test]
    fn render_json_filters_and_reparses() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        for i in 0..10u64 {
            record("x.first", i * 100, i as f64);
            record("y.second", i * 100, -(i as f64));
        }
        let all = crate::json::parse(&render_json(None, None, None)).expect("valid JSON");
        assert_eq!(
            all.get("series")
                .and_then(crate::json::Value::as_array)
                .map(<[crate::json::Value]>::len),
            Some(2)
        );
        let filtered =
            crate::json::parse(&render_json(Some("x."), Some(500), Some(200))).expect("valid");
        let series = filtered
            .get("series")
            .and_then(crate::json::Value::as_array)
            .unwrap();
        assert_eq!(series.len(), 1);
        let points = series[0]
            .get("points")
            .and_then(crate::json::Value::as_array)
            .unwrap();
        // since=500 keeps ts 500..900; step=200 keeps 500, 700, 900.
        assert_eq!(points.len(), 3);
        crate::reset();
    }

    #[test]
    fn sampler_thread_ticks_and_final_tick_runs_on_stop() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        crate::metrics::counters::MONTE_CARLO_SIMS.add(3);
        let mut sampler = Sampler::start(5);
        std::thread::sleep(Duration::from_millis(40));
        sampler.stop();
        sampler.stop(); // idempotent
        let snap = snapshot();
        let sims = snap
            .iter()
            .find(|s| s.name == "monte_carlo.sims")
            .expect("sampled");
        assert!(sims.points.len() >= 2, "expected several ticks");
        crate::reset();
    }

    proptest! {
        /// Any monotone push sequence keeps the ring within its memory
        /// bound, timestamps monotone, and the final pushed sample
        /// retained verbatim — through any number of downsample rounds.
        #[test]
        fn ring_is_bounded_monotone_and_keeps_the_last_sample(
            steps in proptest::collection::vec(0u64..5_000, 1200),
            seed in 0u64..1000,
        ) {
            let mut s = Series::new();
            let mut ts = seed;
            for (i, step) in steps.iter().enumerate() {
                ts += step;
                let v = (i as f64) * 0.25 - 3.0;
                s.push(ts, v);
                let last = (ts.max(s.base_ts_ms), v);

                prop_assert!(s.len() <= RING_CAPACITY, "ring exceeded capacity");
                prop_assert_eq!(s.deltas_ms.len(), s.values.len());
                let stamps = s.timestamps();
                for w in stamps.windows(2) {
                    prop_assert!(w[0] <= w[1], "timestamps must be monotone");
                }
                let (lt, lv) = *s.points().last().expect("non-empty");
                prop_assert_eq!(lt, last.0, "newest timestamp retained");
                prop_assert_eq!(lv.to_bits(), last.1.to_bits(), "newest value retained");
            }
            prop_assert!(s.downsample >= 2, "1200 pushes must downsample a 512 ring");
            prop_assert!(s.downsample.is_power_of_two());
        }

        /// Downsampling halves rings deterministically: a full ring
        /// shrinks to at most half plus the retained newest point.
        #[test]
        fn downsample_halves_occupancy(extra in 1usize..600) {
            let mut s = Series::new();
            for i in 0..(RING_CAPACITY + extra) {
                s.push((i as u64) * 10, i as f64);
            }
            prop_assert!(s.len() <= RING_CAPACITY);
            prop_assert!(s.len() >= RING_CAPACITY / 2);
        }
    }
}
