//! Shard-coverage vocabulary for sharded Monte Carlo studies.
//!
//! When a study is split into independently executed shards and merged
//! back from sufficient-statistic packets, the merge's view of *which*
//! shards actually arrived is itself a health signal: a missing or
//! corrupt shard means the merged estimate was built from fewer samples
//! than planned. [`ShardCoverage`] is the plain serializable record of
//! that view — planned versus observed shard indices and sample counts,
//! the quorum policy applied, and the variance-widening factor charged
//! for the shortfall. Like [`crate::health`], this module holds only
//! the vocabulary; the merge math lives in `bmf_circuits::shard` and
//! the estimate lives in `bmf_core`, which hand the finished record
//! back down for reports and the dashboard shard panel.

use crate::health::Severity;
use crate::json::{number, string};

/// Which shards a merge actually saw, and what that cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCoverage {
    /// Planned number of shards in the study partition.
    pub shard_count: usize,
    /// Distinct shard indices successfully merged.
    pub merged: usize,
    /// Shard indices that never arrived (sorted).
    pub missing: Vec<usize>,
    /// Shard indices whose packets failed validation (sorted).
    pub corrupt: Vec<usize>,
    /// Redundant packets dropped as exact duplicates.
    pub duplicates: usize,
    /// Quorum: the minimum number of merged shards the policy accepts.
    pub min_shards: usize,
    /// Late-stage samples the full partition would have contributed.
    pub planned_late: usize,
    /// Late-stage samples actually merged.
    pub observed_late: usize,
    /// Covariance widening factor `planned_late / observed_late` (≥ 1)
    /// charged to the fused covariance when coverage is incomplete, so
    /// a degraded merge reports honestly wider uncertainty.
    pub inflation: f64,
}

impl ShardCoverage {
    /// True when every planned shard merged cleanly.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.merged == self.shard_count && self.missing.is_empty() && self.corrupt.is_empty()
    }

    /// Fraction of planned shards that merged, in `[0, 1]`.
    #[must_use]
    pub fn coverage_fraction(&self) -> f64 {
        if self.shard_count == 0 {
            return 0.0;
        }
        self.merged as f64 / self.shard_count as f64
    }

    /// True when the merged shard count satisfies the quorum policy.
    #[must_use]
    pub fn quorum_met(&self) -> bool {
        self.merged >= self.min_shards
    }

    /// `Ok` for complete coverage, `Warn` for a degraded-but-quorate
    /// merge, `Critical` below quorum (strict mode refuses to produce
    /// an estimate at all in that case; the record still grades it).
    #[must_use]
    pub fn severity(&self) -> Severity {
        if !self.quorum_met() {
            Severity::Critical
        } else if !self.is_complete() {
            Severity::Warn
        } else {
            Severity::Ok
        }
    }

    /// Serializes the record as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let list = |v: &[usize]| {
            let items: Vec<String> = v.iter().map(|i| i.to_string()).collect();
            format!("[{}]", items.join(","))
        };
        let mut out = String::with_capacity(256);
        out.push_str("{\"severity\":");
        out.push_str(&string(self.severity().label()));
        out.push_str(&format!(
            ",\"shard_count\":{},\"merged\":{},\"missing\":{},\"corrupt\":{},\"duplicates\":{},\"min_shards\":{},\"planned_late\":{},\"observed_late\":{},\"inflation\":{}",
            self.shard_count,
            self.merged,
            list(&self.missing),
            list(&self.corrupt),
            self.duplicates,
            self.min_shards,
            self.planned_late,
            self.observed_late,
            number(self.inflation),
        ));
        out.push('}');
        out
    }

    /// One-line human summary for reports and status lines.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut line = format!(
            "shards: {}/{} merged ({} late samples of {})",
            self.merged, self.shard_count, self.observed_late, self.planned_late
        );
        if !self.missing.is_empty() {
            line.push_str(&format!(" missing={:?}", self.missing));
        }
        if !self.corrupt.is_empty() {
            line.push_str(&format!(" corrupt={:?}", self.corrupt));
        }
        if self.duplicates > 0 {
            line.push_str(&format!(" duplicates={}", self.duplicates));
        }
        if self.inflation > 1.0 {
            line.push_str(&format!(" inflation={:.4}", self.inflation));
        }
        line.push_str(&format!(" [{}]", self.severity().label()));
        line
    }
}

/// A shard's wall-clock is flagged as a straggler when it exceeds the
/// fleet median by this factor.
pub const STRAGGLER_RATIO: f64 = 1.5;

/// One shard's telemetry row in a merged fleet view.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetShardRow {
    /// Shard index within the partition.
    pub index: usize,
    /// Wall-clock span of the shard process's compute phase.
    pub wall_ns: u64,
    /// Monte Carlo simulations the shard ran (`monte_carlo.sims` delta).
    pub sims: u64,
    /// Simulator retries the shard absorbed.
    pub retries: u64,
    /// Structured events the shard recorded (tail length carried in the
    /// packet, capped at the packet's event-tail capacity).
    pub events: usize,
    /// Whether this shard's wall-clock exceeds [`STRAGGLER_RATIO`] ×
    /// the fleet median.
    pub straggler: bool,
}

/// Fleet-wide view folded from per-shard packet telemetry at merge
/// time: per-shard rows plus straggler detection as the slowest/median
/// wall-clock ratio. Only shards whose packets carried telemetry
/// appear (version-1 packets, or shards run with recording off,
/// contribute stats but no row).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Run id the packets were stamped with.
    pub run_id: String,
    /// Per-shard rows, sorted by shard index.
    pub shards: Vec<FleetShardRow>,
    /// Median shard wall-clock (average of the middle two when even).
    pub median_wall_ns: u64,
    /// Slowest shard wall-clock.
    pub slowest_wall_ns: u64,
    /// `slowest / median` — the straggler signal; 1.0 for a balanced
    /// fleet, 0.0 when no shard reported a wall-clock.
    pub straggler_ratio: f64,
}

impl FleetSummary {
    /// Folds per-shard rows into a fleet view, computing the median,
    /// the slowest shard, and straggler flags.
    #[must_use]
    pub fn from_rows(run_id: &str, mut shards: Vec<FleetShardRow>) -> FleetSummary {
        shards.sort_by_key(|r| r.index);
        let mut walls: Vec<u64> = shards.iter().map(|r| r.wall_ns).collect();
        walls.sort_unstable();
        let median_wall_ns = if walls.is_empty() {
            0
        } else if walls.len() % 2 == 1 {
            walls[walls.len() / 2]
        } else {
            (walls[walls.len() / 2 - 1] + walls[walls.len() / 2]) / 2
        };
        let slowest_wall_ns = walls.last().copied().unwrap_or(0);
        let straggler_ratio = if median_wall_ns > 0 {
            slowest_wall_ns as f64 / median_wall_ns as f64
        } else {
            0.0
        };
        for row in &mut shards {
            row.straggler =
                median_wall_ns > 0 && row.wall_ns as f64 >= STRAGGLER_RATIO * median_wall_ns as f64;
        }
        FleetSummary {
            run_id: run_id.to_string(),
            shards,
            median_wall_ns,
            slowest_wall_ns,
            straggler_ratio,
        }
    }

    /// Indices of the flagged stragglers, sorted.
    #[must_use]
    pub fn stragglers(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|r| r.straggler)
            .map(|r| r.index)
            .collect()
    }

    /// Serializes the fleet view as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.shards.len() * 96);
        out.push_str("{\"run_id\":");
        out.push_str(&string(&self.run_id));
        out.push_str(&format!(
            ",\"median_wall_ns\":{},\"slowest_wall_ns\":{},\"straggler_ratio\":{},\"stragglers\":[{}],\"shards\":[",
            self.median_wall_ns,
            self.slowest_wall_ns,
            number(self.straggler_ratio),
            self.stragglers()
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(","),
        ));
        for (i, row) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"wall_ns\":{},\"sims\":{},\"retries\":{},\"events\":{},\"straggler\":{}}}",
                row.index, row.wall_ns, row.sims, row.retries, row.events, row.straggler,
            ));
        }
        out.push_str("]}");
        out
    }

    /// One-line human summary for merge status lines.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut line = format!(
            "fleet: {} shard(s) reporting, median {:.3}s, slowest {:.3}s ({:.2}x)",
            self.shards.len(),
            self.median_wall_ns as f64 / 1e9,
            self.slowest_wall_ns as f64 / 1e9,
            self.straggler_ratio,
        );
        let stragglers = self.stragglers();
        if !stragglers.is_empty() {
            line.push_str(&format!(" stragglers={stragglers:?}"));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete() -> ShardCoverage {
        ShardCoverage {
            shard_count: 4,
            merged: 4,
            missing: vec![],
            corrupt: vec![],
            duplicates: 0,
            min_shards: 3,
            planned_late: 200,
            observed_late: 200,
            inflation: 1.0,
        }
    }

    #[test]
    fn severity_ladder_complete_degraded_below_quorum() {
        let full = complete();
        assert!(full.is_complete());
        assert!(full.quorum_met());
        assert_eq!(full.severity(), Severity::Ok);
        assert_eq!(full.coverage_fraction(), 1.0);

        let degraded = ShardCoverage {
            merged: 3,
            missing: vec![2],
            planned_late: 200,
            observed_late: 150,
            inflation: 200.0 / 150.0,
            ..complete()
        };
        assert!(!degraded.is_complete());
        assert!(degraded.quorum_met());
        assert_eq!(degraded.severity(), Severity::Warn);

        let starved = ShardCoverage {
            merged: 2,
            missing: vec![1],
            corrupt: vec![3],
            observed_late: 100,
            inflation: 2.0,
            ..complete()
        };
        assert!(!starved.quorum_met());
        assert_eq!(starved.severity(), Severity::Critical);
    }

    #[test]
    fn json_is_parseable_and_carries_every_field() {
        let cov = ShardCoverage {
            merged: 3,
            missing: vec![0],
            duplicates: 2,
            observed_late: 150,
            inflation: 4.0 / 3.0,
            ..complete()
        };
        let v = crate::json::parse(&cov.to_json()).expect("coverage JSON parses");
        assert_eq!(
            v.get("severity").and_then(crate::json::Value::as_str),
            Some("warn")
        );
        assert_eq!(
            v.get("merged").and_then(crate::json::Value::as_f64),
            Some(3.0)
        );
        let missing = v
            .get("missing")
            .and_then(crate::json::Value::as_array)
            .unwrap();
        assert_eq!(missing.len(), 1);
        assert_eq!(
            v.get("duplicates").and_then(crate::json::Value::as_f64),
            Some(2.0)
        );
        assert!(
            v.get("inflation")
                .and_then(crate::json::Value::as_f64)
                .unwrap()
                > 1.3
        );
    }

    #[test]
    fn summary_mentions_gaps_and_severity() {
        let cov = ShardCoverage {
            merged: 3,
            missing: vec![2],
            duplicates: 1,
            observed_late: 150,
            inflation: 4.0 / 3.0,
            ..complete()
        };
        let line = cov.summary();
        assert!(line.contains("3/4"), "{line}");
        assert!(line.contains("missing=[2]"), "{line}");
        assert!(line.contains("duplicates=1"), "{line}");
        assert!(line.contains("inflation=1.3333"), "{line}");
        assert!(line.contains("[warn]"), "{line}");
        assert!(complete().summary().contains("[ok]"));
    }

    fn row(index: usize, wall_ns: u64) -> FleetShardRow {
        FleetShardRow {
            index,
            wall_ns,
            sims: 100,
            retries: 2,
            events: 10,
            straggler: false,
        }
    }

    #[test]
    fn fleet_summary_flags_stragglers_against_the_median() {
        let fleet = FleetSummary::from_rows(
            "deadbeefdeadbeef",
            vec![row(2, 1_000), row(0, 1_100), row(1, 900), row(3, 4_000)],
        );
        // Rows come back sorted by index.
        let indices: Vec<usize> = fleet.shards.iter().map(|r| r.index).collect();
        assert_eq!(indices, [0, 1, 2, 3]);
        // Even count: median of {900,1000,1100,4000} = (1000+1100)/2.
        assert_eq!(fleet.median_wall_ns, 1_050);
        assert_eq!(fleet.slowest_wall_ns, 4_000);
        assert!((fleet.straggler_ratio - 4_000.0 / 1_050.0).abs() < 1e-12);
        assert_eq!(fleet.stragglers(), [3]);
        assert!(fleet.shards[3].straggler);
        assert!(!fleet.shards[0].straggler);

        let v = crate::json::parse(&fleet.to_json()).expect("fleet JSON parses");
        assert_eq!(
            v.get("run_id").and_then(crate::json::Value::as_str),
            Some("deadbeefdeadbeef")
        );
        let shards = v
            .get("shards")
            .and_then(crate::json::Value::as_array)
            .unwrap();
        assert_eq!(shards.len(), 4);
        assert_eq!(
            shards[3]
                .get("straggler")
                .and_then(crate::json::Value::as_bool),
            Some(true)
        );
        assert!(fleet.summary().contains("stragglers=[3]"));
    }

    #[test]
    fn balanced_fleet_has_no_stragglers_and_empty_fleet_is_sane() {
        let fleet = FleetSummary::from_rows("abc", vec![row(0, 1_000), row(1, 1_001)]);
        assert!(fleet.stragglers().is_empty());
        assert!(fleet.straggler_ratio >= 1.0 && fleet.straggler_ratio < 1.01);

        let empty = FleetSummary::from_rows("abc", vec![]);
        assert_eq!(empty.median_wall_ns, 0);
        assert_eq!(empty.straggler_ratio, 0.0);
        assert!(crate::json::parse(&empty.to_json()).is_ok());
    }

    #[test]
    fn zero_shard_plan_has_zero_coverage() {
        let cov = ShardCoverage {
            shard_count: 0,
            merged: 0,
            min_shards: 0,
            planned_late: 0,
            observed_late: 0,
            ..complete()
        };
        assert_eq!(cov.coverage_fraction(), 0.0);
    }
}
