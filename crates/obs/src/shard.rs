//! Shard-coverage vocabulary for sharded Monte Carlo studies.
//!
//! When a study is split into independently executed shards and merged
//! back from sufficient-statistic packets, the merge's view of *which*
//! shards actually arrived is itself a health signal: a missing or
//! corrupt shard means the merged estimate was built from fewer samples
//! than planned. [`ShardCoverage`] is the plain serializable record of
//! that view — planned versus observed shard indices and sample counts,
//! the quorum policy applied, and the variance-widening factor charged
//! for the shortfall. Like [`crate::health`], this module holds only
//! the vocabulary; the merge math lives in `bmf_circuits::shard` and
//! the estimate lives in `bmf_core`, which hand the finished record
//! back down for reports and the dashboard shard panel.

use crate::health::Severity;
use crate::json::{number, string};

/// Which shards a merge actually saw, and what that cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCoverage {
    /// Planned number of shards in the study partition.
    pub shard_count: usize,
    /// Distinct shard indices successfully merged.
    pub merged: usize,
    /// Shard indices that never arrived (sorted).
    pub missing: Vec<usize>,
    /// Shard indices whose packets failed validation (sorted).
    pub corrupt: Vec<usize>,
    /// Redundant packets dropped as exact duplicates.
    pub duplicates: usize,
    /// Quorum: the minimum number of merged shards the policy accepts.
    pub min_shards: usize,
    /// Late-stage samples the full partition would have contributed.
    pub planned_late: usize,
    /// Late-stage samples actually merged.
    pub observed_late: usize,
    /// Covariance widening factor `planned_late / observed_late` (≥ 1)
    /// charged to the fused covariance when coverage is incomplete, so
    /// a degraded merge reports honestly wider uncertainty.
    pub inflation: f64,
}

impl ShardCoverage {
    /// True when every planned shard merged cleanly.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.merged == self.shard_count && self.missing.is_empty() && self.corrupt.is_empty()
    }

    /// Fraction of planned shards that merged, in `[0, 1]`.
    #[must_use]
    pub fn coverage_fraction(&self) -> f64 {
        if self.shard_count == 0 {
            return 0.0;
        }
        self.merged as f64 / self.shard_count as f64
    }

    /// True when the merged shard count satisfies the quorum policy.
    #[must_use]
    pub fn quorum_met(&self) -> bool {
        self.merged >= self.min_shards
    }

    /// `Ok` for complete coverage, `Warn` for a degraded-but-quorate
    /// merge, `Critical` below quorum (strict mode refuses to produce
    /// an estimate at all in that case; the record still grades it).
    #[must_use]
    pub fn severity(&self) -> Severity {
        if !self.quorum_met() {
            Severity::Critical
        } else if !self.is_complete() {
            Severity::Warn
        } else {
            Severity::Ok
        }
    }

    /// Serializes the record as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let list = |v: &[usize]| {
            let items: Vec<String> = v.iter().map(|i| i.to_string()).collect();
            format!("[{}]", items.join(","))
        };
        let mut out = String::with_capacity(256);
        out.push_str("{\"severity\":");
        out.push_str(&string(self.severity().label()));
        out.push_str(&format!(
            ",\"shard_count\":{},\"merged\":{},\"missing\":{},\"corrupt\":{},\"duplicates\":{},\"min_shards\":{},\"planned_late\":{},\"observed_late\":{},\"inflation\":{}",
            self.shard_count,
            self.merged,
            list(&self.missing),
            list(&self.corrupt),
            self.duplicates,
            self.min_shards,
            self.planned_late,
            self.observed_late,
            number(self.inflation),
        ));
        out.push('}');
        out
    }

    /// One-line human summary for reports and status lines.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut line = format!(
            "shards: {}/{} merged ({} late samples of {})",
            self.merged, self.shard_count, self.observed_late, self.planned_late
        );
        if !self.missing.is_empty() {
            line.push_str(&format!(" missing={:?}", self.missing));
        }
        if !self.corrupt.is_empty() {
            line.push_str(&format!(" corrupt={:?}", self.corrupt));
        }
        if self.duplicates > 0 {
            line.push_str(&format!(" duplicates={}", self.duplicates));
        }
        if self.inflation > 1.0 {
            line.push_str(&format!(" inflation={:.4}", self.inflation));
        }
        line.push_str(&format!(" [{}]", self.severity().label()));
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete() -> ShardCoverage {
        ShardCoverage {
            shard_count: 4,
            merged: 4,
            missing: vec![],
            corrupt: vec![],
            duplicates: 0,
            min_shards: 3,
            planned_late: 200,
            observed_late: 200,
            inflation: 1.0,
        }
    }

    #[test]
    fn severity_ladder_complete_degraded_below_quorum() {
        let full = complete();
        assert!(full.is_complete());
        assert!(full.quorum_met());
        assert_eq!(full.severity(), Severity::Ok);
        assert_eq!(full.coverage_fraction(), 1.0);

        let degraded = ShardCoverage {
            merged: 3,
            missing: vec![2],
            planned_late: 200,
            observed_late: 150,
            inflation: 200.0 / 150.0,
            ..complete()
        };
        assert!(!degraded.is_complete());
        assert!(degraded.quorum_met());
        assert_eq!(degraded.severity(), Severity::Warn);

        let starved = ShardCoverage {
            merged: 2,
            missing: vec![1],
            corrupt: vec![3],
            observed_late: 100,
            inflation: 2.0,
            ..complete()
        };
        assert!(!starved.quorum_met());
        assert_eq!(starved.severity(), Severity::Critical);
    }

    #[test]
    fn json_is_parseable_and_carries_every_field() {
        let cov = ShardCoverage {
            merged: 3,
            missing: vec![0],
            duplicates: 2,
            observed_late: 150,
            inflation: 4.0 / 3.0,
            ..complete()
        };
        let v = crate::json::parse(&cov.to_json()).expect("coverage JSON parses");
        assert_eq!(
            v.get("severity").and_then(crate::json::Value::as_str),
            Some("warn")
        );
        assert_eq!(
            v.get("merged").and_then(crate::json::Value::as_f64),
            Some(3.0)
        );
        let missing = v
            .get("missing")
            .and_then(crate::json::Value::as_array)
            .unwrap();
        assert_eq!(missing.len(), 1);
        assert_eq!(
            v.get("duplicates").and_then(crate::json::Value::as_f64),
            Some(2.0)
        );
        assert!(
            v.get("inflation")
                .and_then(crate::json::Value::as_f64)
                .unwrap()
                > 1.3
        );
    }

    #[test]
    fn summary_mentions_gaps_and_severity() {
        let cov = ShardCoverage {
            merged: 3,
            missing: vec![2],
            duplicates: 1,
            observed_late: 150,
            inflation: 4.0 / 3.0,
            ..complete()
        };
        let line = cov.summary();
        assert!(line.contains("3/4"), "{line}");
        assert!(line.contains("missing=[2]"), "{line}");
        assert!(line.contains("duplicates=1"), "{line}");
        assert!(line.contains("inflation=1.3333"), "{line}");
        assert!(line.contains("[warn]"), "{line}");
        assert!(complete().summary().contains("[ok]"));
    }

    #[test]
    fn zero_shard_plan_has_zero_coverage() {
        let cov = ShardCoverage {
            shard_count: 0,
            merged: 0,
            min_shards: 0,
            planned_late: 0,
            observed_late: 0,
            ..complete()
        };
        assert_eq!(cov.coverage_fraction(), 0.0);
    }
}
