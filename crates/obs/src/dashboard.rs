//! Self-contained HTML dashboard exporter.
//!
//! [`render`] turns one run's observability artifacts — profile, metrics
//! snapshot, [`HealthReport`], [`DriftTimeline`] and the committed bench
//! history — into a single static HTML document with inline CSS and SVG.
//! No JavaScript, no external assets, no network: the file opens
//! anywhere a browser does, which is the whole point of a dashboard you
//! can attach to a CI artifact or an email.
//!
//! Charts are rendered server-side: bench history JSON is parsed with
//! [`crate::json`] inside this crate and drawn as SVG polylines. The raw
//! health/drift/bench JSON is also embedded verbatim in inert
//! `<script type="application/json">` blocks so downstream tooling (and
//! the `trace_check` CI gate) can re-parse exactly what the page shows.
//!
//! Styling follows the repo's chart conventions: categorical series
//! colors in fixed slot order (blue, orange, aqua — the three slots that
//! validate pairwise in both modes), a fixed status palette that is
//! never reused for series, status always as icon + label (never color
//! alone), one axis per chart, 2px lines, and dark mode as its own
//! selected palette via `prefers-color-scheme`.

use crate::event::{EventRecord, Level};
use crate::export::{aggregate, fmt_ns, HardwareContext};
use crate::flight::DumpInfo;
use crate::health::{DriftTimeline, HealthReport, Severity};
use crate::json::{self, Value};
use crate::metrics::MetricsSnapshot;
use crate::run::RunContext;
use crate::shard::{FleetSummary, ShardCoverage};
use crate::span::SpanEvent;
use crate::tsdb::SeriesSnapshot;
use std::fmt::Write as _;

/// Everything one dashboard page is built from. All fields are borrowed:
/// rendering never mutates observability state.
#[derive(Debug, Clone, Copy)]
pub struct DashboardData<'a> {
    /// Page title (e.g. the binary name and scenario).
    pub title: &'a str,
    /// Hardware context of the run.
    pub hardware: &'a HardwareContext,
    /// Run identity, when one was installed.
    pub run: Option<&'a RunContext>,
    /// Recorded span events (profile section).
    pub events: &'a [SpanEvent],
    /// Recorded structured events (event-log section; the tail renders).
    pub event_log: &'a [EventRecord],
    /// Flight-recorder ring occupancy at render time.
    pub flight_occupancy: usize,
    /// The last flight-recorder dump this process wrote, if any.
    pub flight_dump: Option<&'a DumpInfo>,
    /// Metrics snapshot (counters + histograms).
    pub snapshot: &'a MetricsSnapshot,
    /// Statistical health report, when the run produced one.
    pub health: Option<&'a HealthReport>,
    /// Drift timeline, when the run monitored drift.
    pub drift: Option<&'a DriftTimeline>,
    /// Shard coverage, when the run was a packet merge.
    pub shard: Option<&'a ShardCoverage>,
    /// Fleet telemetry view, when the merged packets carried telemetry.
    pub fleet: Option<&'a FleetSummary>,
    /// Raw contents of `BENCH_history.json`, when available.
    pub bench_history_json: Option<&'a str>,
    /// Time-series snapshots from [`crate::tsdb`] (timeline section).
    pub timeseries: &'a [SeriesSnapshot],
    /// Rendered alert-engine JSON from [`crate::alert::render_json`],
    /// when rules are installed.
    pub alerts_json: Option<&'a str>,
    /// Auto-refresh cadence in seconds. Only the live server sets this;
    /// static exports stay static.
    pub refresh_s: Option<u32>,
}

/// How many event-log rows the dashboard tail shows (and embeds).
const EVENT_TAIL: usize = 50;

/// Escapes text for HTML element and attribute content.
fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

/// Makes a JSON document safe to inline inside `<script>`: `</` would
/// end the script element early, so it becomes `<\/`. This is valid
/// because `/` only ever appears inside JSON string literals, where the
/// escape is legal JSON.
fn embed_json(s: &str) -> String {
    s.replace("</", "<\\/")
}

/// A severity badge: fixed status color + icon + label (never color
/// alone, per the status-palette rule).
fn severity_badge(sev: Severity) -> String {
    let (class, icon) = match sev {
        Severity::Ok => ("status-good", "\u{2713}"),      // ✓
        Severity::Warn => ("status-warning", "\u{26a0}"), // ⚠
        Severity::Critical => ("status-critical", "\u{2716}"), // ✖
    };
    format!(
        "<span class=\"badge {class}\"><span class=\"icon\">{icon}</span> {}</span>",
        sev.label()
    )
}

fn fmt_sig(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a != 0.0 && !(1e-3..1e4).contains(&a) {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

// ---------------------------------------------------------------------------
// SVG line chart
// ---------------------------------------------------------------------------

struct ChartSeries {
    label: String,
    /// CSS variable name for the stroke, e.g. "--series-1".
    color_var: &'static str,
    points: Vec<(f64, f64)>,
}

const SERIES_VARS: [&str; 3] = ["--series-1", "--series-2", "--series-3"];

/// Renders a small single-axis line chart as inline SVG. `threshold`
/// lines (label, y) are drawn as dashed hairlines. Returns an empty
/// string when no series has at least one point.
fn svg_line_chart(series: &[ChartSeries], y_label: &str, thresholds: &[(&str, f64)]) -> String {
    let finite: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if finite.is_empty() {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (0.0f64, f64::NEG_INFINITY);
    for &(x, y) in &finite {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    for &(_, t) in thresholds {
        y_max = y_max.max(t);
    }
    if x_max <= x_min {
        x_max = x_min + 1.0;
    }
    if y_max <= y_min {
        y_max = y_min + 1.0;
    }
    y_max *= 1.08; // headroom so the top point is not clipped

    const W: f64 = 640.0;
    const H: f64 = 220.0;
    const ML: f64 = 58.0; // left margin for tick labels
    const MR: f64 = 12.0;
    const MT: f64 = 12.0;
    const MB: f64 = 28.0;
    let px = |x: f64| ML + (x - x_min) / (x_max - x_min) * (W - ML - MR);
    let py = |y: f64| H - MB - (y - y_min) / (y_max - y_min) * (H - MT - MB);

    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {H}\" role=\"img\" aria-label=\"{}\">",
        html_escape(y_label)
    );
    // Horizontal gridlines at 4 even steps, with tick labels.
    for i in 0..=4 {
        let y = y_min + (y_max - y_min) * i as f64 / 4.0;
        let yy = py(y);
        let _ = write!(
            svg,
            "<line class=\"grid\" x1=\"{ML}\" y1=\"{yy:.1}\" x2=\"{:.1}\" y2=\"{yy:.1}\"/>\
             <text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\">{}</text>",
            W - MR,
            ML - 6.0,
            yy + 3.5,
            html_escape(&fmt_sig(y))
        );
    }
    // Threshold hairlines.
    for &(label, t) in thresholds {
        if t <= y_max && t >= y_min {
            let yy = py(t);
            let _ = write!(
                svg,
                "<line class=\"threshold\" x1=\"{ML}\" y1=\"{yy:.1}\" x2=\"{:.1}\" y2=\"{yy:.1}\"/>\
                 <text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\">{}</text>",
                W - MR,
                W - MR - 2.0,
                yy - 4.0,
                html_escape(label)
            );
        }
    }
    // Baseline (the one axis).
    let _ = write!(
        svg,
        "<line class=\"axis\" x1=\"{ML}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\"/>",
        H - MB,
        W - MR,
        H - MB
    );
    for s in series {
        let pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            continue;
        }
        if pts.len() > 1 {
            let path: Vec<String> = pts
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
                .collect();
            let _ = write!(
                svg,
                "<polyline class=\"line\" style=\"stroke:var({})\" points=\"{}\"/>",
                s.color_var,
                path.join(" ")
            );
        }
        for &(x, y) in &pts {
            let _ = write!(
                svg,
                "<circle class=\"mark\" style=\"fill:var({})\" cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\">\
                 <title>{}: x={}, y={}</title></circle>",
                s.color_var,
                px(x),
                py(y),
                html_escape(&s.label),
                html_escape(&fmt_sig(x)),
                html_escape(&fmt_sig(y)),
            );
        }
    }
    svg.push_str("</svg>");
    // Legend only when two or more series share the plot.
    let mut out = String::new();
    if series.len() >= 2 {
        out.push_str("<div class=\"legend\">");
        for s in series {
            let _ = write!(
                out,
                "<span class=\"key\"><span class=\"swatch\" style=\"background:var({})\"></span>{}</span>",
                s.color_var,
                html_escape(&s.label)
            );
        }
        out.push_str("</div>");
    }
    svg + &out
}

/// Renders one series as a compact axis-free sparkline. Returns an
/// empty string when fewer than two finite points exist (a lone sample
/// has no shape to draw; the table cell shows its value instead).
fn svg_sparkline(points: &[(u64, f64)], label: &str) -> String {
    const W: f64 = 220.0;
    const H: f64 = 34.0;
    const M: f64 = 3.0;
    let finite: Vec<(f64, f64)> = points
        .iter()
        .map(|&(t, v)| (t as f64, v))
        .filter(|(_, v)| v.is_finite())
        .collect();
    if finite.len() < 2 {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &finite {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max <= x_min {
        x_max = x_min + 1.0;
    }
    if y_max <= y_min {
        y_max = y_min + 1.0;
    }
    let px = |x: f64| M + (x - x_min) / (x_max - x_min) * (W - 2.0 * M);
    let py = |y: f64| H - M - (y - y_min) / (y_max - y_min) * (H - 2.0 * M);
    let path: Vec<String> = finite
        .iter()
        .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
        .collect();
    let (lx, ly) = *finite.last().expect("len >= 2");
    format!(
        "<svg class=\"spark\" viewBox=\"0 0 {W} {H}\" role=\"img\" aria-label=\"{}\">\
         <polyline class=\"line\" style=\"stroke:var(--series-1)\" points=\"{}\"/>\
         <circle class=\"mark\" style=\"fill:var(--series-1)\" cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\"/>\
         </svg>",
        html_escape(label),
        path.join(" "),
        px(lx),
        py(ly),
    )
}

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

/// How many series the timeline section draws (the embedded JSON blob
/// always carries all of them).
const TIMELINE_MAX_ROWS: usize = 24;

fn timeline_section(data: &DashboardData) -> String {
    let mut out = String::from("<section id=\"timeline\"><h2>Timeline</h2>");
    if data.timeseries.is_empty() {
        out.push_str(
            "<p class=\"muted\">No time-series samples \
             (run with <code>--obs-listen</code> or <code>--sample-interval-ms</code>).</p>",
        );
    } else {
        let shown = data.timeseries.len().min(TIMELINE_MAX_ROWS);
        if data.timeseries.len() > shown {
            let _ = write!(
                out,
                "<p class=\"muted\">First {shown} of {} series; \
                 the full set is in the embedded JSON.</p>",
                data.timeseries.len()
            );
        }
        out.push_str(
            "<table><thead><tr><th>series</th><th class=\"num\">samples</th>\
             <th class=\"num\">last</th><th>trend</th></tr></thead><tbody>",
        );
        for s in &data.timeseries[..shown] {
            let last = s.points.last().map_or(f64::NAN, |&(_, v)| v);
            let _ = write!(
                out,
                "<tr><td>{}</td><td class=\"num\">{}{}</td><td class=\"num\">{}</td>\
                 <td>{}</td></tr>",
                html_escape(&s.name),
                s.points.len(),
                if s.downsample > 1 {
                    format!(" (\u{00f7}{})", s.downsample)
                } else {
                    String::new()
                },
                fmt_sig(last),
                svg_sparkline(&s.points, &s.name),
            );
        }
        out.push_str("</tbody></table>");
    }
    out.push_str("<h3>Alerts</h3>");
    let parsed = data.alerts_json.and_then(|s| json::parse(s).ok());
    let rules: Vec<Value> = parsed
        .as_ref()
        .and_then(|v| v.get("rules"))
        .and_then(Value::as_array)
        .map(<[Value]>::to_vec)
        .unwrap_or_default();
    if rules.is_empty() {
        out.push_str(
            "<p class=\"muted\">No alert rules installed \
             (run with <code>--alerts rules.json</code>).</p>",
        );
    } else {
        out.push_str(
            "<table><thead><tr><th>rule</th><th>kind</th><th>series</th>\
             <th>severity</th><th>state</th><th class=\"num\">value</th>\
             <th class=\"num\">fired</th><th class=\"num\">resolved</th></tr></thead><tbody>",
        );
        for r in &rules {
            let get = |k: &str| r.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
            let state = get("state");
            let state_badge = match state.as_str() {
                "firing" => "<span class=\"badge status-critical\">\
                     <span class=\"icon\">\u{2716}</span> firing</span>"
                    .to_string(),
                "pending" => "<span class=\"badge status-warning\">\
                     <span class=\"icon\">\u{26a0}</span> pending</span>"
                    .to_string(),
                _ => format!(
                    "<span class=\"badge status-good\">\
                     <span class=\"icon\">\u{2713}</span> {}</span>",
                    html_escape(&state)
                ),
            };
            let _ = write!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
                html_escape(&get("name")),
                html_escape(&get("kind")),
                html_escape(&get("series")),
                html_escape(&get("severity")),
                state_badge,
                r.get("last_value")
                    .and_then(Value::as_f64)
                    .map_or_else(|| "\u{2014}".to_string(), fmt_sig),
                r.get("fired_count").and_then(Value::as_f64).unwrap_or(0.0),
                r.get("resolved_count")
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0),
            );
        }
        out.push_str("</tbody></table>");
    }
    out.push_str("</section>");
    out
}

fn profile_section(data: &DashboardData) -> String {
    let rows = aggregate(data.events);
    let mut out = String::from("<section id=\"profile\"><h2>Profile</h2>");
    if rows.is_empty() {
        out.push_str("<p class=\"muted\">No spans recorded.</p>");
    } else {
        out.push_str(
            "<table><thead><tr><th>span</th><th class=\"num\">calls</th>\
             <th class=\"num\">total</th><th class=\"num\">self</th>\
             <th class=\"num\">min</th><th class=\"num\">max</th></tr></thead><tbody>",
        );
        for r in &rows {
            let _ = write!(
                out,
                "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
                html_escape(r.name),
                r.count,
                fmt_ns(r.total_ns),
                fmt_ns(r.self_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
            );
        }
        out.push_str("</tbody></table>");
    }
    out.push_str("</section>");
    out
}

fn metrics_section(data: &DashboardData) -> String {
    let mut out = String::from("<section id=\"metrics\"><h2>Metrics</h2>");
    let nonzero: Vec<_> = data
        .snapshot
        .counters
        .iter()
        .filter(|(_, v)| *v > 0)
        .collect();
    if nonzero.is_empty() {
        out.push_str("<p class=\"muted\">No counters recorded.</p>");
    } else {
        out.push_str(
            "<table><thead><tr><th>counter</th><th class=\"num\">value</th></tr></thead><tbody>",
        );
        for (name, v) in &nonzero {
            let _ = write!(
                out,
                "<tr><td>{}</td><td class=\"num\">{v}</td></tr>",
                html_escape(name)
            );
        }
        out.push_str("</tbody></table>");
    }
    let recorded: Vec<_> = data
        .snapshot
        .histograms
        .iter()
        .filter(|h| h.count > 0)
        .collect();
    if !recorded.is_empty() {
        out.push_str(
            "<table><thead><tr><th>histogram</th><th class=\"num\">count</th>\
             <th class=\"num\">p50</th><th class=\"num\">p90</th><th class=\"num\">p99</th>\
             </tr></thead><tbody>",
        );
        let fmt_pct = |p: Option<u64>| p.map_or_else(|| "\u{2014}".to_string(), fmt_ns);
        for h in &recorded {
            let _ = write!(
                out,
                "<tr><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
                html_escape(h.name),
                h.count,
                fmt_pct(h.p50_ns()),
                fmt_pct(h.p90_ns()),
                fmt_pct(h.p99_ns()),
            );
        }
        out.push_str("</tbody></table>");
    }
    out.push_str("</section>");
    out
}

fn health_section(data: &DashboardData) -> String {
    let mut out = String::from("<section id=\"health\"><h2>Estimator health</h2>");
    match data.health {
        None => out.push_str("<p class=\"muted\">No health report for this run.</p>"),
        Some(h) => {
            let _ = write!(
                out,
                "<p>Overall: {}</p><table><thead><tr><th>check</th><th>value</th>\
                 <th>status</th></tr></thead><tbody>",
                severity_badge(h.overall())
            );
            let _ = write!(
                out,
                "<tr><td>prior–data conflict</td><td class=\"num\">D\u{b2}={}, p={}</td><td>{}</td></tr>",
                fmt_sig(h.conflict.mahalanobis_sq),
                fmt_sig(h.conflict.p_value),
                severity_badge(h.conflict.severity)
            );
            let _ = write!(
                out,
                "<tr><td>effective sample size</td><td class=\"num\">n={}, \u{3ba}\u{2099}={}, shrinkage={}</td><td>{}</td></tr>",
                h.ess.n,
                fmt_sig(h.ess.kappa_n),
                fmt_sig(h.ess.shrinkage),
                severity_badge(h.ess.severity)
            );
            let _ = write!(
                out,
                "<tr><td>covariance spectrum</td><td class=\"num\">cond={}, \u{3bb}_min={}</td><td>{}</td></tr>",
                fmt_sig(h.spectrum.condition),
                fmt_sig(h.spectrum.eigenvalues.first().copied().unwrap_or(f64::NAN)),
                severity_badge(h.spectrum.severity)
            );
            match &h.cv {
                Some(cv) => {
                    let _ = write!(
                        out,
                        "<tr><td>CV surface</td><td class=\"num\">\u{3ba}\u{2080}={}, \u{3bd}\u{2080}={}, spread={}{}</td><td>{}</td></tr>",
                        fmt_sig(cv.kappa0),
                        fmt_sig(cv.nu0),
                        fmt_sig(cv.spread),
                        if cv.boundary_hit { ", boundary hit" } else { "" },
                        severity_badge(cv.severity)
                    );
                }
                None => {
                    out.push_str(
                        "<tr><td>CV surface</td><td class=\"muted\">skipped</td><td></td></tr>",
                    );
                }
            }
            let _ = write!(
                out,
                "<tr><td>data quality</td><td class=\"num\">{}/{} rows kept, {} constant cols</td><td>{}</td></tr>",
                h.data_quality.rows_out,
                h.data_quality.rows_in,
                h.data_quality.constant_columns,
                severity_badge(h.data_quality.severity)
            );
            out.push_str("</tbody></table>");
        }
    }
    out.push_str("</section>");
    out
}

fn shard_section(data: &DashboardData) -> String {
    let mut out = String::from("<section id=\"shard\"><h2>Shard coverage</h2>");
    match data.shard {
        None => out.push_str("<p class=\"muted\">Not a sharded merge.</p>"),
        Some(s) => {
            let _ = write!(
                out,
                "<p>Overall: {} \u{00b7} {}/{} shards merged, quorum {}</p>",
                severity_badge(s.severity()),
                s.merged,
                s.shard_count,
                s.min_shards
            );
            out.push_str("<table><thead><tr><th>field</th><th>value</th></tr></thead><tbody>");
            let row = |out: &mut String, k: &str, v: String| {
                let _ = write!(out, "<tr><td>{k}</td><td class=\"num\">{v}</td></tr>");
            };
            row(
                &mut out,
                "late samples",
                format!("{} of {} planned", s.observed_late, s.planned_late),
            );
            row(
                &mut out,
                "missing shards",
                if s.missing.is_empty() {
                    "none".to_string()
                } else {
                    format!("{:?}", s.missing)
                },
            );
            row(
                &mut out,
                "corrupt shards",
                if s.corrupt.is_empty() {
                    "none".to_string()
                } else {
                    format!("{:?}", s.corrupt)
                },
            );
            row(&mut out, "duplicate packets", s.duplicates.to_string());
            row(&mut out, "uncertainty inflation", fmt_sig(s.inflation));
            out.push_str("</tbody></table>");
        }
    }
    out.push_str("</section>");
    out
}

fn fleet_section(data: &DashboardData) -> String {
    let mut out = String::from("<section id=\"fleet\"><h2>Fleet telemetry</h2>");
    match data.fleet {
        None => out.push_str(
            "<p class=\"muted\">No per-shard telemetry \
             (shards recorded with observability off, or single-process run).</p>",
        ),
        Some(f) => {
            let _ = write!(
                out,
                "<p>{} shard(s) reporting \u{00b7} median wall {} \u{00b7} slowest {} ({}\u{00d7})</p>",
                f.shards.len(),
                fmt_ns(f.median_wall_ns),
                fmt_ns(f.slowest_wall_ns),
                fmt_sig(f.straggler_ratio),
            );
            out.push_str(
                "<table><thead><tr><th class=\"num\">shard</th><th class=\"num\">wall</th>\
                 <th class=\"num\">sims</th><th class=\"num\">retries</th>\
                 <th class=\"num\">events</th><th>status</th></tr></thead><tbody>",
            );
            for row in &f.shards {
                let _ = write!(
                    out,
                    "<tr><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                     <td class=\"num\">{}</td><td class=\"num\">{}</td>\
                     <td class=\"num\">{}</td><td>{}</td></tr>",
                    row.index,
                    fmt_ns(row.wall_ns),
                    row.sims,
                    row.retries,
                    row.events,
                    if row.straggler {
                        "<span class=\"badge status-warning\">\
                         <span class=\"icon\">\u{26a0}</span> straggler</span>"
                            .to_string()
                    } else {
                        "<span class=\"badge status-good\">\
                         <span class=\"icon\">\u{2713}</span> ok</span>"
                            .to_string()
                    },
                );
            }
            out.push_str("</tbody></table>");
        }
    }
    out.push_str("</section>");
    out
}

fn drift_section(data: &DashboardData) -> String {
    let mut out = String::from("<section id=\"drift\"><h2>Drift timeline</h2>");
    match data.drift {
        None => out.push_str("<p class=\"muted\">No drift monitoring for this run.</p>"),
        Some(t) if t.windows.is_empty() => {
            out.push_str("<p class=\"muted\">No closed drift windows.</p>")
        }
        Some(t) => {
            let _ = write!(out, "<p>Overall: {}</p>", severity_badge(t.overall()));
            let series = [ChartSeries {
                label: "KL(window \u{2016} early)".to_string(),
                color_var: SERIES_VARS[0],
                points: t.windows.iter().map(|w| (w.index as f64, w.kl)).collect(),
            }];
            out.push_str(&svg_line_chart(
                &series,
                "KL divergence (nats) per drift window",
                &[
                    ("warn", crate::health::DRIFT_KL_WARN),
                    ("critical", crate::health::DRIFT_KL_CRITICAL),
                ],
            ));
            if !t.alerts.is_empty() {
                out.push_str("<h3>Alerts</h3><ul>");
                for a in &t.alerts {
                    let _ = write!(out, "<li>{}</li>", html_escape(a));
                }
                out.push_str("</ul>");
            }
        }
    }
    out.push_str("</section>");
    out
}

fn bench_section(data: &DashboardData) -> String {
    let mut out = String::from("<section id=\"bench\"><h2>Bench history</h2>");
    let parsed = data.bench_history_json.and_then(|s| json::parse(s).ok());
    let entries: Vec<Value> = parsed
        .as_ref()
        .and_then(|v| v.get("entries"))
        .and_then(Value::as_array)
        .map(<[Value]>::to_vec)
        .unwrap_or_default();
    if entries.is_empty() {
        out.push_str("<p class=\"muted\">No bench history available.</p></section>");
        return out;
    }
    // Stage names in first-seen order, capped at the three validated
    // categorical slots; extras fold into the table below.
    let mut stage_names: Vec<String> = Vec::new();
    for e in &entries {
        if let Some(Value::Object(stages)) = e.get("stages") {
            for k in stages.keys() {
                if !stage_names.contains(k) {
                    stage_names.push(k.clone());
                }
            }
        }
    }
    let plotted = stage_names.len().min(SERIES_VARS.len());
    let series: Vec<ChartSeries> = stage_names[..plotted]
        .iter()
        .enumerate()
        .map(|(i, name)| ChartSeries {
            label: name.clone(),
            color_var: SERIES_VARS[i],
            points: entries
                .iter()
                .enumerate()
                .filter_map(|(j, e)| {
                    e.get("stages")
                        .and_then(|s| s.get(name))
                        .and_then(Value::as_f64)
                        .map(|v| (j as f64, v))
                })
                .collect(),
        })
        .collect();
    out.push_str(&svg_line_chart(&series, "stage seconds per entry", &[]));
    if stage_names.len() > plotted {
        let _ = write!(
            out,
            "<p class=\"muted\">{} additional stage(s) not plotted; see table.</p>",
            stage_names.len() - plotted
        );
    }
    out.push_str(
        "<table><thead><tr><th>entry</th><th>when</th><th class=\"num\">cores</th>\
         <th class=\"num\">threads</th>",
    );
    for name in &stage_names {
        let _ = write!(out, "<th class=\"num\">{}</th>", html_escape(name));
    }
    out.push_str("</tr></thead><tbody>");
    for (j, e) in entries.iter().enumerate() {
        let when = e
            .get("timestamp_iso")
            .and_then(Value::as_str)
            .unwrap_or("?");
        let cores = e
            .get("hardware")
            .and_then(|h| h.get("detected_cores"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let threads = e
            .get("hardware")
            .and_then(|h| h.get("threads_used"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        // Oversubscribed runs (threads > cores) measure scheduler
        // contention, not scaling; flag them so their numbers are never
        // read as capability data. Older entries lack the explicit flag,
        // so fall back to comparing the two counts.
        let oversubscribed = e
            .get("hardware")
            .and_then(|h| h.get("oversubscribed"))
            .and_then(Value::as_bool)
            .unwrap_or(cores > 0.0 && threads > cores);
        let _ = write!(
            out,
            "<tr><td class=\"num\">{j}</td><td>{}</td><td class=\"num\">{cores}</td>\
             <td class=\"num\">{threads}{}</td>",
            html_escape(when),
            if oversubscribed {
                " <span class=\"status-warning\" title=\"threads &gt; detected cores: \
                 not scaling data\">oversub</span>"
            } else {
                ""
            }
        );
        for name in &stage_names {
            let cell = e
                .get("stages")
                .and_then(|s| s.get(name))
                .and_then(Value::as_f64)
                .map_or_else(|| "\u{2014}".to_string(), fmt_sig);
            let _ = write!(out, "<td class=\"num\">{cell}</td>");
        }
        out.push_str("</tr>");
    }
    out.push_str("</tbody></table></section>");
    out
}

/// An event-level badge reusing the fixed status palette (label always
/// present, never color alone). Info and debug rows are unemphasised.
fn level_badge(level: Level) -> String {
    let (class, icon) = match level {
        Level::Error => ("status-critical", "\u{2716}"), // ✖
        Level::Warn => ("status-warning", "\u{26a0}"),   // ⚠
        Level::Info => ("muted", "\u{00b7}"),            // ·
        Level::Debug => ("muted", "\u{00b7}"),
    };
    format!(
        "<span class=\"badge {class}\"><span class=\"icon\">{icon}</span> {}</span>",
        level.as_str()
    )
}

/// The last [`EVENT_TAIL`] records of the event log.
fn event_tail<'a>(data: &DashboardData<'a>) -> &'a [EventRecord] {
    let skip = data.event_log.len().saturating_sub(EVENT_TAIL);
    &data.event_log[skip..]
}

fn events_section(data: &DashboardData) -> String {
    let mut out = String::from("<section id=\"events\"><h2>Event log</h2>");
    let tail = event_tail(data);
    if tail.is_empty() {
        out.push_str(
            "<p class=\"muted\">No structured events recorded \
             (run with <code>--events-out</code>).</p>",
        );
    } else {
        if data.event_log.len() > tail.len() {
            let _ = write!(
                out,
                "<p class=\"muted\">Last {} of {} events.</p>",
                tail.len(),
                data.event_log.len()
            );
        }
        out.push_str(
            "<table><thead><tr><th class=\"num\">t</th><th>level</th>\
             <th>kind</th><th>fields</th></tr></thead><tbody>",
        );
        for rec in tail {
            let _ = write!(
                out,
                "<tr><td class=\"num\">{}</td><td>{}</td><td>{}</td>\
                 <td><code>{}</code></td></tr>",
                fmt_ns(rec.ts_ns),
                level_badge(rec.level),
                html_escape(rec.kind),
                html_escape(&rec.fields),
            );
        }
        out.push_str("</tbody></table>");
    }
    // Flight-recorder status.
    out.push_str("<h3>Flight recorder</h3>");
    let _ = write!(
        out,
        "<p>{} of {} events buffered.",
        data.flight_occupancy,
        crate::flight::FLIGHT_CAPACITY
    );
    match data.flight_dump {
        Some(dump) => {
            let _ = write!(
                out,
                " Last dump: <span class=\"badge status-critical\">\
                 <span class=\"icon\">\u{2716}</span> {}</span> \u{2192} \
                 <code>{}</code> ({} events).",
                html_escape(&dump.reason),
                html_escape(&dump.path.display().to_string()),
                dump.events
            );
        }
        None => out.push_str(" No dump written — nothing crashed."),
    }
    out.push_str("</p></section>");
    out
}

const STYLE: &str = "\
:root{color-scheme:light;\
--surface-1:#fcfcfb;--page:#f9f9f7;--text-primary:#0b0b0b;--text-secondary:#52514e;\
--muted:#898781;--grid:#e1e0d9;--baseline:#c3c2b7;\
--series-1:#2a78d6;--series-2:#eb6834;--series-3:#1baf7a;\
--status-good:#0ca30c;--status-warning:#fab219;--status-serious:#ec835a;--status-critical:#d03b3b}\
@media (prefers-color-scheme:dark){:root{color-scheme:dark;\
--surface-1:#1a1a19;--page:#0d0d0d;--text-primary:#ffffff;--text-secondary:#c3c2b7;\
--grid:#2c2c2a;--baseline:#383835;\
--series-1:#3987e5;--series-2:#d95926;--series-3:#199e70}}\
body{font-family:system-ui,-apple-system,\"Segoe UI\",sans-serif;\
background:var(--page);color:var(--text-primary);margin:0;padding:1.5rem;line-height:1.45}\
main{max-width:960px;margin:0 auto}\
section{background:var(--surface-1);border:1px solid var(--grid);border-radius:8px;\
padding:1rem 1.25rem;margin-bottom:1.25rem}\
h1{font-size:1.3rem}h2{font-size:1.05rem;margin-top:0}h3{font-size:0.95rem}\
nav{margin-bottom:1rem}nav a{color:var(--series-1);margin-right:1rem;text-decoration:none}\
p.muted,td.muted,.muted{color:var(--muted)}\
table{border-collapse:collapse;width:100%;font-size:0.88rem;margin-top:0.5rem}\
th,td{text-align:left;padding:0.3rem 0.6rem;border-bottom:1px solid var(--grid)}\
th{color:var(--text-secondary);font-weight:600}\
th.num,td.num{text-align:right;font-variant-numeric:tabular-nums}\
.badge{white-space:nowrap;font-weight:600}\
.badge .icon{font-weight:400}\
.status-good{color:var(--status-good)}.status-warning{color:var(--status-warning)}\
.status-serious{color:var(--status-serious)}.status-critical{color:var(--status-critical)}\
svg{display:block;width:100%;height:auto;margin-top:0.5rem}\
svg.spark{width:220px;height:34px;margin:0}\
svg .grid{stroke:var(--grid);stroke-width:1}\
svg .axis{stroke:var(--baseline);stroke-width:1}\
svg .threshold{stroke:var(--status-warning);stroke-width:1;stroke-dasharray:4 3}\
svg .line{fill:none;stroke-width:2}\
svg .tick{fill:var(--muted);font-size:10px;text-anchor:end}\
.legend{display:flex;gap:1rem;margin-top:0.35rem;font-size:0.85rem;color:var(--text-secondary)}\
.legend .swatch{display:inline-block;width:10px;height:10px;border-radius:2px;margin-right:0.35rem}\
header p{color:var(--text-secondary)}";

/// Renders the complete dashboard HTML document.
pub fn render(data: &DashboardData) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">");
    let _ = write!(out, "<title>{}</title>", html_escape(data.title));
    out.push_str("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">");
    if let Some(s) = data.refresh_s {
        let _ = write!(out, "<meta http-equiv=\"refresh\" content=\"{s}\">");
    }
    let _ = write!(out, "<style>{STYLE}</style>");
    out.push_str("</head><body><main><header>");
    let _ = write!(out, "<h1>{}</h1>", html_escape(data.title));
    let _ = write!(
        out,
        "<p>{} cores detected, {} threads used</p>",
        data.hardware.detected_cores, data.hardware.threads_used
    );
    if let Some(run) = data.run {
        let _ = write!(
            out,
            "<p>run <code>{}</code> \u{00b7} root seed {}</p>",
            html_escape(&run.run_id),
            run.root_seed
        );
    }
    out.push_str(
        "<nav><a href=\"#health\">Health</a><a href=\"#shard\">Shards</a>\
         <a href=\"#fleet\">Fleet</a><a href=\"#timeline\">Timeline</a>\
         <a href=\"#drift\">Drift</a>\
         <a href=\"#events\">Events</a><a href=\"#profile\">Profile</a>\
         <a href=\"#metrics\">Metrics</a><a href=\"#bench\">Bench</a></nav></header>",
    );
    out.push_str(&health_section(data));
    out.push_str(&shard_section(data));
    out.push_str(&fleet_section(data));
    out.push_str(&timeline_section(data));
    out.push_str(&drift_section(data));
    out.push_str(&events_section(data));
    out.push_str(&profile_section(data));
    out.push_str(&metrics_section(data));
    out.push_str(&bench_section(data));
    // Machine-readable copies of exactly what the page renders.
    let health_json = data
        .health
        .map_or_else(|| "null".to_string(), HealthReport::to_json);
    let drift_json = data
        .drift
        .map_or_else(|| "null".to_string(), DriftTimeline::to_json);
    let bench_json = data
        .bench_history_json
        .and_then(|s| json::parse(s).ok())
        .map_or_else(|| "null".to_string(), |v| v.to_json());
    let _ = write!(
        out,
        "<script type=\"application/json\" id=\"health-data\">{}</script>",
        embed_json(&health_json)
    );
    let _ = write!(
        out,
        "<script type=\"application/json\" id=\"drift-data\">{}</script>",
        embed_json(&drift_json)
    );
    let shard_json = data
        .shard
        .map_or_else(|| "null".to_string(), ShardCoverage::to_json);
    let _ = write!(
        out,
        "<script type=\"application/json\" id=\"shard-data\">{}</script>",
        embed_json(&shard_json)
    );
    let fleet_json = data
        .fleet
        .map_or_else(|| "null".to_string(), FleetSummary::to_json);
    let _ = write!(
        out,
        "<script type=\"application/json\" id=\"fleet-data\">{}</script>",
        embed_json(&fleet_json)
    );
    let _ = write!(
        out,
        "<script type=\"application/json\" id=\"bench-data\">{}</script>",
        embed_json(&bench_json)
    );
    // Timeline blob: every series (not just the drawn rows) plus the
    // alert engine state, so `trace_check` and offline tooling see the
    // same data the live `/timeseries` and `/alerts` endpoints serve.
    let mut timeline_json = String::from("{\"series\":[");
    for (i, s) in data.timeseries.iter().enumerate() {
        if i > 0 {
            timeline_json.push(',');
        }
        let _ = write!(
            timeline_json,
            "{{\"name\":{},\"downsample\":{},\"points\":[",
            json::string(&s.name),
            s.downsample
        );
        for (j, (t, v)) in s.points.iter().enumerate() {
            if j > 0 {
                timeline_json.push(',');
            }
            let _ = write!(timeline_json, "[{t},{}]", json::number(*v));
        }
        timeline_json.push_str("]}");
    }
    let _ = write!(
        timeline_json,
        "],\"alerts\":{}}}",
        data.alerts_json.unwrap_or("null")
    );
    let _ = write!(
        out,
        "<script type=\"application/json\" id=\"timeline-data\">{}</script>",
        embed_json(&timeline_json)
    );
    // The same event tail the table shows, as a machine-readable array.
    let run_id = data.run.map(|r| r.run_id.as_str());
    let events_json = format!(
        "[{}]",
        event_tail(data)
            .iter()
            .map(|rec| rec.to_json(run_id))
            .collect::<Vec<_>>()
            .join(",")
    );
    let _ = write!(
        out,
        "<script type=\"application/json\" id=\"events-data\">{}</script>",
        embed_json(&events_json)
    );
    out.push_str("</main></body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{
        classify_conflict, classify_cv_surface, classify_data_quality, classify_drift,
        classify_shrinkage, classify_spectrum, CovarianceSpectrum, CvSurface, DataQualityHealth,
        DriftWindow, EffectiveSampleSize, PriorDataConflict,
    };
    use crate::metrics::{HistogramStats, HISTOGRAM_BUCKETS};

    fn hw() -> HardwareContext {
        HardwareContext {
            detected_cores: 8,
            threads_used: 2,
        }
    }

    fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("monte_carlo.sims", 42), ("drift.windows", 3), ("idle", 0)],
            histograms: vec![HistogramStats {
                name: "cholesky.ns",
                count: 2,
                sum_ns: 300,
                min_ns: 100,
                max_ns: 200,
                buckets: {
                    let mut b = [0; HISTOGRAM_BUCKETS];
                    b[6] = 1;
                    b[7] = 1;
                    b
                },
            }],
            process: None,
        }
    }

    fn health() -> HealthReport {
        HealthReport {
            conflict: PriorDataConflict {
                mahalanobis_sq: 2.0,
                p_value: 0.7,
                severity: classify_conflict(0.7),
            },
            ess: EffectiveSampleSize {
                n: 32,
                kappa_n: 42.0,
                nu_excess: 30.0,
                shrinkage: 0.24,
                severity: classify_shrinkage(0.24),
            },
            spectrum: CovarianceSpectrum {
                eigenvalues: vec![0.5, 1.5],
                condition: 3.0,
                severity: classify_spectrum(0.5, 3.0),
            },
            cv: Some(CvSurface {
                kappa0: 10.0,
                nu0: 6.0,
                score: -1.0,
                spread: 2.0,
                boundary_hit: false,
                severity: classify_cv_surface(2.0, false),
            }),
            data_quality: DataQualityHealth {
                rows_in: 32,
                rows_out: 32,
                dropped_fraction: 0.0,
                constant_columns: 0,
                severity: classify_data_quality(true, 0.0, 0),
            },
        }
    }

    fn drift() -> DriftTimeline {
        DriftTimeline {
            windows: vec![
                DriftWindow {
                    index: 0,
                    start_sample: 0,
                    n: 32,
                    kl: 0.3,
                    mean_dist: 0.1,
                    cov_frob: 0.1,
                    severity: classify_drift(0.3),
                },
                DriftWindow {
                    index: 1,
                    start_sample: 32,
                    n: 32,
                    kl: 4.5,
                    mean_dist: 2.0,
                    cov_frob: 0.8,
                    severity: classify_drift(4.5),
                },
            ],
            alerts: vec!["window 1: KL 4.5 > warn threshold 2 </script> attack".to_string()],
        }
    }

    #[test]
    fn dashboard_contains_all_sections_and_embedded_json() {
        let health = health();
        let drift = drift();
        let bench = r#"{"entries":[{"timestamp_iso":"2026-08-05T00:00:00Z","hardware":{"detected_cores":8,"threads_used":2},"stages":{"cv":1.5,"mc":0.5}}]}"#;
        let snap = snapshot();
        let run = RunContext::derive(2015, "dashboard test");
        let event_log = vec![
            EventRecord {
                seq: 0,
                ts_ns: 1_000,
                tid: 1,
                level: Level::Warn,
                kind: "spd.repair",
                fields: "\"stage\":\"ridge\",\"note\":\"</script> hostile\"".to_string(),
            },
            EventRecord {
                seq: 1,
                ts_ns: 2_000,
                tid: 1,
                level: Level::Error,
                kind: "ladder.transition",
                fields: String::new(),
            },
        ];
        let dump = DumpInfo {
            reason: "strict_failure".to_string(),
            path: std::path::PathBuf::from("flight-abc.json"),
            events: 2,
        };
        let shard = ShardCoverage {
            shard_count: 4,
            merged: 3,
            missing: vec![2],
            corrupt: vec![],
            duplicates: 1,
            min_shards: 2,
            planned_late: 200,
            observed_late: 150,
            inflation: 200.0 / 150.0,
        };
        let fleet = FleetSummary::from_rows(
            "deadbeef",
            vec![
                crate::shard::FleetShardRow {
                    index: 0,
                    wall_ns: 1_000_000,
                    sims: 50,
                    retries: 0,
                    events: 3,
                    straggler: false,
                },
                crate::shard::FleetShardRow {
                    index: 1,
                    wall_ns: 9_000_000,
                    sims: 50,
                    retries: 2,
                    events: 7,
                    straggler: false,
                },
                crate::shard::FleetShardRow {
                    index: 2,
                    wall_ns: 1_100_000,
                    sims: 50,
                    retries: 0,
                    events: 3,
                    straggler: false,
                },
            ],
        );
        let timeseries = vec![
            SeriesSnapshot {
                name: "monte_carlo.sims".to_string(),
                downsample: 2,
                points: vec![(0, 10.0), (250, 20.0), (500, 35.0)],
            },
            SeriesSnapshot {
                name: "process.rss_bytes".to_string(),
                downsample: 1,
                points: vec![(500, 1.5e6)],
            },
        ];
        let alerts_json = r#"{"rules":[{"name":"retry-burst","kind":"threshold","series":"monte_carlo.retries","severity":"warn","state":"firing","op":">=","for_ms":0,"since_ms":250,"last_value":9,"fired_count":1,"resolved_count":0,"suppressed":0}],"firing":1,"critical_firing":false}"#;
        let page = render(&DashboardData {
            title: "fig4 <smoke>",
            hardware: &hw(),
            run: Some(&run),
            events: &[],
            event_log: &event_log,
            flight_occupancy: 2,
            flight_dump: Some(&dump),
            snapshot: &snap,
            health: Some(&health),
            drift: Some(&drift),
            shard: Some(&shard),
            fleet: Some(&fleet),
            bench_history_json: Some(bench),
            timeseries: &timeseries,
            alerts_json: Some(alerts_json),
            refresh_s: Some(2),
        });
        assert!(page.starts_with("<!DOCTYPE html>"));
        // Title is escaped.
        assert!(page.contains("fig4 &lt;smoke&gt;"));
        for id in [
            "id=\"profile\"",
            "id=\"metrics\"",
            "id=\"health\"",
            "id=\"shard\"",
            "id=\"fleet\"",
            "id=\"timeline\"",
            "id=\"drift\"",
            "id=\"events\"",
            "id=\"bench\"",
            "id=\"health-data\"",
            "id=\"drift-data\"",
            "id=\"shard-data\"",
            "id=\"fleet-data\"",
            "id=\"bench-data\"",
            "id=\"timeline-data\"",
            "id=\"events-data\"",
        ] {
            assert!(page.contains(id), "missing {id}");
        }
        // Every nav href has a matching section id.
        for target in [
            "#health",
            "#shard",
            "#fleet",
            "#timeline",
            "#drift",
            "#events",
            "#profile",
            "#metrics",
            "#bench",
        ] {
            assert!(page.contains(&format!("href=\"{target}\"")));
        }
        // The refresh request renders as a meta tag.
        assert!(page.contains("http-equiv=\"refresh\" content=\"2\""));
        // Run identity and flight status render.
        assert!(page.contains(&run.run_id));
        assert!(page.contains("Flight recorder"));
        assert!(page.contains("flight-abc.json"));
        assert!(page.contains("strict_failure"));
        // The hostile </script> in the alert never appears raw inside
        // the embedded JSON (it is either HTML-escaped in the list or
        // backslash-escaped in the blob).
        let blob_start = page.find("id=\"drift-data\"").unwrap();
        let blob = &page[blob_start..];
        let blob_end = blob.find("</script>").unwrap();
        assert!(!blob[..blob_end].contains("</s"));
        // Embedded health JSON re-parses to the same severity.
        let extract = |id: &str| -> String {
            let open = format!("id=\"{id}\">");
            let s = page.find(&open).unwrap() + open.len();
            let rest = &page[s..];
            rest[..rest.find("</script>").unwrap()].replace("<\\/", "</")
        };
        let health_v = json::parse(&extract("health-data")).expect("health blob parses");
        assert_eq!(health_v.get("overall").and_then(Value::as_str), Some("ok"));
        let drift_v = json::parse(&extract("drift-data")).expect("drift blob parses");
        assert_eq!(drift_v.get("overall").and_then(Value::as_str), Some("warn"));
        let bench_v = json::parse(&extract("bench-data")).expect("bench blob parses");
        assert_eq!(
            bench_v
                .get("entries")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(1)
        );
        // Embedded events blob re-parses (its hostile </script> payload
        // included) and carries the run id per record.
        let events_v = json::parse(&extract("events-data")).expect("events blob parses");
        let recs = events_v.as_array().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs[0].get("kind").and_then(Value::as_str),
            Some("spd.repair")
        );
        assert_eq!(
            recs[0].get("run_id").and_then(Value::as_str),
            Some(run.run_id.as_str())
        );
        assert_eq!(
            recs[0].get("note").and_then(Value::as_str),
            Some("</script> hostile")
        );
        // Event level badges render with icon + label.
        assert!(page.contains("\u{2716}</span> error"));
        // Status badges carry icon + label, never color alone.
        assert!(page.contains("status-warning"));
        assert!(page.contains("\u{26a0}"));
        // Charts rendered.
        assert!(page.contains("<svg"));
        assert!(page.contains("polyline"));
        // Fleet table flags the slow shard and the blob re-parses.
        assert!(page.contains("straggler"));
        let fleet_v = json::parse(&extract("fleet-data")).expect("fleet blob parses");
        assert_eq!(
            fleet_v.get("run_id").and_then(Value::as_str),
            Some("deadbeef")
        );
        assert_eq!(
            fleet_v
                .get("stragglers")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(1)
        );
        // Timeline section: sparkline drawn for the multi-point series,
        // alert row rendered with its firing badge.
        assert!(page.contains("class=\"spark\""));
        assert!(page.contains("retry-burst"));
        assert!(page.contains("firing"));
        // Timeline blob re-parses and carries every series plus the
        // alert engine state verbatim.
        let timeline_v = json::parse(&extract("timeline-data")).expect("timeline blob parses");
        let series = timeline_v.get("series").and_then(Value::as_array).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(
            series[0].get("name").and_then(Value::as_str),
            Some("monte_carlo.sims")
        );
        assert_eq!(
            series[0]
                .get("points")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            timeline_v
                .get("alerts")
                .and_then(|a| a.get("firing"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn dashboard_renders_without_optional_data() {
        let snap = MetricsSnapshot {
            counters: vec![],
            histograms: vec![],
            process: None,
        };
        let page = render(&DashboardData {
            title: "empty run",
            hardware: &hw(),
            run: None,
            events: &[],
            event_log: &[],
            flight_occupancy: 0,
            flight_dump: None,
            snapshot: &snap,
            health: None,
            drift: None,
            shard: None,
            fleet: None,
            bench_history_json: None,
            timeseries: &[],
            alerts_json: None,
            refresh_s: None,
        });
        for id in [
            "id=\"health\"",
            "id=\"shard\"",
            "id=\"fleet\"",
            "id=\"timeline\"",
            "id=\"drift\"",
            "id=\"events\"",
            "id=\"bench\"",
            "id=\"health-data\"",
            "id=\"fleet-data\"",
            "id=\"timeline-data\"",
            "id=\"events-data\"",
        ] {
            assert!(page.contains(id), "missing {id}");
        }
        assert!(page.contains("No health report"));
        assert!(page.contains("Not a sharded merge"));
        assert!(page.contains("No per-shard telemetry"));
        assert!(page.contains("No time-series samples"));
        assert!(page.contains("No alert rules installed"));
        assert!(page.contains("No structured events"));
        assert!(page.contains("No dump written"));
        assert!(!page.contains("http-equiv=\"refresh\""));
        assert!(page.contains(">null</script>"));
        // Empty event tail embeds an empty array.
        assert!(page.contains("id=\"events-data\">[]</script>"));
    }
}
