//! Declarative SLO alert engine evaluated on the sampler tick.
//!
//! Rules come from a JSON file (`--alerts <rules.json>`) and watch the
//! [`crate::tsdb`] series the background sampler maintains, plus the
//! live health/drift severities the estimator publishes. Three rule
//! kinds exist:
//!
//! * **`threshold`** — the newest value of a series compared against a
//!   bound, with optional *hysteresis*: a separate `clear` level the
//!   value must cross back over before the alert resolves, so a series
//!   hovering at the bound cannot flap.
//! * **`rate`** — the mean rate of change of a series (units/second)
//!   over a sliding `window_ms`, compared against a bound.
//! * **`health` / `drift`** — fires while the live health report or
//!   drift timeline severity is at least `at_least`.
//!
//! Every rule supports *for-duration debouncing* (`for_ms`): the breach
//! must hold that long before the alert fires. Firing emits a typed
//! `alert.fired` event (and, for critical rules, arms a flight-recorder
//! dump — the same guarantee a strict failure gets); resolving emits
//! `alert.resolved`. Repeated firings of the same rule are rate-limited
//! through [`RateLimiter`] so a flapping series cannot flood the event
//! log or the flight-recorder ring. Current state is published at
//! `GET /alerts`, and any firing critical rule flips `/health` to 503.
//!
//! Like everything in this crate, the engine only *observes*: no rule
//! outcome is ever read back into a numeric computation.

use crate::event::{emit, push_field, stream_on, Level, RateLimiter};
use crate::health::Severity;
use crate::json::{self, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Minimum interval between emitted `alert.fired` events (and critical
/// flight-recorder dumps) of one rule; refires inside the window are
/// counted in the rule's `suppressed` tally instead.
pub const REFIRE_INTERVAL_NS: u64 = 5_000_000_000;

/// Rules files and alert lists larger than this are rejected outright.
pub const MAX_RULES: usize = 64;

/// Comparison operator of a threshold/rate rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    Gt,
    Ge,
    Lt,
    Le,
}

impl Comparison {
    fn parse(s: &str) -> Option<Comparison> {
        match s {
            ">" => Some(Comparison::Gt),
            ">=" => Some(Comparison::Ge),
            "<" => Some(Comparison::Lt),
            "<=" => Some(Comparison::Le),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Comparison::Gt => ">",
            Comparison::Ge => ">=",
            Comparison::Lt => "<",
            Comparison::Le => "<=",
        }
    }

    fn holds(self, value: f64, bound: f64) -> bool {
        match self {
            Comparison::Gt => value > bound,
            Comparison::Ge => value >= bound,
            Comparison::Lt => value < bound,
            Comparison::Le => value <= bound,
        }
    }
}

/// What a rule watches and when it breaches.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleKind {
    /// Newest value of `series` vs `value`; resolves only once the
    /// value fails the same comparison against `clear` (hysteresis).
    Threshold {
        op: Comparison,
        value: f64,
        clear: f64,
    },
    /// Mean rate of change of `series` (units/second) over the trailing
    /// `window_ms`, compared against `value`.
    Rate {
        op: Comparison,
        value: f64,
        window_ms: u64,
    },
    /// Live health-report severity at least `at_least`.
    Health { at_least: Severity },
    /// Live drift-timeline severity at least `at_least`.
    Drift { at_least: Severity },
}

impl RuleKind {
    fn label(&self) -> &'static str {
        match self {
            RuleKind::Threshold { .. } => "threshold",
            RuleKind::Rate { .. } => "rate",
            RuleKind::Health { .. } => "health",
            RuleKind::Drift { .. } => "drift",
        }
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Unique rule name, stamped into every fired/resolved event.
    pub name: String,
    /// Watched series (empty for health/drift rules).
    pub series: String,
    /// Severity of the alert *when firing* (`warn` or `critical`;
    /// critical flips `/health` to 503 and arms a flight dump).
    pub severity: Severity,
    /// Debounce: the breach must hold this long before firing.
    pub for_ms: u64,
    pub kind: RuleKind,
}

/// Per-rule state machine: `Ok -> Pending (for_ms) -> Firing -> Ok`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Ok,
    /// Breached, waiting out `for_ms`; the payload is the tick the
    /// breach started.
    Pending(u64),
    /// Fired; the payload is the tick it fired.
    Firing(u64),
}

impl State {
    fn label(self) -> &'static str {
        match self {
            State::Ok => "ok",
            State::Pending(_) => "pending",
            State::Firing(_) => "firing",
        }
    }
}

struct RuleState {
    rule: Rule,
    state: State,
    last_value: Option<f64>,
    fired_count: u64,
    resolved_count: u64,
    /// Refires swallowed by the rate limiter.
    suppressed: u64,
    limiter: RateLimiter,
    /// Whether the most recent fire actually emitted its event (so the
    /// matching resolve is emitted iff the fire was).
    last_fire_emitted: bool,
}

static ENGINE: Mutex<Vec<RuleState>> = Mutex::new(Vec::new());

/// Cheap flag for `/health`: true while any critical rule is firing.
static CRITICAL_FIRING: AtomicBool = AtomicBool::new(false);

fn parse_severity(s: &str) -> Option<Severity> {
    match s {
        "ok" => Some(Severity::Ok),
        "warn" | "warning" => Some(Severity::Warn),
        "critical" => Some(Severity::Critical),
        _ => None,
    }
}

/// Parses an alert rules document:
///
/// ```json
/// {"rules": [
///   {"name": "retry-storm", "kind": "threshold",
///    "series": "monte_carlo.retries", "op": ">=", "value": 5,
///    "clear": 1, "severity": "critical", "for_ms": 0},
///   {"name": "throughput-sag", "kind": "rate",
///    "series": "monte_carlo.sims", "op": "<", "value": 100,
///    "window_ms": 2000, "severity": "warn", "for_ms": 500},
///   {"name": "estimator-degraded", "kind": "health",
///    "at_least": "warn", "severity": "warn"}
/// ]}
/// ```
///
/// Unknown keys are rejected so a typoed rule cannot silently watch
/// nothing.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, String> {
    let doc = json::parse(text).map_err(|e| format!("rules file: {e}"))?;
    let list = doc
        .get("rules")
        .and_then(Value::as_array)
        .ok_or("rules file: top level must be an object with a \"rules\" array")?;
    if list.len() > MAX_RULES {
        return Err(format!(
            "rules file: {} rules exceeds the limit of {MAX_RULES}",
            list.len()
        ));
    }
    let mut rules = Vec::with_capacity(list.len());
    for (i, item) in list.iter().enumerate() {
        rules.push(parse_rule(item).map_err(|e| format!("rules file: rule #{i}: {e}"))?);
    }
    for (i, r) in rules.iter().enumerate() {
        if rules[..i].iter().any(|o: &Rule| o.name == r.name) {
            return Err(format!("rules file: duplicate rule name {:?}", r.name));
        }
    }
    Ok(rules)
}

fn parse_rule(item: &Value) -> Result<Rule, String> {
    let Value::Object(map) = item else {
        return Err("must be an object".to_string());
    };
    const KNOWN: [&str; 10] = [
        "name",
        "kind",
        "series",
        "op",
        "value",
        "clear",
        "window_ms",
        "severity",
        "for_ms",
        "at_least",
    ];
    if let Some(unknown) = map.keys().find(|k| !KNOWN.contains(&k.as_str())) {
        return Err(format!("unknown key {unknown:?}"));
    }
    let str_key = |key: &str| item.get(key).and_then(Value::as_str);
    let num_key = |key: &str| item.get(key).and_then(Value::as_f64);

    let name = str_key("name")
        .filter(|s| !s.is_empty())
        .ok_or("needs a non-empty string \"name\"")?
        .to_string();
    let severity = match str_key("severity") {
        None => Severity::Warn,
        Some(s) => match parse_severity(s) {
            Some(Severity::Ok) | None => {
                return Err(format!("\"severity\" must be warn|critical, got {s:?}"))
            }
            Some(sev) => sev,
        },
    };
    let for_ms = match item.get("for_ms") {
        None => 0,
        Some(v) => match v.as_f64() {
            Some(ms) if ms >= 0.0 && ms.fract() == 0.0 => ms as u64,
            _ => return Err("\"for_ms\" must be a non-negative integer".to_string()),
        },
    };
    let series_key = || -> Result<String, String> {
        let s = str_key("series").ok_or("needs a string \"series\"")?;
        if !crate::tsdb::valid_series_name(s) {
            return Err(format!("series name {s:?} is outside the metric charset"));
        }
        Ok(s.to_string())
    };
    let op_key = || -> Result<Comparison, String> {
        let raw = str_key("op").unwrap_or(">=");
        Comparison::parse(raw).ok_or(format!("\"op\" must be one of > >= < <=, got {raw:?}"))
    };
    let at_least_key = || -> Result<Severity, String> {
        let raw = str_key("at_least").unwrap_or("critical");
        match parse_severity(raw) {
            Some(Severity::Ok) | None => {
                Err(format!("\"at_least\" must be warn|critical, got {raw:?}"))
            }
            Some(sev) => Ok(sev),
        }
    };

    let kind = match str_key("kind").unwrap_or("threshold") {
        "threshold" => {
            let op = op_key()?;
            let value = num_key("value").ok_or("threshold rule needs a numeric \"value\"")?;
            let clear = num_key("clear").unwrap_or(value);
            RuleKind::Threshold { op, value, clear }
        }
        "rate" => {
            let op = op_key()?;
            let value = num_key("value").ok_or("rate rule needs a numeric \"value\"")?;
            let window_ms = match num_key("window_ms") {
                None => 1_000,
                Some(ms) if ms >= 1.0 && ms.fract() == 0.0 => ms as u64,
                Some(_) => return Err("\"window_ms\" must be a positive integer".to_string()),
            };
            RuleKind::Rate {
                op,
                value,
                window_ms,
            }
        }
        "health" => RuleKind::Health {
            at_least: at_least_key()?,
        },
        "drift" => RuleKind::Drift {
            at_least: at_least_key()?,
        },
        other => {
            return Err(format!(
                "\"kind\" must be threshold|rate|health|drift, got {other:?}"
            ))
        }
    };
    let series = match kind {
        RuleKind::Threshold { .. } | RuleKind::Rate { .. } => series_key()?,
        RuleKind::Health { .. } | RuleKind::Drift { .. } => String::new(),
    };
    Ok(Rule {
        name,
        series,
        severity,
        for_ms,
        kind,
    })
}

/// Installs `rules`, replacing any previous set and resetting all state.
pub fn install(rules: Vec<Rule>) {
    let mut engine = ENGINE.lock().unwrap_or_else(|e| e.into_inner());
    *engine = rules
        .into_iter()
        .map(|rule| RuleState {
            rule,
            state: State::Ok,
            last_value: None,
            fired_count: 0,
            resolved_count: 0,
            suppressed: 0,
            limiter: RateLimiter::new(REFIRE_INTERVAL_NS),
            last_fire_emitted: false,
        })
        .collect();
    CRITICAL_FIRING.store(false, Ordering::Relaxed);
}

/// Whether any rules are installed.
pub fn installed() -> bool {
    !ENGINE.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
}

/// Removes every rule and resets the critical flag.
pub fn clear() {
    install(Vec::new());
}

/// True while any critical-severity rule is firing: the `/health`
/// endpoint folds this into its 200/503 decision with one relaxed load.
pub fn any_critical_firing() -> bool {
    CRITICAL_FIRING.load(Ordering::Relaxed)
}

/// Evaluates every rule against the tick that just landed in the tsdb
/// (called by [`crate::tsdb::tick`]). A rule whose input is unavailable
/// this tick (empty series, no live health yet) keeps its state.
pub fn evaluate(now_ms: u64) {
    if !crate::is_enabled() {
        return;
    }
    let (health_sev, drift_sev) = crate::serve::live_severities();
    let mut engine = ENGINE.lock().unwrap_or_else(|e| e.into_inner());
    let mut any_critical = false;
    for rs in engine.iter_mut() {
        step(rs, now_ms, health_sev, drift_sev);
        if rs.rule.severity == Severity::Critical && matches!(rs.state, State::Firing(_)) {
            any_critical = true;
        }
    }
    CRITICAL_FIRING.store(any_critical, Ordering::Relaxed);
}

/// Advances one rule's state machine by one tick.
fn step(rs: &mut RuleState, now_ms: u64, health: Option<Severity>, drift: Option<Severity>) {
    // (observed value, breach now?, clear condition met?)
    let observed: Option<(f64, bool, bool)> = match &rs.rule.kind {
        RuleKind::Threshold { op, value, clear } => crate::tsdb::latest(&rs.rule.series)
            .map(|(_, v)| (v, op.holds(v, *value), !op.holds(v, *clear))),
        RuleKind::Rate {
            op,
            value,
            window_ms,
        } => crate::tsdb::rate_per_sec(&rs.rule.series, now_ms.saturating_sub(*window_ms))
            .map(|r| (r, op.holds(r, *value), !op.holds(r, *value))),
        RuleKind::Health { at_least } => health.map(|sev| {
            let rank = sev as i32 as f64;
            (rank, sev >= *at_least, sev < *at_least)
        }),
        RuleKind::Drift { at_least } => drift.map(|sev| {
            let rank = sev as i32 as f64;
            (rank, sev >= *at_least, sev < *at_least)
        }),
    };
    let Some((value, breached, cleared)) = observed else {
        return; // no data this tick: no decision
    };
    rs.last_value = Some(value);
    match rs.state {
        State::Ok if breached => {
            if rs.rule.for_ms == 0 {
                fire(rs, now_ms, value);
            } else {
                rs.state = State::Pending(now_ms);
            }
        }
        State::Pending(since) if breached && now_ms.saturating_sub(since) >= rs.rule.for_ms => {
            fire(rs, now_ms, value);
        }
        State::Pending(_) if !breached => rs.state = State::Ok,
        State::Firing(_) if cleared => resolve(rs, now_ms, value),
        _ => {}
    }
}

fn fire(rs: &mut RuleState, now_ms: u64, value: f64) {
    rs.state = State::Firing(now_ms);
    rs.fired_count += 1;
    // Satellite invariant: a flapping rule cannot flood the event log or
    // the flight ring — refires inside the window are only counted.
    let emit_now = rs.limiter.allow(crate::span::now_ns());
    rs.last_fire_emitted = emit_now;
    if !emit_now {
        rs.suppressed += 1;
        return;
    }
    let level = if rs.rule.severity == Severity::Critical {
        Level::Error
    } else {
        Level::Warn
    };
    if stream_on(level) {
        let mut fields = String::new();
        push_field(&mut fields, "name", &rs.rule.name.as_str());
        // "rule_kind", not "kind": the record itself already renders a
        // top-level "kind":"alert.fired" key and JSONL consumers keep
        // the last duplicate.
        push_field(&mut fields, "rule_kind", &rs.rule.kind.label());
        push_field(&mut fields, "series", &rs.rule.series.as_str());
        push_field(&mut fields, "severity", &rs.rule.severity.label());
        push_field(&mut fields, "value", &value);
        push_field(&mut fields, "fired_count", &rs.fired_count);
        emit(level, "alert.fired", fields);
    }
    if rs.rule.severity == Severity::Critical {
        // Same guarantee as a strict failure: the moments before a
        // critical alert are worth keeping.
        crate::flight::dump(&format!("alert_critical:{}", rs.rule.name));
    }
}

fn resolve(rs: &mut RuleState, now_ms: u64, value: f64) {
    let since = match rs.state {
        State::Firing(t) => t,
        _ => now_ms,
    };
    rs.state = State::Ok;
    rs.resolved_count += 1;
    // Emit the resolve iff its fire was emitted, so the log always
    // holds matched fired/resolved pairs.
    if rs.last_fire_emitted && stream_on(Level::Info) {
        let mut fields = String::new();
        push_field(&mut fields, "name", &rs.rule.name.as_str());
        push_field(&mut fields, "series", &rs.rule.series.as_str());
        push_field(&mut fields, "severity", &rs.rule.severity.label());
        push_field(&mut fields, "value", &value);
        push_field(&mut fields, "firing_ms", &now_ms.saturating_sub(since));
        emit(Level::Info, "alert.resolved", fields);
    }
}

/// Renders the engine state as the `/alerts` JSON document.
pub fn render_json() -> String {
    let engine = ENGINE.lock().unwrap_or_else(|e| e.into_inner());
    let mut firing = 0usize;
    let mut out = String::from("{\"rules\":[");
    for (i, rs) in engine.iter().enumerate() {
        if matches!(rs.state, State::Firing(_)) {
            firing += 1;
        }
        if i > 0 {
            out.push(',');
        }
        let since_ms = match rs.state {
            State::Pending(t) | State::Firing(t) => Some(t),
            State::Ok => None,
        };
        out.push_str(&format!(
            "{{\"name\":{},\"kind\":{},\"series\":{},\"severity\":{},\"state\":{},\"op\":{},\"for_ms\":{},\"since_ms\":{},\"last_value\":{},\"fired_count\":{},\"resolved_count\":{},\"suppressed\":{}}}",
            json::string(&rs.rule.name),
            json::string(rs.rule.kind.label()),
            json::string(&rs.rule.series),
            json::string(rs.rule.severity.label()),
            json::string(rs.state.label()),
            json::string(match &rs.rule.kind {
                RuleKind::Threshold { op, .. } | RuleKind::Rate { op, .. } => op.label(),
                _ => "",
            }),
            rs.rule.for_ms,
            since_ms.map_or_else(|| "null".to_string(), |t| t.to_string()),
            rs.last_value
                .map_or_else(|| "null".to_string(), json::number),
            rs.fired_count,
            rs.resolved_count,
            rs.suppressed,
        ));
    }
    out.push_str(&format!(
        "],\"firing\":{firing},\"critical_firing\":{}}}",
        any_critical_firing()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_lock;

    fn threshold_rule(name: &str, value: f64, clear: f64, for_ms: u64, sev: Severity) -> Rule {
        Rule {
            name: name.to_string(),
            series: "t.series".to_string(),
            severity: sev,
            for_ms,
            kind: RuleKind::Threshold {
                op: Comparison::Ge,
                value,
                clear,
            },
        }
    }

    fn state_of(name: &str) -> String {
        let doc = json::parse(&render_json()).expect("alerts JSON parses");
        let rules = doc.get("rules").and_then(Value::as_array).unwrap();
        rules
            .iter()
            .find(|r| r.get("name").and_then(Value::as_str) == Some(name))
            .and_then(|r| r.get("state"))
            .and_then(Value::as_str)
            .unwrap_or("missing")
            .to_string()
    }

    #[test]
    fn rules_parse_with_defaults_and_reject_garbage() {
        let text = r#"{"rules":[
            {"name":"a","series":"m.x","value":5},
            {"name":"b","kind":"rate","series":"m.x","op":"<","value":1.5,"window_ms":2000,"severity":"critical","for_ms":250},
            {"name":"c","kind":"health","at_least":"warn"},
            {"name":"d","kind":"drift"}
        ]}"#;
        let rules = parse_rules(text).expect("valid rules");
        assert_eq!(rules.len(), 4);
        assert_eq!(
            rules[0].kind,
            RuleKind::Threshold {
                op: Comparison::Ge,
                value: 5.0,
                clear: 5.0
            }
        );
        assert_eq!(rules[0].severity, Severity::Warn);
        assert_eq!(rules[1].for_ms, 250);
        assert_eq!(
            rules[2].kind,
            RuleKind::Health {
                at_least: Severity::Warn
            }
        );
        assert_eq!(
            rules[3].kind,
            RuleKind::Drift {
                at_least: Severity::Critical
            }
        );

        for bad in [
            "not json",
            "[]",
            r#"{"rules":[{"series":"m.x","value":1}]}"#, // no name
            r#"{"rules":[{"name":"a","value":1}]}"#,     // threshold without series
            r#"{"rules":[{"name":"a","series":"bad name","value":1}]}"#,
            r#"{"rules":[{"name":"a","series":"m.x"}]}"#, // no value
            r#"{"rules":[{"name":"a","series":"m.x","value":1,"op":"=="}]}"#,
            r#"{"rules":[{"name":"a","series":"m.x","value":1,"severity":"fatal"}]}"#,
            r#"{"rules":[{"name":"a","series":"m.x","value":1,"frobnicate":2}]}"#,
            r#"{"rules":[{"name":"a","series":"m.x","value":1},{"name":"a","series":"m.y","value":2}]}"#,
            r#"{"rules":[{"name":"a","kind":"sloth","series":"m.x","value":1}]}"#,
        ] {
            assert!(parse_rules(bad).is_err(), "accepted bad rules {bad:?}");
        }
    }

    #[test]
    fn threshold_fires_and_resolves_with_hysteresis() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        install(vec![threshold_rule("hys", 5.0, 2.0, 0, Severity::Warn)]);

        crate::tsdb::record("t.series", 100, 1.0);
        evaluate(100);
        assert_eq!(state_of("hys"), "ok");

        crate::tsdb::record("t.series", 200, 6.0);
        evaluate(200);
        assert_eq!(state_of("hys"), "firing");

        // Back below the fire level but above the clear level: the
        // hysteresis band holds the alert.
        crate::tsdb::record("t.series", 300, 3.0);
        evaluate(300);
        assert_eq!(state_of("hys"), "firing");

        crate::tsdb::record("t.series", 400, 1.0);
        evaluate(400);
        assert_eq!(state_of("hys"), "ok");

        let records = crate::event::take_records();
        let kinds: Vec<&str> = records.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&"alert.fired"), "{kinds:?}");
        assert!(kinds.contains(&"alert.resolved"), "{kinds:?}");
        for r in &records {
            // The record renders its own top-level "kind" key; a field
            // named "kind" would shadow it in the JSONL line.
            assert!(
                !r.fields.contains("\"kind\""),
                "duplicate \"kind\" key in {} fields: {}",
                r.kind,
                r.fields
            );
        }
        crate::reset();
    }

    #[test]
    fn for_duration_debounce_requires_a_sustained_breach() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        install(vec![threshold_rule("slow", 5.0, 5.0, 300, Severity::Warn)]);

        crate::tsdb::record("t.series", 100, 9.0);
        evaluate(100);
        assert_eq!(state_of("slow"), "pending");

        // Breach ends before for_ms elapses: back to ok, nothing fired.
        crate::tsdb::record("t.series", 200, 1.0);
        evaluate(200);
        assert_eq!(state_of("slow"), "ok");

        // Sustained breach crosses the debounce window: fires.
        crate::tsdb::record("t.series", 300, 9.0);
        evaluate(300);
        crate::tsdb::record("t.series", 450, 9.0);
        evaluate(450);
        assert_eq!(state_of("slow"), "pending");
        crate::tsdb::record("t.series", 650, 9.0);
        evaluate(650);
        assert_eq!(state_of("slow"), "firing");

        let fired = crate::event::take_records()
            .iter()
            .filter(|r| r.kind == "alert.fired")
            .count();
        assert_eq!(fired, 1, "the aborted breach must not fire");
        crate::reset();
    }

    #[test]
    fn critical_firing_flips_the_flag_and_rate_limits_refires() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        // A critical fire dumps the flight ring; keep the artifact out
        // of the source tree.
        let dump_dir = std::env::temp_dir().join(format!(
            "bmf_alert_test_{}_{}",
            std::process::id(),
            crate::span::now_ns()
        ));
        std::fs::create_dir_all(&dump_dir).unwrap();
        crate::flight::set_dump_dir(&dump_dir);
        install(vec![threshold_rule(
            "crit",
            5.0,
            5.0,
            0,
            Severity::Critical,
        )]);
        assert!(!any_critical_firing());

        let mut ts = 100u64;
        crate::tsdb::record("t.series", ts, 9.0);
        evaluate(ts);
        assert!(any_critical_firing());

        // Flap it: fire/resolve repeatedly. State keeps tracking, but
        // only the first fire of the window emits an event.
        for _ in 0..5 {
            ts += 100;
            crate::tsdb::record("t.series", ts, 1.0);
            evaluate(ts);
            ts += 100;
            crate::tsdb::record("t.series", ts, 9.0);
            evaluate(ts);
        }
        assert!(any_critical_firing());
        let records = crate::event::take_records();
        let fired = records.iter().filter(|r| r.kind == "alert.fired").count();
        let resolved = records
            .iter()
            .filter(|r| r.kind == "alert.resolved")
            .count();
        assert_eq!(fired, 1, "refires inside the limiter window are suppressed");
        assert_eq!(resolved, 1, "resolves stay paired with emitted fires");

        let doc = json::parse(&render_json()).unwrap();
        let rule = doc.get("rules").and_then(Value::as_array).unwrap()[0].clone();
        assert_eq!(rule.get("fired_count").and_then(Value::as_f64), Some(6.0));
        assert_eq!(
            rule.get("resolved_count").and_then(Value::as_f64),
            Some(5.0)
        );
        assert_eq!(rule.get("suppressed").and_then(Value::as_f64), Some(5.0));

        // Resolving the last firing clears the critical flag.
        ts += 100;
        crate::tsdb::record("t.series", ts, 1.0);
        evaluate(ts);
        assert!(!any_critical_firing());
        crate::reset();
        assert!(!installed());
    }

    #[test]
    fn rate_rule_follows_the_window() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        install(vec![Rule {
            name: "burst".to_string(),
            series: "r.series".to_string(),
            severity: Severity::Warn,
            for_ms: 0,
            kind: RuleKind::Rate {
                op: Comparison::Gt,
                value: 50.0,
                window_ms: 1_000,
            },
        }]);

        // One point: no rate, no decision.
        crate::tsdb::record("r.series", 0, 0.0);
        evaluate(0);
        assert_eq!(state_of("burst"), "ok");

        // 100 units in 500ms = 200/s > 50: fires.
        crate::tsdb::record("r.series", 500, 100.0);
        evaluate(500);
        assert_eq!(state_of("burst"), "firing");

        // Window slides past the burst; flat series = 0/s: resolves.
        crate::tsdb::record("r.series", 1_800, 100.0);
        crate::tsdb::record("r.series", 2_300, 100.0);
        evaluate(2_300);
        assert_eq!(state_of("burst"), "ok");
        crate::reset();
    }

    #[test]
    fn render_json_is_valid_and_empty_without_rules() {
        let _g = test_lock();
        crate::reset();
        let doc = json::parse(&render_json()).expect("valid JSON");
        assert_eq!(
            doc.get("rules")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(0)
        );
        assert_eq!(doc.get("firing").and_then(Value::as_f64), Some(0.0));
        assert_eq!(
            doc.get("critical_firing").and_then(Value::as_bool),
            Some(false)
        );
    }
}
