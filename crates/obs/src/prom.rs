//! Prometheus text exposition (format version 0.0.4), hand-rolled like
//! [`crate::json`].
//!
//! [`render`] turns a [`MetricsSnapshot`] into the scrape body served at
//! `GET /metrics`: every registered counter becomes a `_total` counter,
//! every duration histogram becomes both a summary (interpolated
//! p50/p90/p99 from the existing [`crate::metrics::HistogramStats`]) and an explicit
//! `_log2` histogram family exposing the power-of-two buckets, and the
//! run identity plus hardware context ride along as labels on a
//! `bmf_run_info` gauge and a `run_id` label on every sample. Process
//! self-metrics ([`crate::metrics::ProcessStats`]) are appended when the
//! platform provides them.
//!
//! Empty histograms follow the crate's explicit-absence rule: their
//! quantile lines are *omitted* (never rendered as 0, which a scraper
//! would read as a real sub-nanosecond latency); `_sum`/`_count` still
//! render as honest zeros because zero observations is a real count.
//!
//! [`validate_exposition`] is the conformance checker behind
//! `trace_check --prom`: metric/label name charsets, `HELP`/`TYPE`
//! placement, sample-line syntax, and histogram bucket monotonicity.

use crate::export::HardwareContext;
use crate::metrics::MetricsSnapshot;
use crate::run::RunContext;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Prefix for every exported metric name.
const PREFIX: &str = "bmf_";

/// Mangles a dot-namespaced registry name (`"monte_carlo.sims"`) into a
/// Prometheus metric name (`"bmf_monte_carlo_sims"`).
fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(PREFIX.len() + name.len());
    out.push_str(PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders the `{...}` label block: the shared labels plus `extra`
/// key/value pairs. Empty when there is nothing to say.
fn labels(shared: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if shared.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = Vec::with_capacity(shared.len() + extra.len());
    for (k, v) in shared {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    for (k, v) in extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Renders the full scrape body from a metrics snapshot.
#[must_use]
pub fn render(
    snapshot: &MetricsSnapshot,
    hardware: &HardwareContext,
    run: Option<&RunContext>,
) -> String {
    let shared: Vec<(String, String)> = run
        .map(|r| vec![("run_id".to_string(), r.run_id.clone())])
        .unwrap_or_default();
    let mut out = String::with_capacity(4096);

    // Identity/info gauge: run + hardware context as labels, value 1.
    {
        let mut info: Vec<(String, String)> = shared.clone();
        if let Some(r) = run {
            info.push(("config_hash".to_string(), format!("{:016x}", r.config_hash)));
            info.push(("root_seed".to_string(), r.root_seed.to_string()));
        }
        info.push((
            "detected_cores".to_string(),
            hardware.detected_cores.to_string(),
        ));
        info.push((
            "threads_used".to_string(),
            hardware.threads_used.to_string(),
        ));
        out.push_str("# HELP bmf_run_info Run identity and hardware context carried as labels.\n");
        out.push_str("# TYPE bmf_run_info gauge\n");
        let _ = writeln!(out, "bmf_run_info{} 1", labels(&info, &[]));
    }

    for (name, value) in &snapshot.counters {
        let metric = format!("{}_total", mangle(name));
        let _ = writeln!(out, "# HELP {metric} Value of the `{name}` counter.");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric}{} {value}", labels(&shared, &[]));
    }

    for h in &snapshot.histograms {
        let base = mangle(h.name);
        // Summary family: interpolated quantiles, omitted when empty.
        let _ = writeln!(
            out,
            "# HELP {base} Nanosecond latency summary of `{}`.",
            h.name
        );
        let _ = writeln!(out, "# TYPE {base} summary");
        for (q, p) in [
            ("0.5", h.p50_ns()),
            ("0.9", h.p90_ns()),
            ("0.99", h.p99_ns()),
        ] {
            if let Some(v) = p {
                let _ = writeln!(out, "{base}{} {v}", labels(&shared, &[("quantile", q)]));
            }
        }
        let _ = writeln!(out, "{base}_sum{} {}", labels(&shared, &[]), h.sum_ns);
        let _ = writeln!(out, "{base}_count{} {}", labels(&shared, &[]), h.count);

        // Explicit histogram family: cumulative power-of-two buckets up
        // to the last occupied one, then +Inf.
        let fam = format!("{base}_log2");
        let _ = writeln!(
            out,
            "# HELP {fam} Power-of-two nanosecond buckets of `{}`.",
            h.name
        );
        let _ = writeln!(out, "# TYPE {fam} histogram");
        let last_occupied = h.buckets.iter().rposition(|&b| b > 0);
        let mut cumulative = 0u64;
        if let Some(last) = last_occupied {
            for (i, &b) in h.buckets.iter().enumerate().take(last + 1) {
                cumulative += b;
                let le = if i + 1 >= 64 {
                    "+Inf".to_string()
                } else {
                    (1u128 << (i + 1)).to_string()
                };
                let _ = writeln!(
                    out,
                    "{fam}_bucket{} {cumulative}",
                    labels(&shared, &[("le", &le)])
                );
            }
        }
        let _ = writeln!(
            out,
            "{fam}_bucket{} {}",
            labels(&shared, &[("le", "+Inf")]),
            h.count
        );
        let _ = writeln!(out, "{fam}_sum{} {}", labels(&shared, &[]), h.sum_ns);
        let _ = writeln!(out, "{fam}_count{} {}", labels(&shared, &[]), h.count);
    }

    if let Some(p) = &snapshot.process {
        let g = |out: &mut String, name: &str, kind: &str, help: &str, value: String| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name}{} {value}", labels(&shared, &[]));
        };
        g(
            &mut out,
            "bmf_process_resident_memory_bytes",
            "gauge",
            "Resident set size in bytes.",
            p.rss_bytes.to_string(),
        );
        g(
            &mut out,
            "bmf_process_cpu_user_seconds_total",
            "counter",
            "User-mode CPU time in seconds.",
            format!("{:.3}", p.user_cpu_ms as f64 / 1000.0),
        );
        g(
            &mut out,
            "bmf_process_cpu_system_seconds_total",
            "counter",
            "Kernel-mode CPU time in seconds.",
            format!("{:.3}", p.sys_cpu_ms as f64 / 1000.0),
        );
        g(
            &mut out,
            "bmf_process_uptime_seconds",
            "gauge",
            "Process uptime in seconds.",
            format!("{:.3}", p.uptime_ms as f64 / 1000.0),
        );
        g(
            &mut out,
            "bmf_process_open_fds",
            "gauge",
            "Open file descriptors.",
            p.open_fds.to_string(),
        );
    }

    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn valid_value(v: &str) -> bool {
    matches!(v, "+Inf" | "-Inf" | "NaN") || v.parse::<f64>().is_ok()
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses `name{k="v",...} value [timestamp]`; `Err` with a reason on
/// any syntax violation.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name, rest) = match line.find(['{', ' ', '\t']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return Err(format!("sample line without value: {line:?}")),
    };
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let close = body
            .find('}')
            .ok_or_else(|| format!("unclosed label block: {line:?}"))?;
        let block = &body[..close];
        let mut cursor = block;
        while !cursor.is_empty() {
            let eq = cursor
                .find('=')
                .ok_or_else(|| format!("label without '=': {block:?}"))?;
            let key = cursor[..eq].trim();
            if !valid_label_name(key) {
                return Err(format!("invalid label name {key:?}"));
            }
            let after = &cursor[eq + 1..];
            let after = after
                .strip_prefix('"')
                .ok_or_else(|| format!("unquoted label value for {key:?}"))?;
            // Find the closing quote, skipping escaped characters.
            let mut end = None;
            let mut escaped = false;
            for (i, c) in after.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end.ok_or_else(|| format!("unterminated label value for {key:?}"))?;
            labels.push((key.to_string(), after[..end].to_string()));
            cursor = after[end + 1..].trim_start_matches(',').trim_start();
        }
        &body[close + 1..]
    } else {
        rest
    };
    let mut parts = rest.split_whitespace();
    let value = parts
        .next()
        .ok_or_else(|| format!("missing value: {line:?}"))?;
    if !valid_value(value) {
        return Err(format!("invalid sample value {value:?}"));
    }
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("invalid timestamp {ts:?}"));
        }
    }
    if parts.next().is_some() {
        return Err(format!("trailing garbage on sample line: {line:?}"));
    }
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().unwrap(),
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Base family name of a sample: strips the `_bucket`/`_sum`/`_count`
/// suffix conventions so samples can be matched to their TYPE line.
fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count", "_total"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.contains_key(base) {
                return base;
            }
        }
    }
    name
}

/// Validates a Prometheus text-exposition document: name charsets,
/// `HELP`/`TYPE` lines, sample syntax, and histogram bucket
/// monotonicity. Returns the number of sample lines on success.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashMap<String, ()> = HashMap::new();
    let mut seen_sample_for: HashMap<String, ()> = HashMap::new();
    // (family, non-le labels) → cumulative bucket counts in line order.
    let mut buckets: Vec<(String, String, f64, f64)> = Vec::new(); // family, le, count, order
    let mut samples = 0usize;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _help) = rest.split_once(' ').unwrap_or((rest, ""));
            if !valid_metric_name(name) {
                return Err(at(format!("invalid metric name in HELP: {name:?}")));
            }
            if helps.insert(name.to_string(), ()).is_some() {
                return Err(at(format!("duplicate HELP for {name:?}")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(at(format!("invalid metric name in TYPE: {name:?}")));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "summary" | "histogram" | "untyped"
            ) {
                return Err(at(format!("unknown metric type {kind:?}")));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(at(format!("duplicate TYPE for {name:?}")));
            }
            if seen_sample_for.contains_key(name) {
                return Err(at(format!("TYPE for {name:?} after its samples")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        let sample = parse_sample(line).map_err(at)?;
        samples += 1;
        for (k, _) in &sample.labels {
            if k.starts_with("__") {
                return Err(format!("reserved label name {k:?}"));
            }
        }
        let family = family_of(&sample.name, &types).to_string();
        seen_sample_for.insert(family.clone(), ());
        if types.get(&family).map(String::as_str) == Some("counter")
            && !(sample.name.ends_with("_total") || sample.name == family)
        {
            return Err(format!(
                "counter sample {:?} must end in _total",
                sample.name
            ));
        }
        if types.get(&family).map(String::as_str) == Some("histogram")
            && sample.name.ends_with("_bucket")
        {
            let le = sample
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("histogram bucket without le label: {}", sample.name))?;
            buckets.push((family.clone(), le, sample.value, buckets.len() as f64));
        }
    }

    // Histogram conformance per family: counts non-decreasing in le
    // order, +Inf bucket present.
    let families: std::collections::HashSet<String> =
        buckets.iter().map(|(f, _, _, _)| f.clone()).collect();
    for fam in families {
        let fam_buckets: Vec<&(String, String, f64, f64)> =
            buckets.iter().filter(|(f, _, _, _)| f == &fam).collect();
        let mut bounds: Vec<(f64, f64)> = Vec::new();
        let mut has_inf = false;
        for (_, le, count, _) in &fam_buckets {
            let bound = if le == "+Inf" {
                has_inf = true;
                f64::INFINITY
            } else {
                le.parse::<f64>()
                    .map_err(|_| format!("{fam}: non-numeric le {le:?}"))?
            };
            if bound.is_nan() {
                return Err(format!("{fam}: NaN le bound"));
            }
            bounds.push((bound, *count));
        }
        if !has_inf {
            return Err(format!("{fam}: histogram missing +Inf bucket"));
        }
        bounds.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for pair in bounds.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(format!("{fam}: duplicate le bound {}", pair[0].0));
            }
            if pair[0].1 > pair[1].1 {
                return Err(format!(
                    "{fam}: bucket counts not monotone ({} > {} at le {})",
                    pair[0].1, pair[1].1, pair[1].0
                ));
            }
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramStats, ProcessStats, HISTOGRAM_BUCKETS};

    fn hw() -> HardwareContext {
        HardwareContext {
            detected_cores: 8,
            threads_used: 2,
        }
    }

    fn snapshot_with(count: u64) -> MetricsSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        if count > 0 {
            buckets[6] = count; // [64, 128)
        }
        MetricsSnapshot {
            counters: vec![("monte_carlo.sims", 42), ("cv.fold_evals", 7)],
            histograms: vec![HistogramStats {
                name: "cholesky.ns",
                count,
                sum_ns: count * 100,
                min_ns: if count > 0 { 70 } else { 0 },
                max_ns: if count > 0 { 120 } else { 0 },
                buckets,
            }],
            process: Some(ProcessStats {
                rss_bytes: 1 << 20,
                user_cpu_ms: 1500,
                sys_cpu_ms: 250,
                uptime_ms: 60_000,
                open_fds: 12,
            }),
        }
    }

    #[test]
    fn render_passes_its_own_validator_and_carries_labels() {
        let run = RunContext::derive(2015, "prom test");
        let body = render(&snapshot_with(5), &hw(), Some(&run));
        let n = validate_exposition(&body).expect("self-rendered exposition validates");
        assert!(
            n > 10,
            "expected a substantial scrape body, got {n} samples"
        );
        assert!(body.contains("bmf_monte_carlo_sims_total"));
        assert!(body.contains(&format!("run_id=\"{}\"", run.run_id)));
        assert!(body.contains("quantile=\"0.99\""));
        assert!(body.contains("bmf_cholesky_ns_log2_bucket"));
        assert!(body.contains("le=\"+Inf\""));
        assert!(body.contains("bmf_process_resident_memory_bytes"));
        assert!(body.contains("detected_cores=\"8\""));
    }

    #[test]
    fn empty_histogram_omits_quantiles_but_keeps_counts() {
        let body = render(&snapshot_with(0), &hw(), None);
        validate_exposition(&body).expect("validates");
        assert!(
            !body.contains("quantile="),
            "empty histogram must omit quantile samples:\n{body}"
        );
        assert!(body.contains("bmf_cholesky_ns_count 0"));
        assert!(body.contains("bmf_cholesky_ns_log2_bucket{le=\"+Inf\"} 0"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let bad_name = "# TYPE bmf.dots counter\n";
        assert!(validate_exposition(bad_name).is_err());

        let bad_value = "bmf_good_total{run_id=\"x\"} notanumber\n";
        assert!(validate_exposition(bad_value).is_err());

        let bad_label = "bmf_good_total{9bad=\"x\"} 1\n";
        assert!(validate_exposition(bad_label).is_err());

        let unclosed = "bmf_good_total{run_id=\"x} 1\n";
        assert!(validate_exposition(unclosed).is_err());

        let non_monotone = "# TYPE bmf_h histogram\n\
                            bmf_h_bucket{le=\"2\"} 5\n\
                            bmf_h_bucket{le=\"4\"} 3\n\
                            bmf_h_bucket{le=\"+Inf\"} 5\n";
        let err = validate_exposition(non_monotone).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");

        let no_inf = "# TYPE bmf_h histogram\n\
                      bmf_h_bucket{le=\"2\"} 5\n";
        assert!(validate_exposition(no_inf).unwrap_err().contains("+Inf"));

        let dup_type = "# TYPE bmf_x counter\n# TYPE bmf_x counter\n";
        assert!(validate_exposition(dup_type).is_err());
    }

    #[test]
    fn mangle_prefixes_and_cleans() {
        assert_eq!(mangle("monte_carlo.sims"), "bmf_monte_carlo_sims");
        assert_eq!(mangle("cv.fold-evals"), "bmf_cv_fold_evals");
        assert!(valid_metric_name(&mangle("weird name!")));
    }
}
