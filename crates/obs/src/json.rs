//! Minimal JSON support shared across the workspace.
//!
//! The vendored `serde` is a marker facade (no real serialization), so
//! every JSON artifact in this repo — `FusionReport`, the bench files,
//! the trace/profile/metrics exports — is hand-rolled. This module
//! centralises the two fragile parts: string [`escape`]-ing and float
//! formatting on the write side, and a small recursive-descent
//! [`parse`]r on the read side so tests and CI can assert that exported
//! traces are *valid* JSON rather than merely string-shaped.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (the
/// surrounding quotes are the caller's job). Handles quotes,
/// backslashes, the named control escapes and `\u00XX` for the rest of
/// the C0 range; non-ASCII passes through as UTF-8, which JSON allows.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats `s` as a complete JSON string literal, quotes included.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Formats an `f64` as a JSON value. JSON has no `Infinity`/`NaN`
/// literals, so non-finite values are encoded as strings (`"inf"`,
/// `"-inf"`, `"NaN"`) — matching the `FusionReport` convention.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{v}\"")
    }
}

/// A parsed JSON value. Object keys keep only the last duplicate, which
/// is fine for validation purposes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup; `None` unless this is an object with that key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Serializes this value back to compact JSON text. Object keys come
    /// out in `BTreeMap` (alphabetical) order, so a parse → serialize
    /// round trip is deterministic even if the source ordering was not.
    /// Non-finite numbers follow the [`number`] convention (encoded as
    /// strings), so `to_json` output always re-parses.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&number(*n)),
            Value::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Maximum container nesting the parser accepts. The recursive-descent
/// [`parse`]r uses one stack frame per open object/array, so an
/// adversarial input (a shard packet or alert-rules file of nothing but
/// `[[[[…`) could otherwise overflow the thread stack; 128 levels is far
/// beyond any document this workspace emits.
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after top-level value"));
    }
    Ok(value)
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    /// Runs a container parser one nesting level deeper, rejecting the
    /// document once [`MAX_DEPTH`] open containers are on the stack.
    fn nested(
        &mut self,
        f: fn(&mut Self) -> Result<Value, ParseError>,
    ) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error(&format!(
                "nesting depth exceeds the {MAX_DEPTH}-level limit"
            )));
        }
        self.depth += 1;
        let out = f(self);
        self.depth -= 1;
        out
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Run of plain UTF-8 bytes: copy without per-char handling.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape_sequence()?);
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape_sequence(&mut self) -> Result<char, ParseError> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let unit = self.hex4()?;
                if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: must be followed by \uDC00-\uDFFF.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                    } else {
                        return Err(self.error("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&unit) {
                    return Err(self.error("unpaired low surrogate"));
                } else {
                    char::from_u32(unit).ok_or_else(|| self.error("invalid \\u escape"))?
                }
            }
            _ => return Err(self.error("unknown escape sequence")),
        })
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("non-hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_backslashes_controls_and_non_ascii() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape(r"a\b"), r"a\\b");
        assert_eq!(escape("line\nfeed\ttab\rret"), r"line\nfeed\ttab\rret");
        assert_eq!(escape("\u{08}\u{0c}"), r"\b\f");
        assert_eq!(escape("\u{01}\u{1f}"), r"\u0001\u001f");
        // Non-ASCII passes through unescaped (valid JSON as UTF-8).
        assert_eq!(escape("μΣ→κ₀"), "μΣ→κ₀");
    }

    #[test]
    fn escaped_strings_round_trip_through_the_parser() {
        let cases = [
            "plain",
            r#"quote " backslash \ mix \" done"#,
            "ctrl\u{01}\u{08}\u{0c}\n\r\t\u{1f}",
            "μ=0.5, Σ→∞, emoji 🦀",
            "",
        ];
        for case in cases {
            let doc = format!("{{\"k\":{}}}", string(case));
            let parsed = parse(&doc).unwrap_or_else(|e| panic!("{case:?}: {e}"));
            assert_eq!(
                parsed.get("k").and_then(Value::as_str),
                Some(case),
                "{case:?}"
            );
        }
    }

    #[test]
    fn number_formats_finite_and_non_finite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-0.25), "-0.25");
        assert_eq!(number(f64::INFINITY), "\"inf\"");
        assert_eq!(number(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(number(f64::NAN), "\"NaN\"");
        // Finite outputs must themselves be parseable JSON numbers.
        assert_eq!(parse(&number(1e-12)).unwrap().as_f64(), Some(1e-12));
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let doc = r#"{
            "traceEvents": [
                {"name": "cv.select", "ph": "X", "ts": 1.5, "dur": 2e3, "pid": 1, "tid": 2}
            ],
            "otherData": {"cores": 8, "ok": true, "none": null},
            "unicode": "\u00b5 and \ud83e\udd80"
        }"#;
        let v = parse(doc).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(events[0].get("dur").and_then(Value::as_f64), Some(2000.0));
        assert_eq!(v.get("unicode").and_then(Value::as_str), Some("µ and 🦀"));
    }

    #[test]
    fn value_to_json_round_trips() {
        let doc = r#"{"b":[1,2.5,null,true],"a":{"nested":"tricky \" \\ \n text"},"n":-1e-3}"#;
        let parsed = parse(doc).unwrap();
        let emitted = parsed.to_json();
        // Re-parsing the emitted text yields the same tree.
        assert_eq!(parse(&emitted).unwrap(), parsed);
        // Keys serialize alphabetically (BTreeMap order), so the emitted
        // form is itself a fixed point.
        assert_eq!(parse(&emitted).unwrap().to_json(), emitted);
        assert!(emitted.starts_with("{\"a\":"));
    }

    #[test]
    fn deep_nesting_is_rejected_before_the_stack_overflows() {
        // Just inside the limit: parses fine.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok(), "document at MAX_DEPTH must parse");

        // One level past the limit: a typed error naming the depth cap,
        // not a stack overflow. Mixed object/array nesting counts too.
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = parse(&too_deep).expect_err("must reject over-deep document");
        assert!(
            err.message.contains("nesting depth"),
            "error should name the depth limit, got: {err}"
        );

        let mixed = format!(
            "{}{}1{}{}",
            "{\"k\":[".repeat(MAX_DEPTH / 2 + 1),
            "[",
            "]",
            "]}".repeat(MAX_DEPTH / 2 + 1)
        );
        assert!(
            parse(&mixed).is_err(),
            "mixed-deep document must be rejected"
        );

        // An adversarially deep document (way past the limit) must come
        // back as an error rather than crash the process.
        let hostile = "[".repeat(1_000_000);
        assert!(parse(&hostile).is_err());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} trailing",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{\"a\" 1}",
            "nul",
            "01x",
            "\"unpaired \\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }
}
