//! Leveled structured event log with thread-local buffering.
//!
//! Spans and counters answer *where the time went*; this module answers
//! *what the pipeline decided*: which sample tripped a retry, why the
//! degradation ladder dropped a rung, which window fired a drift alert.
//! Each decision point emits a typed [`EventRecord`] through the
//! [`crate::event!`] macro; records accumulate in a thread-local buffer and
//! merge into the process-wide sink when the thread's outermost span
//! closes (the same join-safe design as the span sink — see
//! [`mod@crate::span`]), so the hot emitting paths never take a lock. The
//! drained log serializes as JSONL (`--events-out`), one self-contained
//! JSON object per line, each stamped with the current
//! [`RunContext`](crate::run::RunContext)'s id.
//!
//! Two independent level filters gate every event:
//!
//! * the **stream filter** (default [`Level::Debug`], i.e. everything)
//!   decides what is *recorded*, and only applies while recording is
//!   enabled — when disabled, emission is a single relaxed atomic load;
//! * the **console filter** (default [`Level::Info`]) decides what the
//!   [`crate::error!`]/[`crate::warn!`]/[`crate::info!`]/[`crate::debug!`]/[`crate::outln!`] macros *print*,
//!   independent of recording, so `--log-level error` silences a binary
//!   without touching the event stream.
//!
//! Both are settable from the `BMF_LOG` environment variable (stream and
//! console) or `--log-level` (console only) via
//! [`ObsOptions::extract`](crate::cli::ObsOptions::extract).
//!
//! Like spans, events obey the two crate invariants: no emission touches
//! an RNG stream or reorders a floating-point reduction (results are
//! bit-identical with events on or off at every thread count), and the
//! disabled path is one relaxed load.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The run lost something: a strict failure, retry exhaustion, a
    /// ladder drop past MAP.
    Error = 0,
    /// The pipeline intervened but recovered: guard flags, SPD repairs,
    /// retries, drift alerts.
    Warn = 1,
    /// Normal progress: run banners, stage results, heartbeats.
    Info = 2,
    /// High-volume diagnostic detail.
    Debug = 3,
}

impl Level {
    /// Lower-case name used in JSONL output and `BMF_LOG`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a level name (case-insensitive); `None` for anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What the console macros print (independent of recording).
static CONSOLE_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
/// What gets recorded into the event stream (while recording is on).
static STREAM_LEVEL: AtomicU8 = AtomicU8::new(Level::Debug as u8);

/// Sets the maximum level the console macros print.
pub fn set_console_level(level: Level) {
    CONSOLE_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Sets the maximum level recorded into the event stream.
pub fn set_stream_level(level: Level) {
    STREAM_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current console filter.
#[must_use]
pub fn console_level() -> Level {
    Level::from_u8(CONSOLE_LEVEL.load(Ordering::Relaxed))
}

/// Whether the console macros print at `level`.
#[inline]
#[must_use]
pub fn console_on(level: Level) -> bool {
    level as u8 <= CONSOLE_LEVEL.load(Ordering::Relaxed)
}

/// Whether an event at `level` would be recorded right now. When
/// recording is disabled this is a single relaxed atomic load.
#[inline(always)]
#[must_use]
pub fn stream_on(level: Level) -> bool {
    crate::is_enabled() && level as u8 <= STREAM_LEVEL.load(Ordering::Relaxed)
}

/// Restores both filters to their defaults (console `info`, stream
/// `debug`).
pub(crate) fn reset_levels() {
    CONSOLE_LEVEL.store(Level::Info as u8, Ordering::Relaxed);
    STREAM_LEVEL.store(Level::Debug as u8, Ordering::Relaxed);
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Process-wide emission sequence number (total order across threads).
    pub seq: u64,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Recording thread id (shared with span events).
    pub tid: u64,
    /// Severity.
    pub level: Level,
    /// Static event kind, dot-namespaced (e.g. `"spd.repair"`).
    pub kind: &'static str,
    /// Pre-rendered JSON object fragment (`"key":value,...`, no braces);
    /// empty when the event carries no payload.
    pub fields: String,
}

impl EventRecord {
    /// Renders this record as one self-contained JSON object (one JSONL
    /// line, newline not included). `run_id`, when given, is stamped
    /// into the object so offline tools can join the log against the
    /// run's other artifacts.
    #[must_use]
    pub fn to_json(&self, run_id: Option<&str>) -> String {
        let mut out = String::with_capacity(96 + self.fields.len());
        let _ = write!(
            out,
            "{{\"seq\":{},\"ts_ns\":{},\"tid\":{},\"level\":\"{}\",\"kind\":\"{}\"",
            self.seq,
            self.ts_ns,
            self.tid,
            self.level.as_str(),
            crate::json::escape(self.kind)
        );
        if let Some(id) = run_id {
            let _ = write!(out, ",\"run_id\":\"{}\"", crate::json::escape(id));
        }
        if !self.fields.is_empty() {
            out.push(',');
            out.push_str(&self.fields);
        }
        out.push('}');
        out
    }
}

/// A value renderable as a JSON field payload. Strings are escaped and
/// quoted; `f64` follows the [`crate::json::number`] convention
/// (non-finite encoded as strings); integers and bools render bare.
pub trait FieldValue {
    /// Appends this value's JSON encoding to `out`.
    fn render(&self, out: &mut String);
}

impl FieldValue for str {
    fn render(&self, out: &mut String) {
        out.push('"');
        out.push_str(&crate::json::escape(self));
        out.push('"');
    }
}

impl FieldValue for String {
    fn render(&self, out: &mut String) {
        self.as_str().render(out);
    }
}

impl FieldValue for f64 {
    fn render(&self, out: &mut String) {
        out.push_str(&crate::json::number(*self));
    }
}

macro_rules! impl_field_value_int {
    ($($ty:ty),*) => {$(
        impl FieldValue for $ty {
            fn render(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        }
    )*};
}

impl_field_value_int!(bool, u32, u64, usize, i32, i64);

impl<T: FieldValue + ?Sized> FieldValue for &T {
    fn render(&self, out: &mut String) {
        (**self).render(out);
    }
}

/// Appends `"key":value` (comma-separated) to a fields fragment. Used by
/// the [`crate::event!`] macro; callers building fields by hand may use it too.
pub fn push_field(out: &mut String, key: &str, value: &dyn FieldValue) {
    if !out.is_empty() {
        out.push(',');
    }
    out.push('"');
    out.push_str(&crate::json::escape(key));
    out.push_str("\":");
    value.render(out);
}

/// Records a typed event when recording is on and `level` passes the
/// stream filter; a single relaxed load otherwise.
///
/// ```
/// bmf_obs::event!(Warn, "spd.repair", "stage": "ridge", "jitter": 1e-10);
/// ```
///
/// The field expressions are evaluated — and the payload allocated —
/// only when the event will actually be recorded.
#[macro_export]
macro_rules! event {
    ($level:ident, $kind:expr $(, $key:literal : $value:expr)* $(,)?) => {
        if $crate::event::stream_on($crate::event::Level::$level) {
            #[allow(unused_mut)]
            let mut fields = String::new();
            $($crate::event::push_field(&mut fields, $key, &$value);)*
            $crate::event::emit($crate::event::Level::$level, $kind, fields);
        }
    };
}

/// Prints to stderr at [`Level::Error`] and records a `log` event.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::event::console($crate::event::Level::Error, false, format_args!($($arg)*))
    };
}

/// Prints to stderr at [`Level::Warn`] and records a `log` event.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::event::console($crate::event::Level::Warn, false, format_args!($($arg)*))
    };
}

/// Prints to stderr at [`Level::Info`] and records a `log` event.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::event::console($crate::event::Level::Info, false, format_args!($($arg)*))
    };
}

/// Prints to stderr at [`Level::Debug`] (silent by default) and records
/// a `log` event.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::event::console($crate::event::Level::Debug, false, format_args!($($arg)*))
    };
}

/// Prints a result line to **stdout** at [`Level::Info`] and records a
/// `log` event. This is the routed replacement for the bins' bare
/// `println!` table output, so `--log-level error` makes a binary fully
/// quiet.
#[macro_export]
macro_rules! outln {
    ($($arg:tt)*) => {
        $crate::event::console($crate::event::Level::Info, true, format_args!($($arg)*))
    };
}

/// Backend of the console macros: prints `args` (with a trailing
/// newline) to stdout or stderr when `level` passes the console filter,
/// and records a `log`-kind event carrying the message when it passes
/// the stream filter. Not a hot-path API — the figure binaries call it a
/// few dozen times per run.
pub fn console(level: Level, stdout: bool, args: std::fmt::Arguments<'_>) {
    let print = console_on(level);
    let record = stream_on(level);
    if !print && !record {
        return;
    }
    let msg = args.to_string();
    if print {
        if stdout {
            println!("{msg}");
        } else {
            eprintln!("{msg}");
        }
    }
    if record {
        let mut fields = String::new();
        push_field(&mut fields, "msg", &msg);
        emit(level, "log", fields);
    }
}

static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Records left behind by exited threads or drained flushes.
static SINK: Mutex<Vec<EventRecord>> = Mutex::new(Vec::new());

/// Per-thread record buffer; drains into [`SINK`] at the outermost span
/// close (see [`crate::span`]) and at thread exit as a backstop.
struct ThreadRecords(Vec<EventRecord>);

impl Drop for ThreadRecords {
    fn drop(&mut self) {
        if self.0.is_empty() {
            return;
        }
        if let Ok(mut sink) = SINK.lock() {
            sink.append(&mut self.0);
        }
    }
}

thread_local! {
    static RECORDS: RefCell<ThreadRecords> = const { RefCell::new(ThreadRecords(Vec::new())) };
}

/// Records an event with a runtime-computed level (the raw API behind
/// [`crate::event!`]; use it when the level is not a compile-time constant,
/// e.g. a drift alert whose severity is data-dependent). `fields` is a
/// pre-rendered JSON fragment, normally built with [`push_field`].
/// Returns without recording when the stream filter rejects `level`.
pub fn emit(level: Level, kind: &'static str, fields: String) {
    if !stream_on(level) {
        return;
    }
    let record = EventRecord {
        seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        ts_ns: crate::span::now_ns(),
        tid: crate::span::current_tid(),
        level,
        kind,
        fields,
    };
    crate::flight::record(&record);
    RECORDS.with(|r| r.borrow_mut().0.push(record));
}

/// Flushes the calling thread's buffered records into the sink. Called
/// from the span layer at every outermost span close, so worker-thread
/// records are visible before any `std::thread::scope` join completes.
pub(crate) fn flush_thread() {
    RECORDS.with(|r| {
        let mut buf = r.borrow_mut();
        if buf.0.is_empty() {
            return;
        }
        if let Ok(mut sink) = SINK.lock() {
            sink.append(&mut buf.0);
        }
    });
}

/// Drains every recorded event: the global sink plus the calling
/// thread's buffer, sorted by emission sequence (a total order across
/// threads).
pub fn take_records() -> Vec<EventRecord> {
    let mut records: Vec<EventRecord> = SINK
        .lock()
        .map(|mut sink| std::mem::take(&mut *sink))
        .unwrap_or_default();
    RECORDS.with(|r| records.append(&mut r.borrow_mut().0));
    records.sort_by_key(|r| r.seq);
    records
}

/// Copies the recorded events without draining them: the global sink
/// plus the calling thread's buffer, sorted by emission sequence. Built
/// for live scrapers (`GET /events`, the on-demand dashboard) that must
/// not steal records from the exit-time artifact writers. Worker
/// threads' *unflushed* thread-local buffers are invisible here — their
/// records appear once the thread's outermost span closes, which is the
/// same visibility the sink itself guarantees.
pub fn peek_records() -> Vec<EventRecord> {
    let mut records: Vec<EventRecord> = SINK.lock().map(|sink| sink.clone()).unwrap_or_default();
    RECORDS.with(|r| records.extend(r.borrow().0.iter().cloned()));
    records.sort_by_key(|r| r.seq);
    records
}

/// Discards buffered records and rewinds the sequence counter.
pub(crate) fn clear() {
    if let Ok(mut sink) = SINK.lock() {
        sink.clear();
    }
    RECORDS.with(|r| r.borrow_mut().0.clear());
    NEXT_SEQ.store(0, Ordering::Relaxed);
    if let Ok(mut tasks) = PROGRESS.lock() {
        tasks.clear();
    }
}

/// A lock-free minimum-interval limiter: [`RateLimiter::allow`] returns
/// `true` at most once per `interval_ns`, under concurrent callers.
#[derive(Debug)]
pub struct RateLimiter {
    interval_ns: u64,
    /// Timestamp of the last allowed call; `u64::MAX` = never fired.
    last_ns: AtomicU64,
}

impl RateLimiter {
    /// A limiter that allows its first call and then at most one call
    /// per `interval_ns`.
    #[must_use]
    pub fn new(interval_ns: u64) -> Self {
        RateLimiter {
            interval_ns,
            last_ns: AtomicU64::new(u64::MAX),
        }
    }

    /// Whether a call at monotonic time `now_ns` may proceed. Exactly
    /// one of a set of concurrent callers with the same eligible
    /// timestamp wins (compare-and-swap on the last-allowed mark).
    pub fn allow(&self, now_ns: u64) -> bool {
        let last = self.last_ns.load(Ordering::Relaxed);
        if last != u64::MAX && now_ns.saturating_sub(last) < self.interval_ns {
            return false;
        }
        self.last_ns
            .compare_exchange(last, now_ns, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }
}

/// Minimum interval between heartbeat pulses (500 ms).
pub const HEARTBEAT_INTERVAL_NS: u64 = 500_000_000;

/// Latest state of one heartbeat-labelled loop, kept for live scrapers.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressEntry {
    /// Heartbeat label, e.g. `"monte_carlo.post_layout"`.
    pub label: &'static str,
    /// Units completed at the last pulse.
    pub done: u64,
    /// Planned units.
    pub total: u64,
    /// Completion rate at the last pulse (units/second).
    pub per_sec: f64,
    /// Estimated seconds to completion at the last pulse.
    pub eta_s: f64,
    /// Whether the loop pulsed its final unit.
    pub finished: bool,
    /// Trace-epoch timestamp of the last pulse.
    pub updated_ns: u64,
}

impl ProgressEntry {
    /// Completion fraction in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.done as f64 / self.total as f64).min(1.0)
    }

    /// Serializes this entry as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"label\":{},\"done\":{},\"total\":{},\"fraction\":{},\"per_sec\":{},\"eta_s\":{},\"finished\":{},\"updated_ns\":{}}}",
            crate::json::string(self.label),
            self.done,
            self.total,
            crate::json::number(self.fraction()),
            crate::json::number(self.per_sec),
            crate::json::number(self.eta_s),
            self.finished,
            self.updated_ns,
        )
    }
}

/// Live per-label progress registry fed by [`Heartbeat`] pulses. Pulses
/// are already rate-limited to one per [`HEARTBEAT_INTERVAL_NS`], so the
/// mutex here is touched at most ~2/s per loop — never per tick.
static PROGRESS: Mutex<Vec<ProgressEntry>> = Mutex::new(Vec::new());

/// Point-in-time copy of every live progress entry, in first-pulse order.
#[must_use]
pub fn progress_snapshot() -> Vec<ProgressEntry> {
    PROGRESS.lock().map(|t| t.clone()).unwrap_or_default()
}

fn progress_update(entry: ProgressEntry) {
    if let Ok(mut tasks) = PROGRESS.lock() {
        match tasks.iter_mut().find(|t| t.label == entry.label) {
            Some(slot) => *slot = entry,
            None => tasks.push(entry),
        }
    }
}

/// Progress heartbeat for long Monte Carlo / sweep loops.
///
/// Constructed once per loop with the expected total; workers call
/// [`Heartbeat::tick`] per completed unit. Pulses are rate-limited to
/// one per [`HEARTBEAT_INTERVAL_NS`]; each pulse emits a `progress`
/// event (done/total, rate, ETA) and, when stderr is a terminal and the
/// console filter admits `info`, redraws a one-line stderr ticker. The
/// final unit always emits a closing `progress` event so short loops
/// still log one.
///
/// When event streaming is off at construction the heartbeat is inert:
/// `tick` is a branch on a plain bool (cheaper than the one-relaxed-load
/// contract requires). Ticks never touch an RNG or feed a number back
/// into the estimate, so results are bit-identical with heartbeats on or
/// off.
#[derive(Debug)]
pub struct Heartbeat {
    label: &'static str,
    total: u64,
    armed: bool,
    ticker: bool,
    start_ns: u64,
    done: AtomicU64,
    limiter: RateLimiter,
    drew_ticker: AtomicBool,
}

impl Heartbeat {
    /// A heartbeat for a loop of `total` units labelled `label`.
    #[must_use]
    pub fn new(label: &'static str, total: usize) -> Self {
        let armed = stream_on(Level::Info) && total > 0;
        Heartbeat {
            label,
            total: total as u64,
            armed,
            ticker: armed
                && console_on(Level::Info)
                && std::io::IsTerminal::is_terminal(&std::io::stderr()),
            start_ns: if armed { crate::span::now_ns() } else { 0 },
            done: AtomicU64::new(0),
            limiter: RateLimiter::new(HEARTBEAT_INTERVAL_NS),
            drew_ticker: AtomicBool::new(false),
        }
    }

    /// Marks one unit complete; emits a rate-limited pulse.
    #[inline]
    pub fn tick(&self) {
        if !self.armed {
            return;
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let now_ns = crate::span::now_ns();
        let finished = done >= self.total;
        if finished || self.limiter.allow(now_ns) {
            self.pulse(done, now_ns, finished);
        }
    }

    fn pulse(&self, done: u64, now_ns: u64, finished: bool) {
        let elapsed_s = now_ns.saturating_sub(self.start_ns) as f64 / 1e9;
        let rate = if elapsed_s > 0.0 {
            done as f64 / elapsed_s
        } else {
            0.0
        };
        let eta_s = if rate > 0.0 {
            (self.total - done) as f64 / rate
        } else {
            0.0
        };
        let mut fields = String::new();
        push_field(&mut fields, "label", &self.label);
        push_field(&mut fields, "done", &done);
        push_field(&mut fields, "total", &self.total);
        push_field(&mut fields, "per_sec", &rate);
        push_field(&mut fields, "eta_s", &eta_s);
        emit(Level::Info, "progress", fields);
        progress_update(ProgressEntry {
            label: self.label,
            done,
            total: self.total,
            per_sec: rate,
            eta_s,
            finished,
            updated_ns: now_ns,
        });
        if self.ticker && !finished {
            let mut err = std::io::stderr().lock();
            let _ = write!(
                err,
                "\r\x1b[K{} {done}/{} ({rate:.0}/s, ETA {eta_s:.0}s)",
                self.label, self.total
            );
            let _ = err.flush();
            self.drew_ticker.store(true, Ordering::Relaxed);
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        if self.drew_ticker.load(Ordering::Relaxed) {
            // Erase the in-place ticker line so the next output starts
            // on a clean column.
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r\x1b[K");
            let _ = err.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_lock;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("Info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), None);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn disabled_emission_records_nothing() {
        let _g = test_lock();
        crate::reset();
        crate::event!(Error, "never", "k": 1u64);
        emit(Level::Error, "never.raw", String::new());
        assert!(take_records().is_empty());
        crate::reset();
    }

    #[test]
    fn stream_filter_gates_by_level() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        set_stream_level(Level::Warn);
        crate::event!(Error, "kept.error");
        crate::event!(Warn, "kept.warn");
        crate::event!(Info, "dropped.info");
        crate::event!(Debug, "dropped.debug");
        crate::disable();
        let records = take_records();
        let kinds: Vec<&str> = records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, ["kept.error", "kept.warn"]);
        // Sequence numbers are assigned in emission order.
        assert!(records[0].seq < records[1].seq);
        crate::reset();
    }

    #[test]
    fn records_render_as_valid_json_with_escaping() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        crate::event!(
            Warn,
            "guard.flag",
            "reason": "quote \" backslash \\ newline \n",
            "rows": 3usize,
            "rate": f64::NAN,
            "ok": false,
        );
        crate::disable();
        let records = take_records();
        assert_eq!(records.len(), 1);
        let line = records[0].to_json(Some("deadbeefdeadbeef"));
        let v = crate::json::parse(&line).expect("JSONL line parses");
        assert_eq!(
            v.get("kind").and_then(crate::json::Value::as_str),
            Some("guard.flag")
        );
        assert_eq!(
            v.get("level").and_then(crate::json::Value::as_str),
            Some("warn")
        );
        assert_eq!(
            v.get("run_id").and_then(crate::json::Value::as_str),
            Some("deadbeefdeadbeef")
        );
        assert_eq!(
            v.get("reason").and_then(crate::json::Value::as_str),
            Some("quote \" backslash \\ newline \n")
        );
        assert_eq!(
            v.get("rows").and_then(crate::json::Value::as_f64),
            Some(3.0)
        );
        assert_eq!(
            v.get("rate").and_then(crate::json::Value::as_str),
            Some("NaN")
        );
        assert_eq!(
            v.get("ok").and_then(crate::json::Value::as_bool),
            Some(false)
        );
        crate::reset();
    }

    #[test]
    fn worker_thread_records_merge_at_span_close() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _span = crate::span("parallel.worker");
                    crate::event!(Info, "worker.event");
                });
            }
        });
        // Flushed by the outermost span close inside each worker
        // closure, so the scope join guarantees visibility here.
        crate::disable();
        let records = take_records();
        assert_eq!(
            records.iter().filter(|r| r.kind == "worker.event").count(),
            3
        );
        let tids: std::collections::HashSet<u64> = records.iter().map(|r| r.tid).collect();
        assert_eq!(tids.len(), 3);
        crate::reset();
    }

    #[test]
    fn console_respects_level_and_records_log_events() {
        let _g = test_lock();
        crate::reset();
        assert!(console_on(Level::Info));
        assert!(!console_on(Level::Debug));
        set_console_level(Level::Error);
        assert!(!console_on(Level::Info));
        assert!(console_on(Level::Error));
        // With the console silenced but the stream on, a message is
        // recorded without being printed.
        crate::enable();
        crate::info!("quiet but recorded: {}", 42);
        crate::disable();
        let records = take_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].kind, "log");
        assert_eq!(records[0].level, Level::Info);
        assert!(records[0].fields.contains("quiet but recorded: 42"));
        crate::reset();
        assert!(
            console_on(Level::Info),
            "reset restores the console default"
        );
    }

    #[test]
    fn rate_limiter_allows_first_then_spaces_by_interval() {
        let limiter = RateLimiter::new(100);
        let mut allowed = Vec::new();
        for now in (0..1000).step_by(10) {
            if limiter.allow(now) {
                allowed.push(now);
            }
        }
        assert_eq!(allowed.first(), Some(&0));
        for pair in allowed.windows(2) {
            assert!(pair[1] - pair[0] >= 100, "pulses too close: {allowed:?}");
        }
        // Monotonicity: total pulses never exceed span / interval + 1.
        assert!(allowed.len() <= 10 + 1, "{allowed:?}");
    }

    #[test]
    fn heartbeat_emits_progress_and_always_closes() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        {
            let hb = Heartbeat::new("test.loop", 7);
            for _ in 0..7 {
                hb.tick();
            }
        }
        crate::disable();
        let records = take_records();
        let progress: Vec<&EventRecord> = records.iter().filter(|r| r.kind == "progress").collect();
        assert!(!progress.is_empty());
        let last = progress.last().unwrap();
        assert!(last.fields.contains("\"done\":7"));
        assert!(last.fields.contains("\"total\":7"));
        crate::reset();
    }

    #[test]
    fn peek_does_not_drain_and_matches_take() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        crate::event!(Info, "first");
        crate::event!(Warn, "second");
        let peeked = peek_records();
        assert_eq!(peeked.len(), 2);
        let peeked_again = peek_records();
        assert_eq!(peeked, peeked_again, "peek must not consume records");
        crate::disable();
        let taken = take_records();
        assert_eq!(taken, peeked, "take sees everything peek saw");
        assert!(take_records().is_empty(), "take drains");
        crate::reset();
    }

    #[test]
    fn heartbeat_pulses_feed_the_progress_registry() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        {
            let hb = Heartbeat::new("test.progress", 5);
            for _ in 0..5 {
                hb.tick();
            }
        }
        let tasks = progress_snapshot();
        let entry = tasks
            .iter()
            .find(|t| t.label == "test.progress")
            .expect("final tick always pulses");
        assert_eq!(entry.done, 5);
        assert_eq!(entry.total, 5);
        assert!(entry.finished);
        assert_eq!(entry.fraction(), 1.0);
        let v = crate::json::parse(&entry.to_json()).expect("progress JSON parses");
        assert_eq!(
            v.get("fraction").and_then(crate::json::Value::as_f64),
            Some(1.0)
        );
        crate::reset();
        assert!(
            progress_snapshot().is_empty(),
            "reset clears the progress registry"
        );
    }

    #[test]
    fn disarmed_heartbeat_is_inert() {
        let _g = test_lock();
        crate::reset();
        let hb = Heartbeat::new("quiet.loop", 1000);
        for _ in 0..1000 {
            hb.tick();
        }
        assert!(take_records().is_empty());
        crate::reset();
    }
}
