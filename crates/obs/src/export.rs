//! Exporters: Chrome trace-event JSON, aggregated span profile, and
//! metrics snapshot JSON.
//!
//! All three embed a [`HardwareContext`] so committed artifacts say what
//! machine produced them — the PR 1 bench numbers came from a 1-core CI
//! container and were misread as a scaling regression precisely because
//! the file did not say so.

use crate::json;
use crate::metrics::MetricsSnapshot;
use crate::span::SpanEvent;
use std::fmt::Write as _;

/// The hardware/configuration context embedded in every export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareContext {
    /// Core count reported by `std::thread::available_parallelism`
    /// (0 if the query failed).
    pub detected_cores: usize,
    /// Worker thread count the run was configured with.
    pub threads_used: usize,
}

impl HardwareContext {
    /// Detects the core count and records the configured thread count.
    pub fn detect(threads_used: usize) -> Self {
        HardwareContext {
            detected_cores: std::thread::available_parallelism().map_or(0, |n| n.get()),
            threads_used,
        }
    }

    /// The context as JSON object *fields* (no surrounding braces), so
    /// callers can splice it into their own objects.
    pub fn json_fields(&self) -> String {
        format!(
            "\"detected_cores\":{},\"threads_used\":{}",
            self.detected_cores, self.threads_used
        )
    }
}

fn ns_to_us(ns: u64) -> String {
    // Chrome trace timestamps are microseconds as doubles; keep the
    // nanosecond fraction so short spans stay distinguishable.
    json::number(ns as f64 / 1000.0)
}

/// Renders events in the Chrome trace-event "JSON object format"
/// (loadable in Perfetto and `chrome://tracing`): complete events
/// (`"ph":"X"`) with microsecond timestamps, plus thread-name metadata
/// and the hardware context — and the run identity, when one is
/// installed — under `otherData`.
pub fn chrome_trace_json(
    events: &[SpanEvent],
    hardware: &HardwareContext,
    run: Option<&crate::run::RunContext>,
) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in &tids {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json::string(&format!("bmf worker {tid}"))
        );
    }
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"bmf\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"depth\":{},\"self_us\":{}}}}}",
            json::string(e.name),
            ns_to_us(e.start_ns),
            ns_to_us(e.dur_ns),
            e.tid,
            e.depth,
            ns_to_us(e.self_ns),
        );
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{{}{}}}}}",
        hardware.json_fields(),
        run.map(|r| format!(",{}", r.json_fields()))
            .unwrap_or_default()
    );
    out
}

/// One row of the aggregated per-span profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub self_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

/// Aggregates events by span name: call count, total and self wall
/// time, min/max single-call duration. Sorted by self time descending —
/// the top row is the hottest span.
pub fn aggregate(events: &[SpanEvent]) -> Vec<ProfileRow> {
    let mut rows: Vec<ProfileRow> = Vec::new();
    for e in events {
        match rows.iter_mut().find(|r| r.name == e.name) {
            Some(row) => {
                row.count += 1;
                row.total_ns += e.dur_ns;
                row.self_ns += e.self_ns;
                row.min_ns = row.min_ns.min(e.dur_ns);
                row.max_ns = row.max_ns.max(e.dur_ns);
            }
            None => rows.push(ProfileRow {
                name: e.name,
                count: 1,
                total_ns: e.dur_ns,
                self_ns: e.self_ns,
                min_ns: e.dur_ns,
                max_ns: e.dur_ns,
            }),
        }
    }
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
    rows
}

/// The aggregated profile as a JSON document.
pub fn profile_json(events: &[SpanEvent], hardware: &HardwareContext) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"hardware\":{{{}}},\"spans\":[",
        hardware.json_fields()
    );
    for (i, row) in aggregate(events).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":{},\"count\":{},\"total_ns\":{},\"self_ns\":{},\
             \"min_ns\":{},\"max_ns\":{}}}",
            json::string(row.name),
            row.count,
            row.total_ns,
            row.self_ns,
            row.min_ns,
            row.max_ns,
        );
    }
    out.push_str("]}");
    out
}

pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The aggregated profile as a human-readable table (for `--profile`).
/// Recorded histograms (count > 0) are appended as a second table with
/// interpolated p50/p90/p99 per-call latencies.
pub fn profile_table(
    events: &[SpanEvent],
    histograms: &[crate::metrics::HistogramStats],
    hardware: &HardwareContext,
) -> String {
    let rows = aggregate(events);
    let name_width = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = format!(
        "profile ({} spans, {} cores detected, {} threads used)\n",
        rows.iter().map(|r| r.count).sum::<u64>(),
        hardware.detected_cores,
        hardware.threads_used,
    );
    let _ = writeln!(
        out,
        "{:<name_width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}",
        "span", "calls", "total", "self", "min", "max"
    );
    for row in &rows {
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}",
            row.name,
            row.count,
            fmt_ns(row.total_ns),
            fmt_ns(row.self_ns),
            fmt_ns(row.min_ns),
            fmt_ns(row.max_ns),
        );
    }
    let recorded: Vec<_> = histograms.iter().filter(|h| h.count > 0).collect();
    if !recorded.is_empty() {
        let hist_width = recorded
            .iter()
            .map(|h| h.name.len())
            .chain(std::iter::once("histogram".len()))
            .max()
            .unwrap_or(9);
        let _ = writeln!(
            out,
            "\n{:<hist_width$}  {:>8}  {:>12}  {:>12}  {:>12}",
            "histogram", "count", "p50", "p90", "p99"
        );
        let fmt_pct = |p: Option<u64>| p.map_or_else(|| "-".to_string(), fmt_ns);
        for h in &recorded {
            let _ = writeln!(
                out,
                "{:<hist_width$}  {:>8}  {:>12}  {:>12}  {:>12}",
                h.name,
                h.count,
                fmt_pct(h.p50_ns()),
                fmt_pct(h.p90_ns()),
                fmt_pct(h.p99_ns()),
            );
        }
    }
    out
}

/// The metrics snapshot (counters + histograms) as a JSON document,
/// stamped with the run identity when one is installed.
pub fn metrics_json(
    snapshot: &MetricsSnapshot,
    hardware: &HardwareContext,
    run: Option<&crate::run::RunContext>,
) -> String {
    let mut out = String::new();
    if let Some(run) = run {
        let _ = write!(out, "{{\"run\":{{{}}},", run.json_fields());
    } else {
        out.push('{');
    }
    let _ = write!(
        out,
        "\"hardware\":{{{}}},\"counters\":{{",
        hardware.json_fields()
    );
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json::string(name), value);
    }
    out.push_str("},\"histograms\":{");
    for (i, h) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mean = if h.count == 0 {
            0.0
        } else {
            h.sum_ns as f64 / h.count as f64
        };
        // Empty histograms get explicit nulls: a literal 0 here reads
        // as a real sub-nanosecond measurement downstream.
        let pct = |p: Option<u64>| p.map_or_else(|| "null".to_string(), |v| v.to_string());
        let _ = write!(
            out,
            "{}:{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\
             \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"log2_buckets\":[{}]}}",
            json::string(h.name),
            h.count,
            h.sum_ns,
            json::number(mean),
            h.min_ns,
            h.max_ns,
            pct(h.p50_ns()),
            pct(h.p90_ns()),
            pct(h.p99_ns()),
            h.buckets
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
    }
    if let Some(p) = &snapshot.process {
        let _ = write!(out, "}},\"process\":{}", p.to_json());
        out.push('}');
    } else {
        out.push_str("},\"process\":null}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "outer",
                tid: 1,
                depth: 0,
                start_ns: 0,
                dur_ns: 10_000,
                self_ns: 4_000,
            },
            SpanEvent {
                name: "inner",
                tid: 1,
                depth: 1,
                start_ns: 2_000,
                dur_ns: 6_000,
                self_ns: 6_000,
            },
            SpanEvent {
                name: "inner",
                tid: 2,
                depth: 0,
                start_ns: 1_000,
                dur_ns: 2_000,
                self_ns: 2_000,
            },
        ]
    }

    fn hw() -> HardwareContext {
        HardwareContext {
            detected_cores: 8,
            threads_used: 2,
        }
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let doc = chrome_trace_json(&sample_events(), &hw(), None);
        let v = parse(&doc).expect("trace must be valid JSON");
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        // 2 thread_name metadata events + 3 span events.
        assert_eq!(events.len(), 5);
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 3);
        for e in &complete {
            assert!(e.get("ts").and_then(Value::as_f64).is_some());
            assert!(e.get("dur").and_then(Value::as_f64).is_some());
            assert!(e.get("tid").and_then(Value::as_f64).is_some());
        }
        // µs conversion: 10_000 ns span -> 10 µs.
        assert_eq!(complete[0].get("dur").and_then(Value::as_f64), Some(10.0));
        let other = v.get("otherData").unwrap();
        assert_eq!(
            other.get("detected_cores").and_then(Value::as_f64),
            Some(8.0)
        );
        assert_eq!(other.get("threads_used").and_then(Value::as_f64), Some(2.0));
        // No run installed → no run_id key.
        assert!(other.get("run_id").is_none());
    }

    #[test]
    fn exports_stamp_the_run_identity() {
        let run = crate::run::RunContext::derive(2015, "export test");
        let doc = chrome_trace_json(&sample_events(), &hw(), Some(&run));
        let v = parse(&doc).expect("trace must be valid JSON");
        let other = v.get("otherData").unwrap();
        assert_eq!(
            other.get("run_id").and_then(Value::as_str),
            Some(run.run_id.as_str())
        );
        assert_eq!(other.get("root_seed").and_then(Value::as_f64), Some(2015.0));

        let snapshot = MetricsSnapshot {
            counters: vec![("monte_carlo.sims", 1)],
            histograms: vec![],
            process: None,
        };
        let doc = metrics_json(&snapshot, &hw(), Some(&run));
        let v = parse(&doc).expect("metrics must be valid JSON");
        assert_eq!(
            v.get("run")
                .and_then(|r| r.get("run_id"))
                .and_then(Value::as_str),
            Some(run.run_id.as_str())
        );
    }

    #[test]
    fn aggregate_merges_by_name_and_sorts_by_self_time() {
        let rows = aggregate(&sample_events());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "inner"); // 8_000 ns self > 4_000 ns self
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_ns, 8_000);
        assert_eq!(rows[0].min_ns, 2_000);
        assert_eq!(rows[0].max_ns, 6_000);
        assert_eq!(rows[1].name, "outer");
        assert_eq!(rows[1].self_ns, 4_000);
    }

    #[test]
    fn profile_json_and_table_render() {
        let doc = profile_json(&sample_events(), &hw());
        let v = parse(&doc).expect("profile must be valid JSON");
        let spans = v.get("spans").and_then(Value::as_array).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("name").and_then(Value::as_str), Some("inner"));

        let table = profile_table(&sample_events(), &[], &hw());
        assert!(table.contains("span"));
        assert!(table.contains("inner"));
        assert!(table.contains("8 cores detected"));
        // No recorded histograms → no histogram section.
        assert!(!table.contains("histogram"));

        use crate::metrics::{HistogramStats, HISTOGRAM_BUCKETS};
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        buckets[6] = 4; // [64, 128)
        let hists = vec![HistogramStats {
            name: "cholesky.ns",
            count: 4,
            sum_ns: 400,
            min_ns: 70,
            max_ns: 120,
            buckets,
        }];
        let table = profile_table(&sample_events(), &hists, &hw());
        assert!(table.contains("histogram"));
        assert!(table.contains("cholesky.ns"));
        assert!(table.contains("p99"));
    }

    #[test]
    fn metrics_json_is_valid_and_carries_counters() {
        use crate::metrics::{HistogramStats, HISTOGRAM_BUCKETS};
        let snapshot = MetricsSnapshot {
            counters: vec![("monte_carlo.sims", 42), ("cholesky.calls", 7)],
            histograms: vec![HistogramStats {
                name: "cholesky.ns",
                count: 7,
                sum_ns: 700,
                min_ns: 50,
                max_ns: 200,
                buckets: [0; HISTOGRAM_BUCKETS],
            }],
            process: crate::metrics::ProcessStats::sample(),
        };
        let doc = metrics_json(&snapshot, &hw(), None);
        let v = parse(&doc).expect("metrics must be valid JSON");
        let counters = v.get("counters").unwrap();
        assert_eq!(
            counters.get("monte_carlo.sims").and_then(Value::as_f64),
            Some(42.0)
        );
        let hist = v
            .get("histograms")
            .and_then(|h| h.get("cholesky.ns"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Value::as_f64), Some(7.0));
        assert_eq!(hist.get("mean_ns").and_then(Value::as_f64), Some(100.0));
        for key in ["p50_ns", "p90_ns", "p99_ns"] {
            assert!(
                hist.get(key).and_then(Value::as_f64).is_some(),
                "missing {key}"
            );
        }
    }

    #[test]
    fn empty_histogram_percentiles_export_as_null() {
        use crate::metrics::{HistogramStats, HISTOGRAM_BUCKETS};
        let snapshot = MetricsSnapshot {
            counters: vec![],
            histograms: vec![HistogramStats {
                name: "eigen.ns",
                count: 0,
                sum_ns: 0,
                min_ns: 0,
                max_ns: 0,
                buckets: [0; HISTOGRAM_BUCKETS],
            }],
            process: None,
        };
        let doc = metrics_json(&snapshot, &hw(), None);
        let v = parse(&doc).expect("metrics must be valid JSON");
        let hist = v.get("histograms").and_then(|h| h.get("eigen.ns")).unwrap();
        for key in ["p50_ns", "p90_ns", "p99_ns"] {
            let val = hist.get(key).expect("percentile key present");
            assert!(
                matches!(val, Value::Null),
                "{key} must be null on an empty histogram, got {}",
                val.to_json()
            );
            assert!(val.as_f64().is_none(), "{key} must not read as a number");
        }
        assert!(v.get("process").is_some(), "process key always present");
    }
}
