//! Shared handling of the observability CLI flags.
//!
//! Every binary in the workspace accepts the same flags:
//!
//! * `--trace-out <path>` — write a Chrome trace-event JSON file
//!   (loadable in Perfetto / `chrome://tracing`)
//! * `--profile` — print the aggregated per-span profile table to stdout
//! * `--metrics-out <path>` — write a metrics snapshot JSON file
//! * `--dashboard-out <path>` — write a self-contained HTML dashboard
//!   (profile, metrics, estimator health, drift timeline, event log,
//!   bench history)
//! * `--events-out <path>` — write the structured event log as JSONL
//!   (one JSON object per line) and arm the flight-recorder panic hook
//! * `--obs-listen <addr>` — serve live observability over HTTP while
//!   the run is in flight (`/metrics`, `/health`, `/events`,
//!   `/progress`, `/flight`, `/timeseries`, `/alerts` and a live
//!   dashboard at `/`); port `0` picks a free port, and the bound
//!   address is printed (and written to `$BMF_OBS_ADDR_FILE` when set)
//!   so scripts can find it
//! * `--alerts <rules.json>` — install declarative alert rules (see
//!   [`crate::alert`]) evaluated on every sampler tick; firing rules
//!   emit `alert.fired` events and flip `/health` to 503 on critical
//! * `--sample-interval-ms <n>` — cadence of the background telemetry
//!   sampler feeding [`crate::tsdb`] (defaults to
//!   [`crate::tsdb::DEFAULT_SAMPLE_INTERVAL_MS`]; the sampler starts
//!   automatically whenever `--obs-listen` or `--alerts` is given)
//! * `--log-level <error|warn|info|debug>` — console verbosity for the
//!   [`crate::error!`]/[`crate::warn!`]/[`crate::info!`]/[`crate::outln!`]
//!   macros; `--log-level error` makes a binary fully quiet. Unlike the
//!   output flags it does *not* enable recording.
//!
//! The `BMF_LOG` environment variable (same level names) sets both the
//! console and the event-stream filter; `--log-level` then overrides
//! the console side.
//!
//! [`ObsOptions::extract`] strips the flags out of an argv vector
//! *before* the binary's own parsing runs, so the existing positional /
//! flag parsers in `bmf` and the figure bins never see them. If any
//! output flag is present, recording is enabled for the whole run;
//! [`ObsOptions::finish`] then drains the recorded data and writes the
//! requested artifacts. Binaries that compute a [`HealthReport`] or a
//! [`DriftTimeline`] attach them via [`ObsOptions::attach_health`] /
//! [`ObsOptions::attach_drift`] before calling `finish`, and install
//! their run identity via [`ObsOptions::set_run`].

use crate::dashboard::{self, DashboardData};
use crate::event::Level;
use crate::export::HardwareContext;
use crate::fsio::atomic_write;
use crate::health::{DriftTimeline, HealthReport};
use crate::shard::{FleetSummary, ShardCoverage};
use std::io;

/// Filename the dashboard looks for (in the working directory) to
/// populate its bench-history section.
pub const BENCH_HISTORY_FILE: &str = "BENCH_history.json";

/// Parsed observability flags for one process run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsOptions {
    /// Destination for the Chrome trace JSON, if requested.
    pub trace_out: Option<String>,
    /// Whether to print the aggregated profile table at exit.
    pub profile: bool,
    /// Destination for the metrics snapshot JSON, if requested.
    pub metrics_out: Option<String>,
    /// Destination for the HTML dashboard, if requested.
    pub dashboard_out: Option<String>,
    /// Destination for the JSONL event log, if requested.
    pub events_out: Option<String>,
    /// Listen address for the live observability HTTP server, if given.
    pub obs_listen: Option<String>,
    /// Path of the alert rules file from `--alerts`, if given.
    pub alerts: Option<String>,
    /// Sampler cadence from `--sample-interval-ms`, if given.
    pub sample_interval_ms: Option<u64>,
    /// Console level from `--log-level`, if given (applied at extract).
    pub log_level: Option<Level>,
    /// Worker thread count recorded in exports; bins set this after
    /// their own `--threads` parsing via [`ObsOptions::set_threads`].
    pub threads_used: usize,
    /// Dashboard page title; defaults to the binary's argv\[0\] stem.
    pub title: String,
    /// Health report attached by the binary, rendered in the dashboard.
    pub health: Option<HealthReport>,
    /// Drift timeline attached by the binary, rendered in the dashboard.
    pub drift: Option<DriftTimeline>,
    /// Shard coverage attached by a merge, rendered in the dashboard.
    pub shard: Option<ShardCoverage>,
    /// Fleet telemetry attached by a merge, rendered in the dashboard.
    pub fleet: Option<FleetSummary>,
}

/// Error raised when an observability flag is missing or has an
/// unusable value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsFlagError {
    pub flag: &'static str,
    pub message: String,
}

impl ObsFlagError {
    fn missing_value(flag: &'static str) -> Self {
        ObsFlagError {
            flag,
            message: "requires a value".to_string(),
        }
    }

    fn bad_level(flag: &'static str, got: &str) -> Self {
        ObsFlagError {
            flag,
            message: format!("requires a level (error|warn|info|debug), got {got:?}"),
        }
    }
}

impl std::fmt::Display for ObsFlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flag {} {}", self.flag, self.message)
    }
}

impl std::error::Error for ObsFlagError {}

impl ObsOptions {
    /// Removes `--trace-out <path>`, `--profile`, `--metrics-out <path>`,
    /// `--dashboard-out <path>`, `--events-out <path>` and
    /// `--log-level <level>` (also the `--flag=value` spellings) from
    /// `args`, returning the parsed options. If any output flag was
    /// present, recording is enabled process-wide before returning, so
    /// spans, counters and events hit from the very first pipeline call
    /// are captured; `--events-out` additionally arms the
    /// flight-recorder panic hook. The `BMF_LOG` environment variable
    /// sets both level filters first; `--log-level` then overrides the
    /// console side.
    pub fn extract(args: &mut Vec<String>) -> Result<ObsOptions, ObsFlagError> {
        let mut options = ObsOptions {
            threads_used: 1,
            ..ObsOptions::default()
        };
        if let Some(bin) = args.first() {
            options.title = bin.rsplit(['/', '\\']).next().unwrap_or(bin).to_string();
        }
        let mut kept = Vec::with_capacity(args.len());
        let mut iter = args.drain(..);
        let mut error: Option<ObsFlagError> = None;
        let mut level_arg: Option<String> = None;
        let mut interval_arg: Option<String> = None;
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--profile" => options.profile = true,
                "--trace-out" => match iter.next() {
                    Some(path) => options.trace_out = Some(path),
                    None => {
                        error = Some(ObsFlagError::missing_value("--trace-out"));
                        break;
                    }
                },
                "--metrics-out" => match iter.next() {
                    Some(path) => options.metrics_out = Some(path),
                    None => {
                        error = Some(ObsFlagError::missing_value("--metrics-out"));
                        break;
                    }
                },
                "--dashboard-out" => match iter.next() {
                    Some(path) => options.dashboard_out = Some(path),
                    None => {
                        error = Some(ObsFlagError::missing_value("--dashboard-out"));
                        break;
                    }
                },
                "--events-out" => match iter.next() {
                    Some(path) => options.events_out = Some(path),
                    None => {
                        error = Some(ObsFlagError::missing_value("--events-out"));
                        break;
                    }
                },
                "--obs-listen" => match iter.next() {
                    Some(addr) => options.obs_listen = Some(addr),
                    None => {
                        error = Some(ObsFlagError::missing_value("--obs-listen"));
                        break;
                    }
                },
                "--alerts" => match iter.next() {
                    Some(path) => options.alerts = Some(path),
                    None => {
                        error = Some(ObsFlagError::missing_value("--alerts"));
                        break;
                    }
                },
                "--sample-interval-ms" => match iter.next() {
                    Some(spec) => interval_arg = Some(spec),
                    None => {
                        error = Some(ObsFlagError::missing_value("--sample-interval-ms"));
                        break;
                    }
                },
                "--log-level" => match iter.next() {
                    Some(level) => level_arg = Some(level),
                    None => {
                        error = Some(ObsFlagError::missing_value("--log-level"));
                        break;
                    }
                },
                _ => {
                    if let Some(path) = arg.strip_prefix("--trace-out=") {
                        options.trace_out = Some(path.to_string());
                    } else if let Some(path) = arg.strip_prefix("--metrics-out=") {
                        options.metrics_out = Some(path.to_string());
                    } else if let Some(path) = arg.strip_prefix("--dashboard-out=") {
                        options.dashboard_out = Some(path.to_string());
                    } else if let Some(path) = arg.strip_prefix("--events-out=") {
                        options.events_out = Some(path.to_string());
                    } else if let Some(addr) = arg.strip_prefix("--obs-listen=") {
                        options.obs_listen = Some(addr.to_string());
                    } else if let Some(path) = arg.strip_prefix("--alerts=") {
                        options.alerts = Some(path.to_string());
                    } else if let Some(spec) = arg.strip_prefix("--sample-interval-ms=") {
                        interval_arg = Some(spec.to_string());
                    } else if let Some(level) = arg.strip_prefix("--log-level=") {
                        level_arg = Some(level.to_string());
                    } else {
                        kept.push(arg);
                    }
                }
            }
        }
        drop(iter);
        *args = kept;
        if let Some(error) = error {
            return Err(error);
        }
        // BMF_LOG filters both what is printed and what is recorded;
        // --log-level then overrides the console side only.
        if let Ok(spec) = std::env::var("BMF_LOG") {
            if let Some(level) = Level::parse(spec.trim()) {
                crate::event::set_console_level(level);
                crate::event::set_stream_level(level);
            }
        }
        if let Some(spec) = level_arg {
            let Some(level) = Level::parse(&spec) else {
                return Err(ObsFlagError::bad_level("--log-level", &spec));
            };
            options.log_level = Some(level);
            crate::event::set_console_level(level);
        }
        if let Some(spec) = interval_arg {
            match spec.parse::<u64>() {
                Ok(ms) if ms > 0 => options.sample_interval_ms = Some(ms),
                _ => {
                    return Err(ObsFlagError {
                        flag: "--sample-interval-ms",
                        message: format!(
                            "requires a positive integer of milliseconds, got {spec:?}"
                        ),
                    })
                }
            }
        }
        if options.any() {
            crate::enable();
        }
        if let Some(path) = &options.alerts {
            let text = std::fs::read_to_string(path).map_err(|e| ObsFlagError {
                flag: "--alerts",
                message: format!("cannot read {path:?}: {e}"),
            })?;
            let rules = crate::alert::parse_rules(&text).map_err(|e| ObsFlagError {
                flag: "--alerts",
                message: format!("{path:?}: {e}"),
            })?;
            crate::info!("installed {} alert rule(s) from {path}", rules.len());
            crate::alert::install(rules);
        }
        // The sampler backs both the live `/timeseries` endpoint and the
        // alert engine, so either consumer (or an explicit cadence)
        // starts it.
        if options.sample_interval_ms.is_some()
            || options.alerts.is_some()
            || options.obs_listen.is_some()
        {
            crate::tsdb::start_global(
                options
                    .sample_interval_ms
                    .unwrap_or(crate::tsdb::DEFAULT_SAMPLE_INTERVAL_MS),
            );
        }
        if options.events_out.is_some() {
            crate::flight::install_panic_hook();
        }
        if let Some(addr) = &options.obs_listen {
            match crate::serve::start_global(addr) {
                Ok(bound) => {
                    crate::serve::set_live_context(&options.title, options.threads_used);
                    crate::info!("observability server listening on http://{bound}/");
                }
                Err(e) => {
                    return Err(ObsFlagError {
                        flag: "--obs-listen",
                        message: format!("cannot listen on {addr:?}: {e}"),
                    })
                }
            }
        }
        Ok(options)
    }

    /// Whether any observability output was requested (`--log-level`
    /// deliberately does not count: it filters, it does not record).
    /// `--obs-listen` counts: a live scraper needs live data.
    pub fn any(&self) -> bool {
        self.trace_out.is_some()
            || self.profile
            || self.metrics_out.is_some()
            || self.dashboard_out.is_some()
            || self.events_out.is_some()
            || self.obs_listen.is_some()
            || self.alerts.is_some()
            || self.sample_interval_ms.is_some()
    }

    /// Records the worker thread count for export hardware context.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads_used = threads.max(1);
        if self.obs_listen.is_some() {
            crate::serve::set_live_context(&self.title, self.threads_used);
        }
    }

    /// Overrides the dashboard page title.
    pub fn set_title(&mut self, title: impl Into<String>) {
        self.title = title.into();
        if self.obs_listen.is_some() {
            crate::serve::set_live_context(&self.title, self.threads_used);
        }
    }

    /// Attaches the run's health report for dashboard rendering (and
    /// publishes it to the live `/health` endpoint when serving).
    pub fn attach_health(&mut self, health: HealthReport) {
        crate::serve::publish_health(&health);
        self.health = Some(health);
    }

    /// Attaches the run's drift timeline for dashboard rendering (and
    /// publishes it to the live `/health` endpoint when serving).
    pub fn attach_drift(&mut self, drift: DriftTimeline) {
        crate::serve::publish_drift(&drift);
        self.drift = Some(drift);
    }

    /// Attaches a merge's shard coverage for dashboard rendering (and
    /// publishes it to the live dashboard when serving).
    pub fn attach_shard(&mut self, shard: ShardCoverage) {
        crate::serve::publish_shard(&shard);
        self.shard = Some(shard);
    }

    /// Attaches a merge's fleet telemetry view for dashboard rendering
    /// (and publishes it to the live dashboard when serving).
    pub fn attach_fleet(&mut self, fleet: FleetSummary) {
        crate::serve::publish_fleet(&fleet);
        self.fleet = Some(fleet);
    }

    /// Derives and installs the process-wide [`crate::run::RunContext`]
    /// from the run's root seed and configuration description. Call once
    /// after argument parsing; the id is then stamped into every JSONL
    /// event line, export, `FusionReport` and flight dump. Cheap and
    /// unconditional — installing a run identity does not enable
    /// recording.
    pub fn set_run(&self, root_seed: u64, config: &str) {
        crate::run::set(crate::run::RunContext::derive(root_seed, config));
    }

    /// Drains recorded spans/metrics and writes every requested
    /// artifact. Call once, at the end of `main`. A no-op when no flag
    /// was given.
    pub fn finish(&self) -> io::Result<()> {
        if !self.any() {
            return Ok(());
        }
        // Stop the sampler first: its final synchronous tick lets alerts
        // whose condition cleared late still resolve while the server is
        // up. Then stop serving before draining: a scrape racing the
        // drain would see a half-empty registry.
        crate::tsdb::stop_global();
        crate::serve::stop_global();
        crate::disable();
        let events = crate::span::take_events();
        let records = crate::event::take_records();
        let hardware = HardwareContext::detect(self.threads_used);
        let run = crate::run::current();
        if let Some(path) = &self.trace_out {
            atomic_write(
                path,
                crate::export::chrome_trace_json(&events, &hardware, run.as_ref()),
            )?;
            crate::info!("wrote trace ({} events) to {path}", events.len());
        }
        if let Some(path) = &self.events_out {
            let mut body = String::with_capacity(records.len() * 128);
            let run_id = run.as_ref().map(|r| r.run_id.as_str());
            for record in &records {
                body.push_str(&record.to_json(run_id));
                body.push('\n');
            }
            atomic_write(path, body)?;
            crate::info!("wrote event log ({} events) to {path}", records.len());
        }
        if let Some(path) = &self.metrics_out {
            let snapshot = crate::metrics::snapshot();
            atomic_write(
                path,
                crate::export::metrics_json(&snapshot, &hardware, run.as_ref()),
            )?;
            crate::info!("wrote metrics snapshot to {path}");
        }
        if let Some(path) = &self.dashboard_out {
            let snapshot = crate::metrics::snapshot();
            let bench_history = std::fs::read_to_string(BENCH_HISTORY_FILE).ok();
            let flight_dump = crate::flight::last_dump();
            let timeseries = crate::tsdb::snapshot();
            let alerts_json = crate::alert::installed().then(crate::alert::render_json);
            let page = dashboard::render(&DashboardData {
                title: if self.title.is_empty() {
                    "bmf dashboard"
                } else {
                    &self.title
                },
                hardware: &hardware,
                run: run.as_ref(),
                events: &events,
                event_log: &records,
                flight_occupancy: crate::flight::occupancy(),
                flight_dump: flight_dump.as_ref(),
                snapshot: &snapshot,
                health: self.health.as_ref(),
                drift: self.drift.as_ref(),
                shard: self.shard.as_ref(),
                fleet: self.fleet.as_ref(),
                bench_history_json: bench_history.as_deref(),
                timeseries: &timeseries,
                alerts_json: alerts_json.as_deref(),
                refresh_s: None,
            });
            atomic_write(path, page)?;
            crate::info!("wrote dashboard to {path}");
        }
        if self.profile {
            let snapshot = crate::metrics::snapshot();
            print!(
                "{}",
                crate::export::profile_table(&events, &snapshot.histograms, &hardware)
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_lock;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extract_strips_flags_and_keeps_the_rest() {
        let _g = test_lock();
        crate::reset();
        let mut args = argv(&[
            "fig4_opamp",
            "--trace-out",
            "trace.json",
            "--quick",
            "--profile",
            "--metrics-out=metrics.json",
            "--dashboard-out",
            "dash.html",
            "--threads",
            "2",
        ]);
        let options = ObsOptions::extract(&mut args).unwrap();
        assert_eq!(args, argv(&["fig4_opamp", "--quick", "--threads", "2"]));
        assert_eq!(options.trace_out.as_deref(), Some("trace.json"));
        assert_eq!(options.metrics_out.as_deref(), Some("metrics.json"));
        assert_eq!(options.dashboard_out.as_deref(), Some("dash.html"));
        assert_eq!(options.title, "fig4_opamp");
        assert!(options.profile);
        assert!(options.any());
        // Presence of any flag switches recording on.
        assert!(crate::is_enabled());
        crate::reset();
    }

    #[test]
    fn extract_without_flags_is_inert() {
        let _g = test_lock();
        crate::reset();
        let mut args = argv(&["bmf", "estimate", "--threads", "4"]);
        let options = ObsOptions::extract(&mut args).unwrap();
        assert_eq!(args, argv(&["bmf", "estimate", "--threads", "4"]));
        assert!(!options.any());
        assert!(!crate::is_enabled());
        assert!(options.finish().is_ok());
        crate::reset();
    }

    #[test]
    fn extract_rejects_missing_path_value() {
        let _g = test_lock();
        crate::reset();
        for flag in [
            "--trace-out",
            "--metrics-out",
            "--dashboard-out",
            "--events-out",
            "--log-level",
        ] {
            let mut args = argv(&["bmf", flag]);
            let err = ObsOptions::extract(&mut args).unwrap_err();
            assert_eq!(err.flag, flag);
            assert!(!crate::is_enabled());
        }
        crate::reset();
    }

    #[test]
    fn events_out_enables_recording_and_log_level_does_not() {
        let _g = test_lock();
        crate::reset();
        let mut args = argv(&["bmf", "estimate", "--events-out", "events.jsonl"]);
        let options = ObsOptions::extract(&mut args).unwrap();
        assert_eq!(args, argv(&["bmf", "estimate"]));
        assert_eq!(options.events_out.as_deref(), Some("events.jsonl"));
        assert!(options.any());
        assert!(crate::is_enabled());
        crate::reset();

        let mut args = argv(&["bmf", "--log-level=warn", "estimate"]);
        let options = ObsOptions::extract(&mut args).unwrap();
        assert_eq!(args, argv(&["bmf", "estimate"]));
        assert_eq!(options.log_level, Some(Level::Warn));
        assert!(!options.any(), "--log-level alone requests no output");
        assert!(!crate::is_enabled());
        assert_eq!(crate::event::console_level(), Level::Warn);
        crate::reset();
    }

    #[test]
    fn log_level_rejects_unknown_levels() {
        let _g = test_lock();
        crate::reset();
        let mut args = argv(&["bmf", "--log-level", "loud"]);
        let err = ObsOptions::extract(&mut args).unwrap_err();
        assert_eq!(err.flag, "--log-level");
        assert!(err.to_string().contains("loud"), "{err}");
        crate::reset();
    }

    #[test]
    fn finish_writes_jsonl_events_with_run_ids() {
        let _g = test_lock();
        crate::reset();
        let dir = std::env::temp_dir().join(format!("bmf-cli-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("events.jsonl");
        let mut args = argv(&[
            "bmf",
            "--events-out",
            out.to_str().unwrap(),
            "--log-level",
            "error", // keep the status line quiet under the test runner
        ]);
        let options = ObsOptions::extract(&mut args).unwrap();
        options.set_run(2015, "cli finish test");
        crate::event!(Warn, "mc.retry", "attempt": 2u64);
        crate::event!(Info, "ladder.transition", "from": "map", "to": "mle");
        options.finish().unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        let expected_id = crate::run::RunContext::derive(2015, "cli finish test").run_id;
        for line in &lines {
            let v = crate::json::parse(line).expect("JSONL line parses");
            assert_eq!(
                v.get("run_id").and_then(crate::json::Value::as_str),
                Some(expected_id.as_str())
            );
        }
        let _ = std::fs::remove_file(&out);
        crate::reset();
    }

    #[test]
    fn obs_listen_starts_the_live_server_and_finish_stops_it() {
        let _g = test_lock();
        crate::reset();
        let mut args = argv(&[
            "bmf",
            "--obs-listen=127.0.0.1:0",
            "--log-level",
            "error", // keep the status line quiet under the test runner
            "estimate",
        ]);
        let options = ObsOptions::extract(&mut args).unwrap();
        assert_eq!(args, argv(&["bmf", "estimate"]));
        assert_eq!(options.obs_listen.as_deref(), Some("127.0.0.1:0"));
        assert!(options.any(), "--obs-listen requests live output");
        assert!(crate::is_enabled());
        let addr = crate::serve::global_addr().expect("server is running");
        assert_ne!(addr.port(), 0, "port 0 resolves to a real port");
        options.finish().unwrap();
        assert!(
            crate::serve::global_addr().is_none(),
            "finish stops the server"
        );
        crate::reset();
    }

    #[test]
    fn obs_listen_rejects_unbindable_addresses() {
        let _g = test_lock();
        crate::reset();
        let mut args = argv(&["bmf", "--obs-listen", "not-an-address"]);
        let err = ObsOptions::extract(&mut args).unwrap_err();
        assert_eq!(err.flag, "--obs-listen");
        crate::reset();
    }

    #[test]
    fn alerts_flag_installs_rules_and_starts_the_sampler() {
        let _g = test_lock();
        crate::reset();
        let dir = std::env::temp_dir().join(format!("bmf-cli-alerts-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("rules.json");
        std::fs::write(
            &rules,
            r#"{"rules":[{"name":"retry-burst","series":"monte_carlo.retries","op":">=","value":100}]}"#,
        )
        .unwrap();
        let mut args = argv(&[
            "bmf",
            "--alerts",
            rules.to_str().unwrap(),
            "--sample-interval-ms=5",
            "--log-level",
            "error",
        ]);
        let options = ObsOptions::extract(&mut args).unwrap();
        assert_eq!(args, argv(&["bmf"]));
        assert_eq!(options.sample_interval_ms, Some(5));
        assert!(options.any(), "--alerts requests recording");
        assert!(crate::is_enabled());
        assert!(crate::alert::installed());
        // The background sampler populates the store within a few ticks
        // (process stats are always recorded).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while crate::tsdb::snapshot().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(!crate::tsdb::snapshot().is_empty(), "sampler never ticked");
        options.finish().unwrap();
        let _ = std::fs::remove_file(&rules);
        crate::reset();
    }

    #[test]
    fn alerts_flag_rejects_missing_and_malformed_rule_files() {
        let _g = test_lock();
        crate::reset();
        let mut args = argv(&["bmf", "--alerts", "/nonexistent/rules.json"]);
        let err = ObsOptions::extract(&mut args).unwrap_err();
        assert_eq!(err.flag, "--alerts");
        crate::reset();

        let dir = std::env::temp_dir().join(format!("bmf-cli-badrules-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("bad.json");
        std::fs::write(&rules, r#"{"rules":[{"series":"x"}]}"#).unwrap();
        let mut args = argv(&["bmf", "--alerts", rules.to_str().unwrap()]);
        let err = ObsOptions::extract(&mut args).unwrap_err();
        assert_eq!(err.flag, "--alerts");
        assert!(!crate::alert::installed());
        let _ = std::fs::remove_file(&rules);
        crate::reset();
    }

    #[test]
    fn sample_interval_rejects_zero_and_garbage() {
        let _g = test_lock();
        crate::reset();
        for bad in ["0", "-5", "fast"] {
            let mut args = argv(&["bmf", "--sample-interval-ms", bad]);
            let err = ObsOptions::extract(&mut args).unwrap_err();
            assert_eq!(err.flag, "--sample-interval-ms");
        }
        crate::reset();
    }

    #[test]
    fn dashboard_equals_spelling_and_title_override() {
        let _g = test_lock();
        crate::reset();
        let mut args = argv(&["/usr/bin/fig5_adc", "--dashboard-out=out.html"]);
        let mut options = ObsOptions::extract(&mut args).unwrap();
        assert_eq!(options.dashboard_out.as_deref(), Some("out.html"));
        assert_eq!(options.title, "fig5_adc");
        options.set_title("custom title");
        assert_eq!(options.title, "custom title");
        crate::reset();
    }
}
