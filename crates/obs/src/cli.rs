//! Shared handling of the observability CLI flags.
//!
//! Every binary in the workspace accepts the same flags:
//!
//! * `--trace-out <path>` — write a Chrome trace-event JSON file
//!   (loadable in Perfetto / `chrome://tracing`)
//! * `--profile` — print the aggregated per-span profile table to stdout
//! * `--metrics-out <path>` — write a metrics snapshot JSON file
//! * `--dashboard-out <path>` — write a self-contained HTML dashboard
//!   (profile, metrics, estimator health, drift timeline, bench history)
//!
//! [`ObsOptions::extract`] strips the flags out of an argv vector
//! *before* the binary's own parsing runs, so the existing positional /
//! flag parsers in `bmf` and the figure bins never see them. If any
//! flag is present, recording is enabled for the whole run;
//! [`ObsOptions::finish`] then drains the recorded data and writes the
//! requested artifacts. Binaries that compute a [`HealthReport`] or a
//! [`DriftTimeline`] attach them via [`ObsOptions::attach_health`] /
//! [`ObsOptions::attach_drift`] before calling `finish`.

use crate::dashboard::{self, DashboardData};
use crate::export::HardwareContext;
use crate::health::{DriftTimeline, HealthReport};
use std::io;

/// Filename the dashboard looks for (in the working directory) to
/// populate its bench-history section.
pub const BENCH_HISTORY_FILE: &str = "BENCH_history.json";

/// Parsed observability flags for one process run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsOptions {
    /// Destination for the Chrome trace JSON, if requested.
    pub trace_out: Option<String>,
    /// Whether to print the aggregated profile table at exit.
    pub profile: bool,
    /// Destination for the metrics snapshot JSON, if requested.
    pub metrics_out: Option<String>,
    /// Destination for the HTML dashboard, if requested.
    pub dashboard_out: Option<String>,
    /// Worker thread count recorded in exports; bins set this after
    /// their own `--threads` parsing via [`ObsOptions::set_threads`].
    pub threads_used: usize,
    /// Dashboard page title; defaults to the binary's argv\[0\] stem.
    pub title: String,
    /// Health report attached by the binary, rendered in the dashboard.
    pub health: Option<HealthReport>,
    /// Drift timeline attached by the binary, rendered in the dashboard.
    pub drift: Option<DriftTimeline>,
}

/// Error raised when an observability flag is missing its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsFlagError {
    pub flag: &'static str,
}

impl std::fmt::Display for ObsFlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flag {} requires a value (path)", self.flag)
    }
}

impl std::error::Error for ObsFlagError {}

impl ObsOptions {
    /// Removes `--trace-out <path>`, `--profile`, `--metrics-out <path>`
    /// and `--dashboard-out <path>` (also the `--flag=value` spellings)
    /// from `args`, returning the parsed options. If any flag was
    /// present, recording is enabled process-wide before returning, so
    /// spans and counters hit from the very first pipeline call are
    /// captured.
    pub fn extract(args: &mut Vec<String>) -> Result<ObsOptions, ObsFlagError> {
        let mut options = ObsOptions {
            threads_used: 1,
            ..ObsOptions::default()
        };
        if let Some(bin) = args.first() {
            options.title = bin.rsplit(['/', '\\']).next().unwrap_or(bin).to_string();
        }
        let mut kept = Vec::with_capacity(args.len());
        let mut iter = args.drain(..);
        let mut missing: Option<&'static str> = None;
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--profile" => options.profile = true,
                "--trace-out" => match iter.next() {
                    Some(path) => options.trace_out = Some(path),
                    None => {
                        missing = Some("--trace-out");
                        break;
                    }
                },
                "--metrics-out" => match iter.next() {
                    Some(path) => options.metrics_out = Some(path),
                    None => {
                        missing = Some("--metrics-out");
                        break;
                    }
                },
                "--dashboard-out" => match iter.next() {
                    Some(path) => options.dashboard_out = Some(path),
                    None => {
                        missing = Some("--dashboard-out");
                        break;
                    }
                },
                _ => {
                    if let Some(path) = arg.strip_prefix("--trace-out=") {
                        options.trace_out = Some(path.to_string());
                    } else if let Some(path) = arg.strip_prefix("--metrics-out=") {
                        options.metrics_out = Some(path.to_string());
                    } else if let Some(path) = arg.strip_prefix("--dashboard-out=") {
                        options.dashboard_out = Some(path.to_string());
                    } else {
                        kept.push(arg);
                    }
                }
            }
        }
        drop(iter);
        *args = kept;
        if let Some(flag) = missing {
            return Err(ObsFlagError { flag });
        }
        if options.any() {
            crate::enable();
        }
        Ok(options)
    }

    /// Whether any observability output was requested.
    pub fn any(&self) -> bool {
        self.trace_out.is_some()
            || self.profile
            || self.metrics_out.is_some()
            || self.dashboard_out.is_some()
    }

    /// Records the worker thread count for export hardware context.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads_used = threads.max(1);
    }

    /// Overrides the dashboard page title.
    pub fn set_title(&mut self, title: impl Into<String>) {
        self.title = title.into();
    }

    /// Attaches the run's health report for dashboard rendering.
    pub fn attach_health(&mut self, health: HealthReport) {
        self.health = Some(health);
    }

    /// Attaches the run's drift timeline for dashboard rendering.
    pub fn attach_drift(&mut self, drift: DriftTimeline) {
        self.drift = Some(drift);
    }

    /// Drains recorded spans/metrics and writes every requested
    /// artifact. Call once, at the end of `main`. A no-op when no flag
    /// was given.
    pub fn finish(&self) -> io::Result<()> {
        if !self.any() {
            return Ok(());
        }
        crate::disable();
        let events = crate::span::take_events();
        let hardware = HardwareContext::detect(self.threads_used);
        if let Some(path) = &self.trace_out {
            std::fs::write(path, crate::export::chrome_trace_json(&events, &hardware))?;
            eprintln!("wrote trace ({} events) to {path}", events.len());
        }
        if let Some(path) = &self.metrics_out {
            let snapshot = crate::metrics::snapshot();
            std::fs::write(path, crate::export::metrics_json(&snapshot, &hardware))?;
            eprintln!("wrote metrics snapshot to {path}");
        }
        if let Some(path) = &self.dashboard_out {
            let snapshot = crate::metrics::snapshot();
            let bench_history = std::fs::read_to_string(BENCH_HISTORY_FILE).ok();
            let page = dashboard::render(&DashboardData {
                title: if self.title.is_empty() {
                    "bmf dashboard"
                } else {
                    &self.title
                },
                hardware: &hardware,
                events: &events,
                snapshot: &snapshot,
                health: self.health.as_ref(),
                drift: self.drift.as_ref(),
                bench_history_json: bench_history.as_deref(),
            });
            std::fs::write(path, page)?;
            eprintln!("wrote dashboard to {path}");
        }
        if self.profile {
            let snapshot = crate::metrics::snapshot();
            print!(
                "{}",
                crate::export::profile_table(&events, &snapshot.histograms, &hardware)
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_lock;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extract_strips_flags_and_keeps_the_rest() {
        let _g = test_lock();
        crate::reset();
        let mut args = argv(&[
            "fig4_opamp",
            "--trace-out",
            "trace.json",
            "--quick",
            "--profile",
            "--metrics-out=metrics.json",
            "--dashboard-out",
            "dash.html",
            "--threads",
            "2",
        ]);
        let options = ObsOptions::extract(&mut args).unwrap();
        assert_eq!(args, argv(&["fig4_opamp", "--quick", "--threads", "2"]));
        assert_eq!(options.trace_out.as_deref(), Some("trace.json"));
        assert_eq!(options.metrics_out.as_deref(), Some("metrics.json"));
        assert_eq!(options.dashboard_out.as_deref(), Some("dash.html"));
        assert_eq!(options.title, "fig4_opamp");
        assert!(options.profile);
        assert!(options.any());
        // Presence of any flag switches recording on.
        assert!(crate::is_enabled());
        crate::reset();
    }

    #[test]
    fn extract_without_flags_is_inert() {
        let _g = test_lock();
        crate::reset();
        let mut args = argv(&["bmf", "estimate", "--threads", "4"]);
        let options = ObsOptions::extract(&mut args).unwrap();
        assert_eq!(args, argv(&["bmf", "estimate", "--threads", "4"]));
        assert!(!options.any());
        assert!(!crate::is_enabled());
        assert!(options.finish().is_ok());
        crate::reset();
    }

    #[test]
    fn extract_rejects_missing_path_value() {
        let _g = test_lock();
        crate::reset();
        for flag in ["--trace-out", "--metrics-out", "--dashboard-out"] {
            let mut args = argv(&["bmf", flag]);
            let err = ObsOptions::extract(&mut args).unwrap_err();
            assert_eq!(err.flag, flag);
            assert!(!crate::is_enabled());
        }
        crate::reset();
    }

    #[test]
    fn dashboard_equals_spelling_and_title_override() {
        let _g = test_lock();
        crate::reset();
        let mut args = argv(&["/usr/bin/fig5_adc", "--dashboard-out=out.html"]);
        let mut options = ObsOptions::extract(&mut args).unwrap();
        assert_eq!(options.dashboard_out.as_deref(), Some("out.html"));
        assert_eq!(options.title, "fig5_adc");
        options.set_title("custom title");
        assert_eq!(options.title, "custom title");
        crate::reset();
    }
}
