//! Hierarchical span timing with thread-local buffers.
//!
//! A [`Span`] is an RAII guard: creating it pushes a frame onto the
//! current thread's stack, dropping it records a [`SpanEvent`] with the
//! span's wall time, its *self* time (wall time minus the wall time of
//! direct children) and its depth. Events accumulate in a thread-local
//! buffer; the buffer drains into the process-wide sink whenever the
//! thread's *outermost* span closes — which for the scoped workers of
//! `bmf_stats::parallel` happens inside the worker closure, strictly
//! before the scoped-thread join — and again at thread exit as a
//! backstop for leaked guards. Nested spans (the hot path) therefore
//! never take a lock; only the once-per-task outermost close does.
//!
//! The outermost-close flush matters for correctness, not just latency:
//! `std::thread::scope` unblocks once every worker *closure* has
//! returned, but thread-local destructors run later, during OS-thread
//! teardown. Relying on the TLS destructor alone would let a caller
//! drain the sink after the join but before a worker's flush landed.
//!
//! Timestamps are nanoseconds since the process-wide epoch (anchored the
//! first time anything asks for the clock), from a monotonic
//! [`Instant`]; they are never fed back into any computation, so
//! recording cannot perturb a numeric result.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One closed span occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (e.g. `"cv.select"`).
    pub name: &'static str,
    /// Recording thread id (1-based, assigned in thread-creation order).
    pub tid: u64,
    /// Nesting depth at open time (0 = top level on its thread).
    pub depth: u32,
    /// Open time, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Wall time from open to close, nanoseconds.
    pub dur_ns: u64,
    /// Wall time not covered by direct child spans, nanoseconds.
    pub self_ns: u64,
}

/// The process-wide trace epoch: all event timestamps are relative to
/// this instant. Anchored on first use (normally by [`crate::enable`]).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (shared with the event layer so
/// span and event timestamps are directly comparable). Public so
/// downstream crates can window recorded spans (e.g. a shard run
/// summarizing only its own trace slice) against the same clock.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// The calling thread's recording id (allocated on first use; shared
/// between span and event records so a JSONL line can be matched to the
/// trace lane it happened on).
pub(crate) fn current_tid() -> u64 {
    BUFFER.with(|b| b.borrow().tid)
}

/// Closed events that have already left their recording thread (either
/// because it exited or because the sink was explicitly drained).
static SINK: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct Frame {
    name: &'static str,
    start_ns: u64,
    child_ns: u64,
}

/// Per-thread recording state. Events merge into [`SINK`] when the
/// thread's outermost span closes; the `Drop` impl (thread exit) is a
/// backstop for events left behind by leaked or unbalanced guards.
struct ThreadBuffer {
    tid: u64,
    stack: Vec<Frame>,
    events: Vec<SpanEvent>,
}

impl ThreadBuffer {
    fn new() -> Self {
        ThreadBuffer {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            events: Vec::new(),
        }
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        if self.events.is_empty() {
            return;
        }
        if let Ok(mut sink) = SINK.lock() {
            sink.append(&mut self.events);
        }
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer::new());
}

/// RAII span guard returned by [`span`]. `armed == false` is the no-op
/// fast path (recording disabled at open time).
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    armed: bool,
}

/// Opens a span named `name` on the current thread.
///
/// When recording is disabled this is one relaxed atomic load and
/// returns an inert guard — no clock query, no thread-local access.
/// When enabled, the matching [`SpanEvent`] is recorded at guard drop
/// even if recording is switched off in between (stacks stay balanced).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::is_enabled() {
        return Span { armed: false };
    }
    let start_ns = now_ns();
    BUFFER.with(|b| {
        b.borrow_mut().stack.push(Frame {
            name,
            start_ns,
            child_ns: 0,
        });
    });
    Span { armed: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end_ns = now_ns();
        let flushed = BUFFER.with(|b| {
            let mut buf = b.borrow_mut();
            let Some(frame) = buf.stack.pop() else {
                return Vec::new(); // unbalanced close; drop silently rather than panic
            };
            let dur_ns = end_ns.saturating_sub(frame.start_ns);
            let self_ns = dur_ns.saturating_sub(frame.child_ns);
            let depth = buf.stack.len() as u32;
            if let Some(parent) = buf.stack.last_mut() {
                parent.child_ns += dur_ns;
            }
            let tid = buf.tid;
            buf.events.push(SpanEvent {
                name: frame.name,
                tid,
                depth,
                start_ns: frame.start_ns,
                dur_ns,
                self_ns,
            });
            if buf.stack.is_empty() {
                // Outermost close: hand the batch to the sink so it is
                // visible to other threads before any join completes.
                std::mem::take(&mut buf.events)
            } else {
                Vec::new()
            }
        });
        if !flushed.is_empty() {
            if let Ok(mut sink) = SINK.lock() {
                sink.extend(flushed);
            }
            // The outermost close is also the event layer's join-safe
            // flush point: a scoped worker's structured events must be
            // in their sink before the scope join unblocks, for the
            // same reason the span batch must (TLS destructors run too
            // late).
            crate::event::flush_thread();
        }
    }
}

/// Drains every recorded event: the global sink plus the calling
/// thread's own buffer. Events on still-running *other* threads stay
/// in their thread-local buffers until their outermost span closes (or
/// the thread exits).
///
/// Events are returned sorted by `(start_ns, tid)` so exports are
/// stable regardless of which thread flushed first.
pub fn take_events() -> Vec<SpanEvent> {
    let mut events: Vec<SpanEvent> = SINK
        .lock()
        .map(|mut sink| std::mem::take(&mut *sink))
        .unwrap_or_default();
    BUFFER.with(|b| {
        events.append(&mut b.borrow_mut().events);
    });
    events.sort_by_key(|e| (e.start_ns, e.tid, std::cmp::Reverse(e.dur_ns)));
    events
}

/// Copies the recorded events without draining them, sorted like
/// [`take_events`]. For live scrapers (the on-demand dashboard): the
/// exit-time exporters still see every event afterwards. Events on
/// still-running *other* threads stay invisible until their outermost
/// span closes, exactly as for [`take_events`].
pub fn peek_events() -> Vec<SpanEvent> {
    let mut events: Vec<SpanEvent> = SINK.lock().map(|sink| sink.clone()).unwrap_or_default();
    BUFFER.with(|b| events.extend(b.borrow().events.iter().cloned()));
    events.sort_by_key(|e| (e.start_ns, e.tid, std::cmp::Reverse(e.dur_ns)));
    events
}

/// Discards all recorded events (sink + current thread buffer).
pub(crate) fn clear() {
    if let Ok(mut sink) = SINK.lock() {
        sink.clear();
    }
    BUFFER.with(|b| b.borrow_mut().events.clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_lock;

    #[test]
    fn disabled_span_records_nothing() {
        let _g = test_lock();
        crate::reset();
        {
            let _s = span("quiet");
        }
        assert!(take_events().is_empty());
        crate::reset();
    }

    #[test]
    fn nested_spans_compute_depth_and_self_time() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        crate::disable();
        let events = take_events();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
        assert!(outer.dur_ns >= inner.dur_ns);
        // Outer self time excludes the inner child entirely.
        assert!(outer.self_ns <= outer.dur_ns - inner.dur_ns);
        assert_eq!(inner.self_ns, inner.dur_ns);
        crate::reset();
    }

    #[test]
    fn worker_thread_buffers_merge_at_join() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _s = span("worker");
                });
            }
        });
        // Each worker flushed to the sink when its outermost span
        // closed, inside the worker closure — so the scope join
        // guarantees all three events are visible here. (The TLS
        // destructor alone would race: scope unblocks before OS-thread
        // teardown runs destructors.)
        crate::disable();
        let events = take_events();
        assert_eq!(events.iter().filter(|e| e.name == "worker").count(), 3);
        // Distinct worker threads got distinct tids.
        let tids: std::collections::HashSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 3);
        crate::reset();
    }

    #[test]
    fn peek_events_does_not_drain() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        {
            let _s = span("peeked");
        }
        crate::disable();
        let peeked = peek_events();
        assert_eq!(peeked.len(), 1);
        assert_eq!(peek_events(), peeked, "peek must not consume events");
        assert_eq!(take_events(), peeked, "take still sees the events");
        assert!(take_events().is_empty());
        crate::reset();
    }

    #[test]
    fn disable_mid_span_still_closes_the_frame() {
        let _g = test_lock();
        crate::reset();
        crate::enable();
        let s = span("straddler");
        crate::disable();
        drop(s);
        let events = take_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "straddler");
        crate::reset();
    }
}
