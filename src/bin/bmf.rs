//! `bmf` — command-line front end for the multivariate BMF estimator.
//!
//! ```text
//! bmf estimate --early early.csv --late late.csv [--out moments.csv]
//!     Fuse early-stage samples with few late-stage samples: shift/scale,
//!     cross-validate (kappa0, nu0), MAP-estimate, print/export moments.
//!     Both CSVs: header of metric names + one sample per row. The first
//!     row of each file is treated as that stage's nominal run.
//!
//! bmf generate --circuit opamp|adc --stage schematic|postlayout \
//!              --samples N --seed S [--out samples.csv]
//!     Run the built-in circuit Monte Carlo and emit a sample CSV.
//!
//! bmf shard --circuit opamp|adc --n-early N --n-late M --index i/K \
//!           --out packet.json [--seed S]
//!     Run one shard of a two-stage study and write its sufficient-
//!     statistic packet (checksummed, versioned, atomically renamed).
//!
//! bmf merge --packet p0.json --packet p1.json ... [--out moments.csv]
//!     Reduce shard packets into the bit-exact study result; validates
//!     version/checksum/config compatibility and shard coverage.
//!
//! bmf yield --moments moments.csv --spec "gain_db>=80" --spec "power_w<=1.2e-4" \
//!           [--draws N]
//!     Estimate parametric yield of the fitted Gaussian against spec
//!     bounds.
//!
//! bmf diagnose --samples samples.csv
//!     Data-quality report: moment summary, Mardia multivariate normality
//!     test (the BMF modelling assumption), and PCA variance structure.
//! ```
//!
//! # Exit codes
//!
//! | code | meaning                                                     |
//! |------|-------------------------------------------------------------|
//! | 0    | success                                                     |
//! | 1    | runtime error (I/O, simulation, estimation, corrupt packet) |
//! | 2    | configuration/usage error (bad flags or values)             |
//! | 3    | strict-mode refusal (`--strict` anomaly, shard quorum)      |
//! | 4    | degraded success (merge completed below full coverage)      |

use bmf_ams::circuits::adc::AdcTestbench;
use bmf_ams::circuits::fault::{FaultConfig, FaultInjector};
use bmf_ams::circuits::monte_carlo::{
    run_monte_carlo_seeded_with_policy, RetryPolicy, Stage, Testbench,
};
use bmf_ams::circuits::opamp::OpAmpTestbench;
use bmf_ams::circuits::shard::{
    fleet_trace_json, merge_packet_texts, run_shard, MergeOutcome, MergePolicy, StageMoments,
    StudyConfig,
};
use bmf_ams::circuits::CircuitError;
use bmf_ams::core::io::{
    read_moments_csv, read_samples_csv, write_moments_csv, write_samples_csv, LabelledSamples,
};
use bmf_ams::core::parallel::resolve_threads;
use bmf_ams::core::prelude::*;
use bmf_ams::core::yield_estimation::estimate_yield;
use bmf_ams::linalg::{Matrix, Vector};
use bmf_ams::obs::atomic_write;
use bmf_ams::stats::descriptive;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;
use std::fs::File;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut obs = match bmf_ams::obs::ObsOptions::extract(&mut args) {
        Ok(obs) => obs,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run 'bmf --help' for usage");
            return CliError::Config(e.to_string()).exit_code();
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("estimate") => cmd_estimate(&args[1..], &mut obs),
        Some("generate") => cmd_generate(&args[1..], &mut obs),
        Some("shard") => cmd_shard(&args[1..], &mut obs),
        Some("merge") => cmd_merge(&args[1..], &mut obs),
        Some("yield") => cmd_yield(&args[1..]),
        Some("diagnose") => cmd_diagnose(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(CliOk::Clean)
        }
        Some(other) => Err(CliError::Config(format!("unknown subcommand '{other}'"))),
    };
    // Telemetry is flushed even when the subcommand failed — a strict
    // failure is exactly when the event log matters; the subcommand's
    // error still wins the exit code.
    let finish = obs.finish();
    match result {
        Ok(ok) => match finish {
            Ok(()) => ok.exit_code(),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        },
        Err(e) => {
            eprintln!("error: {}", e.message());
            if matches!(e, CliError::Config(_)) {
                eprintln!("run 'bmf --help' for usage");
            }
            e.exit_code()
        }
    }
}

// ---------------------------------------------------------------------------
// Exit-code taxonomy
// ---------------------------------------------------------------------------

/// Successful subcommand outcomes; the variant picks the exit code.
enum CliOk {
    /// Everything the user asked for happened — exit 0.
    Clean,
    /// The result was produced but from degraded inputs (a quorate merge
    /// below full shard coverage) — exit 4, so scripted callers can tell
    /// "answer with caveats" from "clean answer" without parsing output.
    Degraded,
}

impl CliOk {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliOk::Clean => ExitCode::SUCCESS,
            CliOk::Degraded => ExitCode::from(4),
        }
    }
}

/// Typed subcommand failures; the variant picks the exit code.
enum CliError {
    /// I/O, simulation or estimation failure at runtime — exit 1.
    Runtime(String),
    /// Bad flags or configuration values — exit 2.
    Config(String),
    /// A strict-mode refusal: `--strict` turned an anomaly into an
    /// error, or a merge fell below its shard quorum — exit 3.
    Strict(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Runtime(_) => ExitCode::from(1),
            CliError::Config(_) => ExitCode::from(2),
            CliError::Strict(_) => ExitCode::from(3),
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Runtime(m) | CliError::Config(m) | CliError::Strict(m) => m,
        }
    }
}

/// Maps an error into [`CliError::Config`] (bad flags/values — exit 2).
fn cfg(e: impl std::fmt::Display) -> CliError {
    CliError::Config(e.to_string())
}

/// Maps an error into [`CliError::Runtime`] (exit 1).
fn rt(e: impl std::fmt::Display) -> CliError {
    CliError::Runtime(e.to_string())
}

type CliResult = Result<CliOk, CliError>;

fn print_usage() {
    println!("bmf — multivariate Bayesian model fusion for AMS circuits (DAC 2015)");
    println!();
    println!("subcommands:");
    println!("  estimate --early <csv> --late <csv> [--out <csv>] [--seed <u64>] [--threads <n>]");
    println!("           [--strict | --degrade] [--report <json-path|->] [--cv-naive]");
    println!("  generate --circuit opamp|adc --stage schematic|postlayout");
    println!("           --samples <n> [--seed <u64>] [--threads <n>] [--out <csv>]");
    println!("           [--fault-rate <r>] [--retry-attempts <n>]");
    println!("  shard    --circuit opamp|adc --n-early <n> --n-late <n> --index <i/K>");
    println!("           --out <packet.json> [--seed <u64>] [--threads <n>]");
    println!("           [--fault-rate <r>] [--retry-attempts <n>]");
    println!("  merge    --packet <json> [--packet <json> ...] [--out <csv>]");
    println!("           [--min-shards <q>] [--strict | --degrade] [--report <json-path|->]");
    println!("           [--kappa0 <x> --nu0 <y>] [--threads <n>] [--fleet-trace-out <json>]");
    println!("  yield    --moments <csv> --spec \"<metric><=|>=<value>\" ... [--draws <n>]");
    println!("  diagnose --samples <csv>");
    println!();
    println!("observability (any subcommand): --trace-out <json> writes a Chrome");
    println!("trace-event file (load in Perfetto / chrome://tracing), --profile prints");
    println!("an aggregated per-span profile, --metrics-out <json> writes a counter/");
    println!("histogram snapshot, --dashboard-out <html> writes a self-contained");
    println!("HTML dashboard (profile, metrics, estimator health, shard coverage,");
    println!("drift timeline, and bench history when BENCH_history.json is present),");
    println!("--events-out <jsonl> writes the structured event log (one JSON object");
    println!("per line: retries, repairs, ladder transitions, guard flags, shard");
    println!("merges/rejects), each stamped with the run id that also appears in the");
    println!("FusionReport and flight-recorder dumps. --obs-listen <addr> serves the");
    println!("run live over HTTP while it executes: GET /metrics (Prometheus text),");
    println!("/health (200/503 keyed on severity), /events?level=&n= (JSONL tail),");
    println!("/progress (heartbeat fractions + ETA), /flight (flight-recorder ring),");
    println!("/timeseries?metric=&since=&step= (sampled counter/gauge history),");
    println!("/alerts (rule states), and / (the live dashboard, with sparkline");
    println!("timelines); port 0 picks a free port, printed at start and written to");
    println!("$BMF_OBS_ADDR_FILE when set. --sample-interval-ms <n> sets the");
    println!("time-series sampler cadence (default 250; the sampler also starts");
    println!("whenever --obs-listen or --alerts is given). --alerts <rules.json>");
    println!("installs declarative SLO rules (threshold / rate-of-change / health /");
    println!("drift-severity, with hysteresis and for-duration debouncing) evaluated");
    println!("on every sampler tick; a firing rule emits alert.fired / alert.resolved");
    println!("events and a critical one flips /health to 503 and arms a flight-");
    println!("recorder dump. --log-level error|warn|info|debug");
    println!("(or the BMF_LOG env var) sets console verbosity. Recording never alters");
    println!("numeric results. All file outputs are written atomically (temp + rename):");
    println!("a crash mid-write never leaves a truncated artifact behind.");
    println!();
    println!("a merge of packets whose shards ran with recording on (any observability");
    println!("flag) folds their telemetry into a fleet view: per-shard wall clock,");
    println!("sims, retries and straggler flags (slowest/median >= 1.5x), written to");
    println!("fleet-<run_id>.json and rendered in the dashboard's Fleet section.");
    println!("merge --fleet-trace-out <json> additionally stitches the packets' span");
    println!("summaries into one Perfetto-loadable trace, one clock-aligned track per");
    println!("shard.");
    println!();
    println!("--threads defaults to the machine's available parallelism; results are");
    println!("bit-identical for every thread count (per-task seed derivation).");
    println!();
    println!("sharding: `bmf shard --index i/K` runs slice i of a K-way partition of");
    println!("the study and writes a checksummed sufficient-statistic packet;");
    println!("`bmf merge` reduces any complete packet set to the bit-exact result of");
    println!("the single-process run. --min-shards <q> allows a degraded merge from");
    println!("any q packets (exit code 4, inflation recorded in the FusionReport);");
    println!("without it a missing shard is a quorum failure (exit code 3). A crashed");
    println!("shard is re-run alone and merged — identical bits either way.");
    println!();
    println!("robustness: --degrade routes estimation through the self-healing pipeline");
    println!("(data-quality guard, SPD prior repair, MAP -> MLE -> early-only fallback");
    println!("ladder); --strict runs the same pipeline but turns any anomaly into an");
    println!("error. --report writes the FusionReport as JSON ('-' prints a summary).");
    println!("generate --fault-rate r injects failed sims at rate r and gross outliers");
    println!("at r/5 (deterministic, seed-derived) to exercise the robustness path.");
    println!("--cv-naive scores the hyper-parameter grid with the naive per-candidate");
    println!("refit instead of the fast rank-structured path (equivalence oracle; slow).");
    println!();
    println!("exit codes: 0 success; 1 runtime error (I/O, simulation, estimation,");
    println!("corrupt packet); 2 configuration/usage error; 3 strict-mode refusal");
    println!("(--strict anomaly or shard quorum failure, with a flight-recorder dump");
    println!("when --events-out is armed); 4 degraded success (merge below full");
    println!("coverage under --min-shards).");
}

/// Flags that take no value (presence is the whole message).
const BOOL_FLAGS: &[&str] = &["strict", "degrade", "cv-naive"];

/// Parses `--key value` pairs; repeated keys accumulate. Flags listed in
/// [`BOOL_FLAGS`] are valueless switches.
fn parse_flags(args: &[String]) -> Result<HashMap<String, Vec<String>>, String> {
    let mut map: HashMap<String, Vec<String>> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with("--") {
            return Err(format!("expected a --flag, got '{key}'"));
        }
        let name = key[2..].to_string();
        if BOOL_FLAGS.contains(&name.as_str()) {
            map.entry(name).or_default().push("true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {key} needs a value"))?;
        map.entry(name).or_default().push(value.clone());
        i += 2;
    }
    Ok(map)
}

fn single<'a>(flags: &'a HashMap<String, Vec<String>>, key: &str) -> Result<&'a str, CliError> {
    match flags.get(key).map(Vec::as_slice) {
        Some([v]) => Ok(v),
        Some(_) => Err(CliError::Config(format!("--{key} given more than once"))),
        None => Err(CliError::Config(format!("missing required flag --{key}"))),
    }
}

fn optional<'a>(flags: &'a HashMap<String, Vec<String>>, key: &str) -> Option<&'a str> {
    flags.get(key).and_then(|v| v.first()).map(String::as_str)
}

/// Parses an optional flag's value, mapping a parse failure to a
/// config error naming the flag.
fn parse_optional<T: std::str::FromStr>(
    flags: &HashMap<String, Vec<String>>,
    key: &str,
    default: &str,
) -> Result<T, CliError> {
    let raw = optional(flags, key).unwrap_or(default);
    raw.parse()
        .map_err(|_| CliError::Config(format!("--{key} has unusable value '{raw}'")))
}

/// Parses a required flag's value, mapping a parse failure to a config
/// error naming the flag.
fn parse_required<T: std::str::FromStr>(
    flags: &HashMap<String, Vec<String>>,
    key: &str,
) -> Result<T, CliError> {
    let raw = single(flags, key)?;
    raw.parse()
        .map_err(|_| CliError::Config(format!("--{key} has unusable value '{raw}'")))
}

/// Parses `--threads`, defaulting to the machine's available parallelism.
fn threads_flag(flags: &HashMap<String, Vec<String>>) -> Result<usize, CliError> {
    match optional(flags, "threads") {
        Some(raw) => {
            let t: usize = raw.parse().map_err(|_| {
                CliError::Config(format!("--threads must be a positive integer, got '{raw}'"))
            })?;
            if t == 0 {
                return Err(CliError::Config("--threads must be at least 1".to_string()));
            }
            Ok(t)
        }
        None => Ok(resolve_threads(None)),
    }
}

/// Resolves the `--strict`/`--degrade` pair (mutually exclusive).
fn failure_mode(flags: &HashMap<String, Vec<String>>) -> Result<(bool, bool), CliError> {
    let strict = flags.contains_key("strict");
    let degrade = flags.contains_key("degrade");
    if strict && degrade {
        return Err(CliError::Config(
            "--strict and --degrade are mutually exclusive".to_string(),
        ));
    }
    Ok((strict, degrade))
}

/// Serializes moments to CSV and writes them atomically (or to stdout).
fn emit_moments(
    out: Option<&str>,
    names: &[String],
    moments: &MomentEstimate,
) -> Result<(), CliError> {
    match out {
        Some(path) => {
            let mut buf = Vec::new();
            write_moments_csv(&mut buf, names, moments).map_err(rt)?;
            atomic_write(path, buf).map_err(rt)?;
            bmf_ams::obs::info!("moments written to {path}");
        }
        None => {
            write_moments_csv(&mut std::io::stdout().lock(), names, moments).map_err(rt)?;
        }
    }
    Ok(())
}

/// Handles `--report <path|->`: a path gets the FusionReport JSON
/// (atomically), `-` prints the human summary to stderr.
fn emit_report(report_path: Option<&str>, report: &FusionReport) -> Result<(), CliError> {
    match report_path {
        Some("-") => eprint!("{}", report.summary()),
        Some(path) => {
            atomic_write(path, report.to_json()).map_err(rt)?;
            bmf_ams::obs::info!("fusion report written to {path}");
        }
        None => {}
    }
    Ok(())
}

fn cmd_estimate(args: &[String], obs: &mut bmf_ams::obs::ObsOptions) -> CliResult {
    let flags = parse_flags(args).map_err(cfg)?;
    let early_path = single(&flags, "early")?;
    let late_path = single(&flags, "late")?;
    let seed: u64 = parse_optional(&flags, "seed", "2015")?;

    let early = read_samples_csv(&mut File::open(early_path).map_err(rt)?).map_err(rt)?;
    let late = read_samples_csv(&mut File::open(late_path).map_err(rt)?).map_err(rt)?;
    if early.names != late.names {
        return Err(rt(format!(
            "metric mismatch: early has {:?}, late has {:?}",
            early.names, late.names
        )));
    }
    if early.samples.nrows() < 3 || late.samples.nrows() < 3 {
        return Err(rt(
            "each stage needs the nominal row plus at least 2 samples",
        ));
    }

    // Row 0 of each file is the nominal run (the shift anchor).
    let early_nominal = early.samples.row_vec(0);
    let late_nominal = late.samples.row_vec(0);
    let early_mc = early.samples.submatrix(
        &(1..early.samples.nrows()).collect::<Vec<_>>(),
        &(0..early.samples.ncols()).collect::<Vec<_>>(),
    );
    let late_mc = late.samples.submatrix(
        &(1..late.samples.nrows()).collect::<Vec<_>>(),
        &(0..late.samples.ncols()).collect::<Vec<_>>(),
    );

    let early_sd = descriptive::column_stddevs(&early_mc).map_err(rt)?;
    let early_t = ShiftScale::from_nominal_and_early_sd(&early_nominal, &early_sd).map_err(rt)?;
    let late_t = ShiftScale::from_nominal_and_early_sd(&late_nominal, &early_sd).map_err(rt)?;
    let early_norm = early_t.apply_samples(&early_mc).map_err(rt)?;
    let late_norm = late_t.apply_samples(&late_mc).map_err(rt)?;

    let early_moments = MomentEstimate {
        mean: descriptive::mean_vector(&early_norm).map_err(rt)?,
        cov: descriptive::covariance_mle(&early_norm).map_err(rt)?,
    };

    let threads = threads_flag(&flags)?;
    obs.set_threads(threads);
    let cv_seed = rand::rngs::StdRng::seed_from_u64(seed).next_u64();

    let (strict, degrade) = failure_mode(&flags)?;
    let cv_naive = flags.contains_key("cv-naive");
    // Thread count deliberately left out of the run config: the same
    // estimate at any parallelism is the same run (bit-identical output).
    obs.set_run(
        seed,
        &format!(
            "estimate early={early_path} late={late_path} strict={strict} cv_naive={cv_naive}"
        ),
    );
    let report_path = optional(&flags, "report");

    let physical = if strict || degrade || report_path.is_some() {
        // Robust path: guard -> prior repair -> MAP→MLE→early ladder,
        // with the audit trail in a FusionReport.
        let mode = if strict {
            FailureMode::Strict
        } else {
            FailureMode::Degrade
        };
        let pipeline = RobustPipeline::new()
            .with_mode(mode)
            .with_cv(CrossValidation::default().with_naive_scoring(cv_naive))
            .with_seed(cv_seed)
            .with_threads(threads);
        let (est, report) = pipeline.estimate(&early_moments, &late_norm).map_err(|e| {
            if strict {
                CliError::Strict(e.to_string())
            } else {
                rt(e)
            }
        })?;
        bmf_ams::obs::info!("robust pipeline: fusion level = {}", report.fallback);
        if let Some(reason) = &report.fallback_reason {
            bmf_ams::obs::warn!("robust pipeline: {reason}");
        }
        if let Some((kappa0, nu0)) = report.selection {
            bmf_ams::obs::info!(
                "cross-validation selected kappa0 = {kappa0:.3}, nu0 = {nu0:.2} ({threads} thread(s))"
            );
        }
        emit_report(report_path, &report)?;
        if let Some(health) = report.health.clone() {
            obs.attach_health(health);
        }
        late_t.invert_moments(&est).map_err(rt)?
    } else {
        let sel = CrossValidation::default()
            .with_naive_scoring(cv_naive)
            .select_seeded(&early_moments, &late_norm, cv_seed, threads)
            .map_err(rt)?;
        bmf_ams::obs::info!(
            "cross-validation selected kappa0 = {:.3}, nu0 = {:.2} (score {:.4}, {threads} thread(s))",
            sel.kappa0, sel.nu0, sel.score
        );

        let prior = NormalWishartPrior::from_early_moments(&early_moments, sel.kappa0, sel.nu0)
            .map_err(rt)?;
        let est = BmfEstimator::new(prior)
            .map_err(rt)?
            .estimate(&late_norm)
            .map_err(rt)?;
        late_t.invert_moments(&est.map).map_err(rt)?
    };

    if obs.dashboard_out.is_some() {
        // Read-only drift scan of the late-stage stream against the
        // early-stage model; an unfilled window simply yields no entries.
        match DriftMonitor::new(&early_moments, DriftConfig::default())
            .and_then(|mut m| m.push_batch(&late_norm).map(|()| m))
        {
            Ok(monitor) => obs.attach_drift(monitor.into_timeline()),
            Err(e) => bmf_ams::obs::warn!("drift monitor unavailable: {e}"),
        }
    }

    emit_moments(optional(&flags, "out"), &early.names, &physical)?;
    Ok(CliOk::Clean)
}

fn cmd_generate(args: &[String], obs: &mut bmf_ams::obs::ObsOptions) -> CliResult {
    let flags = parse_flags(args).map_err(cfg)?;
    let circuit = single(&flags, "circuit")?;
    let stage = match single(&flags, "stage")? {
        "schematic" => Stage::Schematic,
        "postlayout" | "post-layout" => Stage::PostLayout,
        other => return Err(CliError::Config(format!("unknown stage '{other}'"))),
    };
    let n: usize = parse_required(&flags, "samples")?;
    let seed: u64 = parse_optional(&flags, "seed", "1")?;
    let fault_rate: f64 = parse_optional(&flags, "fault-rate", "0")?;
    let retry_attempts: usize = parse_optional(&flags, "retry-attempts", "100")?;

    let tb: Box<dyn Testbench> = match circuit {
        "opamp" => Box::new(OpAmpTestbench::default_45nm()),
        "adc" => Box::new(AdcTestbench::default_180nm()),
        other => {
            return Err(CliError::Config(format!(
                "unknown circuit '{other}' (use opamp|adc)"
            )))
        }
    };
    // Fault injection keeps the emitted CSV finite: failed sims are
    // retried away and outliers survive as (finite) corrupted rows, but
    // NaN corruption is off — the CSV reader rejects non-finite tokens by
    // design, so a generated file must always be readable back.
    let tb: Box<dyn Testbench> = if fault_rate > 0.0 {
        Box::new(
            FaultInjector::new(
                tb,
                FaultConfig {
                    sim_failure_rate: fault_rate,
                    outlier_rate: fault_rate / 5.0,
                    ..FaultConfig::default()
                },
            )
            .map_err(cfg)?,
        )
    } else {
        tb
    };

    let threads = threads_flag(&flags)?;
    obs.set_threads(threads);
    obs.set_run(
        seed,
        &format!("generate circuit={circuit} stage={stage:?} samples={n} fault_rate={fault_rate}"),
    );
    let policy = RetryPolicy {
        max_attempts: retry_attempts,
    };
    let data = run_monte_carlo_seeded_with_policy(tb.as_ref(), stage, n, seed, threads, &policy)
        .map_err(rt)?;
    if fault_rate > 0.0 {
        bmf_ams::obs::info!(
            "generated {n} samples on {threads} thread(s) (fault rate {fault_rate}, retry budget {retry_attempts})"
        );
    } else {
        bmf_ams::obs::info!("generated {n} samples on {threads} thread(s)");
    }

    // First row is the nominal run, as `bmf estimate` expects.
    let d = data.samples.ncols();
    let mut all = Matrix::zeros(n + 1, d);
    all.row_mut(0).copy_from_slice(data.nominal.as_slice());
    for i in 0..n {
        let row: Vec<f64> = data.samples.row(i).to_vec();
        all.row_mut(i + 1).copy_from_slice(&row);
    }
    let labelled = LabelledSamples {
        names: tb.metric_names().iter().map(|s| s.to_string()).collect(),
        samples: all,
    };
    match optional(&flags, "out") {
        Some(path) => {
            let mut buf = Vec::new();
            write_samples_csv(&mut buf, &labelled).map_err(rt)?;
            atomic_write(path, buf).map_err(rt)?;
            bmf_ams::obs::info!("{} samples (+ nominal row) written to {path}", n);
        }
        None => write_samples_csv(&mut std::io::stdout().lock(), &labelled).map_err(rt)?,
    }
    Ok(CliOk::Clean)
}

// ---------------------------------------------------------------------------
// Sharded studies
// ---------------------------------------------------------------------------

/// Parses the `shard` flag set into a [`StudyConfig`] plus the shard
/// index to run.
fn study_config_from_flags(
    flags: &HashMap<String, Vec<String>>,
) -> Result<(StudyConfig, usize), CliError> {
    // `--index i/K` carries both the slice and the partition size, the
    // spelling the usage line advertises; `--index i --shards K` is the
    // two-flag equivalent.
    let index_raw = single(flags, "index")?;
    let (index, shard_count): (usize, usize) = match index_raw.split_once('/') {
        Some((i, k)) => {
            let parse = |s: &str, what: &str| {
                s.trim().parse::<usize>().map_err(|_| {
                    CliError::Config(format!("--index {index_raw}: {what} is not an integer"))
                })
            };
            (parse(i, "shard index")?, parse(k, "shard count")?)
        }
        None => {
            let index = index_raw.parse::<usize>().map_err(|_| {
                CliError::Config(format!(
                    "--index must be <i/K> or an integer, got '{index_raw}'"
                ))
            })?;
            (index, parse_required(flags, "shards")?)
        }
    };
    let config = StudyConfig {
        circuit: single(flags, "circuit")?.to_string(),
        n_early: parse_required(flags, "n-early")?,
        n_late: parse_required(flags, "n-late")?,
        shard_count,
        seed: parse_optional(flags, "seed", "2015")?,
        max_attempts: parse_optional(flags, "retry-attempts", "100")?,
        fault_rate: parse_optional(flags, "fault-rate", "0")?,
    };
    config.validate().map_err(cfg)?;
    if index >= shard_count {
        return Err(CliError::Config(format!(
            "--index {index} out of range for {shard_count} shard(s)"
        )));
    }
    Ok((config, index))
}

fn cmd_shard(args: &[String], obs: &mut bmf_ams::obs::ObsOptions) -> CliResult {
    let flags = parse_flags(args).map_err(cfg)?;
    let (config, index) = study_config_from_flags(&flags)?;
    let out = single(&flags, "out")?;
    let threads = threads_flag(&flags)?;
    obs.set_threads(threads);
    obs.set_run(config.seed, &config.canonical());

    let packet = run_shard(&config, index, threads).map_err(rt)?;

    // Chaos hook: BMF_SHARD_KILL=<index> simulates a crash in the window
    // after the shard's simulation work but before the packet rename —
    // the slot where an interrupted run must leave either nothing or a
    // stale temp file, never a truncated packet. The kill-and-resume
    // suite re-runs the shard without the variable and asserts the merge
    // is bit-identical to an uninterrupted study.
    if std::env::var("BMF_SHARD_KILL")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        == Some(index)
    {
        eprintln!("bmf shard: BMF_SHARD_KILL={index} — simulating crash before packet write");
        std::process::abort();
    }

    atomic_write(out, packet.to_json()).map_err(rt)?;
    bmf_ams::obs::counters::SHARD_PACKETS_WRITTEN.incr();
    bmf_ams::obs::event!(Info, "shard.packet_written",
        "index": index,
        "shard_count": config.shard_count,
        "path": out,
        "retries": packet.retries);
    bmf_ams::obs::info!(
        "shard {index}/{} written to {out} (n_early = {}, n_late = {}, {} retries)",
        config.shard_count,
        packet.early.n,
        packet.late.n,
        packet.retries
    );
    Ok(CliOk::Clean)
}

/// Per-dimension σ from a stage's moments (unbiased, matching the
/// `column_stddevs` the sample path scales by).
fn stage_sd(moments: &StageMoments) -> Result<Vector, CliError> {
    if moments.n < 2 {
        return Err(rt(format!(
            "need at least 2 merged samples to derive the early-stage scale, got {}",
            moments.n
        )));
    }
    let nm1 = (moments.n - 1) as f64;
    Ok(Vector::from_fn(moments.mean.len(), |j| {
        (moments.scatter[(j, j)] / nm1).max(0.0).sqrt()
    }))
}

/// Normalizes the merged study into the estimator's shift/scale space:
/// early moments plus late sufficient statistics, both centred on their
/// stage nominal and scaled by the early-stage σ (§4.1 — the sample
/// path's algebra applied to the reduced statistics).
fn normalized_study(
    outcome: &MergeOutcome,
) -> Result<(MomentEstimate, SufficientStats, ShiftScale), CliError> {
    let early_m = outcome.early.moments().map_err(rt)?;
    let late_m = outcome.late.moments().map_err(rt)?;
    let early_sd = stage_sd(&early_m)?;
    let early_t =
        ShiftScale::from_nominal_and_early_sd(&outcome.early.nominal, &early_sd).map_err(rt)?;
    let late_t =
        ShiftScale::from_nominal_and_early_sd(&outcome.late.nominal, &early_sd).map_err(rt)?;

    let early_norm = early_t
        .apply_moments(&MomentEstimate {
            cov: &early_m.scatter / early_m.n as f64,
            mean: early_m.mean,
        })
        .map_err(rt)?;

    let d = late_m.mean.len();
    let late_stats = SufficientStats {
        n: late_m.n,
        dropped: outcome.late.dropped,
        mean: late_t.apply_vector(&late_m.mean).map_err(rt)?,
        // Scatter is a sum of outer products, so it scales like a
        // covariance: S'ᵢⱼ = Sᵢⱼ/(σᵢ σⱼ).
        scatter: Matrix::from_fn(d, d, |i, j| {
            late_m.scatter[(i, j)] / (early_sd[i] * early_sd[j])
        }),
    };
    Ok((early_norm, late_stats, late_t))
}

fn cmd_merge(args: &[String], obs: &mut bmf_ams::obs::ObsOptions) -> CliResult {
    let flags = parse_flags(args).map_err(cfg)?;
    let packet_paths = flags
        .get("packet")
        .cloned()
        .ok_or_else(|| CliError::Config("need at least one --packet <json>".to_string()))?;
    let min_shards: Option<usize> = match optional(&flags, "min-shards") {
        Some(raw) => {
            let q: usize = raw.parse().map_err(|_| {
                CliError::Config(format!(
                    "--min-shards must be a positive integer, got '{raw}'"
                ))
            })?;
            if q == 0 {
                return Err(CliError::Config(
                    "--min-shards must be at least 1".to_string(),
                ));
            }
            Some(q)
        }
        None => None,
    };
    let (strict, _degrade) = failure_mode(&flags)?;
    let kappa0: Option<f64> = match optional(&flags, "kappa0") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError::Config(format!("--kappa0 has unusable value '{raw}'")))?,
        ),
        None => None,
    };
    let nu0: Option<f64> = match optional(&flags, "nu0") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError::Config(format!("--nu0 has unusable value '{raw}'")))?,
        ),
        None => None,
    };
    if kappa0.is_some() != nu0.is_some() {
        return Err(CliError::Config(
            "--kappa0 and --nu0 must be given together".to_string(),
        ));
    }
    let threads = threads_flag(&flags)?;
    obs.set_threads(threads);

    // Read every packet; an unreadable file is a runtime error (the
    // caller named it explicitly), a *corrupt* one is handled by the
    // merge's own validation so a quorum can still absorb it.
    let mut texts = Vec::with_capacity(packet_paths.len());
    for path in &packet_paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| rt(format!("cannot read packet {path}: {e}")))?;
        texts.push((path.clone(), text));
    }

    let policy = MergePolicy { min_shards };
    let outcome = merge_packet_texts(&texts, &policy).map_err(|e| match e {
        // Too few shards survived: the refusal the quorum policy exists
        // for. Capture the flight recorder — this is the "what happened
        // to my study" moment.
        CircuitError::ShardQuorum { .. } => {
            bmf_ams::obs::flight::dump("shard_quorum_failure");
            CliError::Strict(e.to_string())
        }
        other => rt(other),
    })?;

    // The merge's run identity is the study's, shared by every packet.
    obs.set_run(outcome.config.seed, &outcome.config.canonical());
    obs.attach_shard(outcome.coverage.clone());
    bmf_ams::obs::info!("{}", outcome.coverage.summary());

    // Fleet view: present when any merged packet carried telemetry.
    // The artifact lands next to the moments so a post-mortem can ask
    // "which shard was slow" without the shard processes being alive.
    if let Some(fleet) = &outcome.fleet {
        let fleet_path = format!("fleet-{}.json", outcome.run.run_id);
        bmf_ams::obs::atomic_write(&fleet_path, fleet.to_json())
            .map_err(|e| rt(format!("cannot write fleet summary {fleet_path}: {e}")))?;
        bmf_ams::obs::info!("{}", fleet.summary());
        bmf_ams::obs::info!("wrote fleet summary to {fleet_path}");
        obs.attach_fleet(fleet.clone());
    }

    // Stitched fleet timeline: one Perfetto-loadable document with a
    // clock-aligned track per telemetry-bearing shard. Valid (possibly
    // empty) even when every packet ran quiet, so scripted pipelines can
    // pass the flag unconditionally.
    if let Some(path) = optional(&flags, "fleet-trace-out") {
        let hardware = bmf_ams::obs::HardwareContext::detect(threads);
        let trace = fleet_trace_json(&outcome, &hardware);
        atomic_write(path, trace)
            .map_err(|e| rt(format!("cannot write fleet trace {path}: {e}")))?;
        let tracks = outcome
            .telemetry
            .iter()
            .filter(|(_, t)| !t.spans.is_empty())
            .count();
        bmf_ams::obs::info!("wrote stitched fleet trace to {path} ({tracks} shard track(s))");
    }

    let (early_norm, late_stats, late_t) = normalized_study(&outcome)?;
    let mode = if strict {
        FailureMode::Strict
    } else {
        FailureMode::Degrade
    };
    let mut pipeline = RobustPipeline::new().with_mode(mode).with_threads(threads);
    if let (Some(k), Some(v)) = (kappa0, nu0) {
        pipeline = pipeline.with_fixed_hypers(k, v);
    }
    let (est, report) = pipeline
        .estimate_from_stats(&early_norm, &late_stats, Some(outcome.coverage.clone()))
        .map_err(|e| {
            if strict {
                CliError::Strict(e.to_string())
            } else {
                rt(e)
            }
        })?;
    bmf_ams::obs::info!("robust pipeline: fusion level = {}", report.fallback);
    if let Some(reason) = &report.fallback_reason {
        bmf_ams::obs::warn!("robust pipeline: {reason}");
    }
    emit_report(optional(&flags, "report"), &report)?;
    if let Some(health) = report.health.clone() {
        obs.attach_health(health);
    }
    let physical = late_t.invert_moments(&est).map_err(rt)?;

    let names: Vec<String> = outcome
        .config
        .testbench()
        .map_err(rt)?
        .metric_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    emit_moments(optional(&flags, "out"), &names, &physical)?;

    if outcome.coverage.is_complete() {
        Ok(CliOk::Clean)
    } else {
        bmf_ams::obs::warn!(
            "degraded merge: {} of {} shard(s); late-sample uncertainty inflated x{:.4} (exit code 4)",
            outcome.coverage.merged,
            outcome.coverage.shard_count,
            outcome.coverage.inflation
        );
        Ok(CliOk::Degraded)
    }
}

fn cmd_diagnose(args: &[String]) -> CliResult {
    use bmf_ams::core::diagnostics::mardia_test;
    use bmf_ams::stats::pca::Pca;

    let flags = parse_flags(args).map_err(cfg)?;
    let path = single(&flags, "samples")?;
    let data = read_samples_csv(&mut File::open(path).map_err(rt)?).map_err(rt)?;
    let (n, d) = data.samples.shape();
    println!("{path}: {n} samples x {d} metrics");
    println!();

    let mean = descriptive::mean_vector(&data.samples).map_err(rt)?;
    let sd = descriptive::column_stddevs(&data.samples).map_err(rt)?;
    let skew = descriptive::column_skewness(&data.samples).map_err(rt)?;
    let kurt = descriptive::column_excess_kurtosis(&data.samples).map_err(rt)?;
    println!(
        "{:>18} | {:>12} | {:>12} | {:>8} | {:>8}",
        "metric", "mean", "sd", "skew", "ex.kurt"
    );
    for j in 0..d {
        println!(
            "{:>18} | {:12.5e} | {:12.5e} | {:8.3} | {:8.3}",
            data.names[j], mean[j], sd[j], skew[j], kurt[j]
        );
    }

    println!();
    match mardia_test(&data.samples) {
        Ok(t) => {
            println!(
                "Mardia multivariate normality: skewness b1 = {:.4} (p = {:.4}), kurtosis b2 = {:.3} (p = {:.4})",
                t.skewness, t.skewness_p_value, t.kurtosis, t.kurtosis_p_value
            );
            if t.is_consistent_with_gaussian(0.01) {
                println!("-> consistent with the jointly-Gaussian BMF assumption (alpha = 0.01)");
            } else {
                println!("-> NOT consistent with joint Gaussianity at alpha = 0.01;");
                println!("   BMF moment estimates remain usable but interpret tails with care");
            }
        }
        Err(e) => println!("Mardia test unavailable: {e}"),
    }

    println!();
    // PCA on standardised data so units don't dominate.
    let t = ShiftScale::new(mean, sd).map_err(rt)?;
    let norm = t.apply_samples(&data.samples).map_err(rt)?;
    let pca = Pca::fit(&norm).map_err(rt)?;
    let ratios = pca.explained_variance_ratio();
    print!("PCA variance ratios:");
    for k in 0..d {
        print!(" {:.3}", ratios[k]);
    }
    println!();
    println!(
        "-> {} component(s) explain 90% of the (standardised) variance",
        pca.components_for_variance(0.9)
    );
    Ok(CliOk::Clean)
}

fn cmd_yield(args: &[String]) -> CliResult {
    let flags = parse_flags(args).map_err(cfg)?;
    let moments_path = single(&flags, "moments")?;
    let draws: usize = parse_optional(&flags, "draws", "100000")?;
    let seed: u64 = parse_optional(&flags, "seed", "7")?;
    let specs_raw = flags.get("spec").ok_or_else(|| {
        CliError::Config("need at least one --spec \"<metric><=|>=<value>\"".to_string())
    })?;

    let (names, moments) =
        read_moments_csv(&mut File::open(moments_path).map_err(rt)?).map_err(rt)?;
    let d = names.len();
    let mut lower = vec![None; d];
    let mut upper = vec![None; d];
    for raw in specs_raw {
        let (idx, op_pos, op_len) = if let Some(p) = raw.find(">=") {
            (p, p, 2)
        } else if let Some(p) = raw.find("<=") {
            (p, p, 2)
        } else {
            return Err(CliError::Config(format!(
                "spec '{raw}' must contain >= or <="
            )));
        };
        let metric = raw[..idx].trim();
        let value: f64 = raw[op_pos + op_len..]
            .trim()
            .parse()
            .map_err(|_| CliError::Config(format!("spec '{raw}' has an unusable bound")))?;
        let j = names.iter().position(|n| n == metric).ok_or_else(|| {
            CliError::Config(format!("unknown metric '{metric}' (have {names:?})"))
        })?;
        if raw[op_pos..].starts_with(">=") {
            lower[j] = Some(value);
        } else {
            upper[j] = Some(value);
        }
    }
    let specs = SpecLimits::new(lower, upper).map_err(cfg)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let y = estimate_yield(&moments, &specs, draws, &mut rng).map_err(rt)?;
    println!(
        "yield = {:.3}% +- {:.3}% ({} draws)",
        y.yield_fraction * 100.0,
        y.std_error * 100.0,
        y.draws
    );
    Ok(CliOk::Clean)
}
