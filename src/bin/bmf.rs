//! `bmf` — command-line front end for the multivariate BMF estimator.
//!
//! ```text
//! bmf estimate --early early.csv --late late.csv [--out moments.csv]
//!     Fuse early-stage samples with few late-stage samples: shift/scale,
//!     cross-validate (kappa0, nu0), MAP-estimate, print/export moments.
//!     Both CSVs: header of metric names + one sample per row. The first
//!     row of each file is treated as that stage's nominal run.
//!
//! bmf generate --circuit opamp|adc --stage schematic|postlayout \
//!              --samples N --seed S [--out samples.csv]
//!     Run the built-in circuit Monte Carlo and emit a sample CSV.
//!
//! bmf yield --moments moments.csv --spec "gain_db>=80" --spec "power_w<=1.2e-4" \
//!           [--draws N]
//!     Estimate parametric yield of the fitted Gaussian against spec
//!     bounds.
//!
//! bmf diagnose --samples samples.csv
//!     Data-quality report: moment summary, Mardia multivariate normality
//!     test (the BMF modelling assumption), and PCA variance structure.
//! ```

use bmf_ams::circuits::adc::AdcTestbench;
use bmf_ams::circuits::fault::{FaultConfig, FaultInjector};
use bmf_ams::circuits::monte_carlo::{
    run_monte_carlo_seeded_with_policy, RetryPolicy, Stage, Testbench,
};
use bmf_ams::circuits::opamp::OpAmpTestbench;
use bmf_ams::core::io::{
    read_moments_csv, read_samples_csv, write_moments_csv, write_samples_csv, LabelledSamples,
};
use bmf_ams::core::parallel::resolve_threads;
use bmf_ams::core::prelude::*;
use bmf_ams::core::yield_estimation::estimate_yield;
use bmf_ams::linalg::Matrix;
use bmf_ams::stats::descriptive;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;
use std::fs::File;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut obs = match bmf_ams::obs::ObsOptions::extract(&mut args) {
        Ok(obs) => obs,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run 'bmf --help' for usage");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("estimate") => cmd_estimate(&args[1..], &mut obs),
        Some("generate") => cmd_generate(&args[1..], &mut obs),
        Some("yield") => cmd_yield(&args[1..]),
        Some("diagnose") => cmd_diagnose(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'").into()),
    };
    // Telemetry is flushed even when the subcommand failed — a strict
    // failure is exactly when the event log matters; the subcommand's
    // error still wins the exit code.
    let finish = obs.finish().map_err(Box::<dyn std::error::Error>::from);
    let result = result.and(finish);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run 'bmf --help' for usage");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!("bmf — multivariate Bayesian model fusion for AMS circuits (DAC 2015)");
    println!();
    println!("subcommands:");
    println!("  estimate --early <csv> --late <csv> [--out <csv>] [--seed <u64>] [--threads <n>]");
    println!("           [--strict | --degrade] [--report <json-path|->] [--cv-naive]");
    println!("  generate --circuit opamp|adc --stage schematic|postlayout");
    println!("           --samples <n> [--seed <u64>] [--threads <n>] [--out <csv>]");
    println!("           [--fault-rate <r>] [--retry-attempts <n>]");
    println!("  yield    --moments <csv> --spec \"<metric><=|>=<value>\" ... [--draws <n>]");
    println!("  diagnose --samples <csv>");
    println!();
    println!("observability (any subcommand): --trace-out <json> writes a Chrome");
    println!("trace-event file (load in Perfetto / chrome://tracing), --profile prints");
    println!("an aggregated per-span profile, --metrics-out <json> writes a counter/");
    println!("histogram snapshot, --dashboard-out <html> writes a self-contained");
    println!("HTML dashboard (profile, metrics, estimator health, drift timeline,");
    println!("and bench history when BENCH_history.json is present — see the");
    println!("bench_history bin), --events-out <jsonl> writes the structured event");
    println!("log (one JSON object per line: retries, repairs, ladder transitions,");
    println!("guard flags, drift alerts), each stamped with the run id that also");
    println!("appears in the FusionReport and flight-recorder dumps. --log-level");
    println!("error|warn|info|debug (or the BMF_LOG env var) sets console verbosity.");
    println!("Recording never alters numeric results.");
    println!();
    println!("--threads defaults to the machine's available parallelism; results are");
    println!("bit-identical for every thread count (per-task seed derivation).");
    println!();
    println!("robustness: --degrade routes estimation through the self-healing pipeline");
    println!("(data-quality guard, SPD prior repair, MAP -> MLE -> early-only fallback");
    println!("ladder); --strict runs the same pipeline but turns any anomaly into an");
    println!("error. --report writes the FusionReport as JSON ('-' prints a summary).");
    println!("generate --fault-rate r injects failed sims at rate r and gross outliers");
    println!("at r/5 (deterministic, seed-derived) to exercise the robustness path.");
    println!("--cv-naive scores the hyper-parameter grid with the naive per-candidate");
    println!("refit instead of the fast rank-structured path (equivalence oracle; slow).");
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Flags that take no value (presence is the whole message).
const BOOL_FLAGS: &[&str] = &["strict", "degrade", "cv-naive"];

/// Parses `--key value` pairs; repeated keys accumulate. Flags listed in
/// [`BOOL_FLAGS`] are valueless switches.
fn parse_flags(args: &[String]) -> Result<HashMap<String, Vec<String>>, String> {
    let mut map: HashMap<String, Vec<String>> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with("--") {
            return Err(format!("expected a --flag, got '{key}'"));
        }
        let name = key[2..].to_string();
        if BOOL_FLAGS.contains(&name.as_str()) {
            map.entry(name).or_default().push("true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag {key} needs a value"))?;
        map.entry(name).or_default().push(value.clone());
        i += 2;
    }
    Ok(map)
}

fn single<'a>(flags: &'a HashMap<String, Vec<String>>, key: &str) -> Result<&'a str, String> {
    match flags.get(key).map(Vec::as_slice) {
        Some([v]) => Ok(v),
        Some(_) => Err(format!("--{key} given more than once")),
        None => Err(format!("missing required flag --{key}")),
    }
}

fn optional<'a>(flags: &'a HashMap<String, Vec<String>>, key: &str) -> Option<&'a str> {
    flags.get(key).and_then(|v| v.first()).map(String::as_str)
}

/// Parses `--threads`, defaulting to the machine's available parallelism.
fn threads_flag(flags: &HashMap<String, Vec<String>>) -> Result<usize, String> {
    match optional(flags, "threads") {
        Some(raw) => {
            let t: usize = raw
                .parse()
                .map_err(|_| format!("--threads must be a positive integer, got '{raw}'"))?;
            if t == 0 {
                return Err("--threads must be at least 1".to_string());
            }
            Ok(t)
        }
        None => Ok(resolve_threads(None)),
    }
}

fn cmd_estimate(args: &[String], obs: &mut bmf_ams::obs::ObsOptions) -> CliResult {
    let flags = parse_flags(args)?;
    let early_path = single(&flags, "early")?;
    let late_path = single(&flags, "late")?;
    let seed: u64 = optional(&flags, "seed").unwrap_or("2015").parse()?;

    let early = read_samples_csv(&mut File::open(early_path)?)?;
    let late = read_samples_csv(&mut File::open(late_path)?)?;
    if early.names != late.names {
        return Err(format!(
            "metric mismatch: early has {:?}, late has {:?}",
            early.names, late.names
        )
        .into());
    }
    if early.samples.nrows() < 3 || late.samples.nrows() < 3 {
        return Err("each stage needs the nominal row plus at least 2 samples".into());
    }

    // Row 0 of each file is the nominal run (the shift anchor).
    let early_nominal = early.samples.row_vec(0);
    let late_nominal = late.samples.row_vec(0);
    let early_mc = early.samples.submatrix(
        &(1..early.samples.nrows()).collect::<Vec<_>>(),
        &(0..early.samples.ncols()).collect::<Vec<_>>(),
    );
    let late_mc = late.samples.submatrix(
        &(1..late.samples.nrows()).collect::<Vec<_>>(),
        &(0..late.samples.ncols()).collect::<Vec<_>>(),
    );

    let early_sd = descriptive::column_stddevs(&early_mc)?;
    let early_t = ShiftScale::from_nominal_and_early_sd(&early_nominal, &early_sd)?;
    let late_t = ShiftScale::from_nominal_and_early_sd(&late_nominal, &early_sd)?;
    let early_norm = early_t.apply_samples(&early_mc)?;
    let late_norm = late_t.apply_samples(&late_mc)?;

    let early_moments = MomentEstimate {
        mean: descriptive::mean_vector(&early_norm)?,
        cov: descriptive::covariance_mle(&early_norm)?,
    };

    let threads = threads_flag(&flags)?;
    obs.set_threads(threads);
    let cv_seed = rand::rngs::StdRng::seed_from_u64(seed).next_u64();

    let strict = flags.contains_key("strict");
    let degrade = flags.contains_key("degrade");
    let cv_naive = flags.contains_key("cv-naive");
    if strict && degrade {
        return Err("--strict and --degrade are mutually exclusive".into());
    }
    // Thread count deliberately left out of the run config: the same
    // estimate at any parallelism is the same run (bit-identical output).
    obs.set_run(
        seed,
        &format!(
            "estimate early={early_path} late={late_path} strict={strict} cv_naive={cv_naive}"
        ),
    );
    let report_path = optional(&flags, "report");

    let physical = if strict || degrade || report_path.is_some() {
        // Robust path: guard -> prior repair -> MAP→MLE→early ladder,
        // with the audit trail in a FusionReport.
        let mode = if strict {
            FailureMode::Strict
        } else {
            FailureMode::Degrade
        };
        let pipeline = RobustPipeline::new()
            .with_mode(mode)
            .with_cv(CrossValidation::default().with_naive_scoring(cv_naive))
            .with_seed(cv_seed)
            .with_threads(threads);
        let (est, report) = pipeline.estimate(&early_moments, &late_norm)?;
        bmf_ams::obs::info!("robust pipeline: fusion level = {}", report.fallback);
        if let Some(reason) = &report.fallback_reason {
            bmf_ams::obs::warn!("robust pipeline: {reason}");
        }
        if let Some((kappa0, nu0)) = report.selection {
            bmf_ams::obs::info!(
                "cross-validation selected kappa0 = {kappa0:.3}, nu0 = {nu0:.2} ({threads} thread(s))"
            );
        }
        match report_path {
            Some("-") => eprint!("{}", report.summary()),
            Some(path) => {
                std::fs::write(path, report.to_json())?;
                bmf_ams::obs::info!("fusion report written to {path}");
            }
            None => {}
        }
        if let Some(health) = report.health.clone() {
            obs.attach_health(health);
        }
        late_t.invert_moments(&est)?
    } else {
        let sel = CrossValidation::default()
            .with_naive_scoring(cv_naive)
            .select_seeded(&early_moments, &late_norm, cv_seed, threads)?;
        bmf_ams::obs::info!(
            "cross-validation selected kappa0 = {:.3}, nu0 = {:.2} (score {:.4}, {threads} thread(s))",
            sel.kappa0, sel.nu0, sel.score
        );

        let prior = NormalWishartPrior::from_early_moments(&early_moments, sel.kappa0, sel.nu0)?;
        let est = BmfEstimator::new(prior)?.estimate(&late_norm)?;
        late_t.invert_moments(&est.map)?
    };

    if obs.dashboard_out.is_some() {
        // Read-only drift scan of the late-stage stream against the
        // early-stage model; an unfilled window simply yields no entries.
        match DriftMonitor::new(&early_moments, DriftConfig::default())
            .and_then(|mut m| m.push_batch(&late_norm).map(|()| m))
        {
            Ok(monitor) => obs.attach_drift(monitor.into_timeline()),
            Err(e) => bmf_ams::obs::warn!("drift monitor unavailable: {e}"),
        }
    }

    match optional(&flags, "out") {
        Some(path) => {
            write_moments_csv(&mut File::create(path)?, &early.names, &physical)?;
            bmf_ams::obs::info!("moments written to {path}");
        }
        None => {
            write_moments_csv(&mut std::io::stdout().lock(), &early.names, &physical)?;
        }
    }
    Ok(())
}

fn cmd_generate(args: &[String], obs: &mut bmf_ams::obs::ObsOptions) -> CliResult {
    let flags = parse_flags(args)?;
    let circuit = single(&flags, "circuit")?;
    let stage = match single(&flags, "stage")? {
        "schematic" => Stage::Schematic,
        "postlayout" | "post-layout" => Stage::PostLayout,
        other => return Err(format!("unknown stage '{other}'").into()),
    };
    let n: usize = single(&flags, "samples")?.parse()?;
    let seed: u64 = optional(&flags, "seed").unwrap_or("1").parse()?;
    let fault_rate: f64 = optional(&flags, "fault-rate").unwrap_or("0").parse()?;
    let retry_attempts: usize = optional(&flags, "retry-attempts")
        .unwrap_or("100")
        .parse()?;

    let tb: Box<dyn Testbench> = match circuit {
        "opamp" => Box::new(OpAmpTestbench::default_45nm()),
        "adc" => Box::new(AdcTestbench::default_180nm()),
        other => return Err(format!("unknown circuit '{other}' (use opamp|adc)").into()),
    };
    // Fault injection keeps the emitted CSV finite: failed sims are
    // retried away and outliers survive as (finite) corrupted rows, but
    // NaN corruption is off — the CSV reader rejects non-finite tokens by
    // design, so a generated file must always be readable back.
    let tb: Box<dyn Testbench> = if fault_rate > 0.0 {
        Box::new(FaultInjector::new(
            tb,
            FaultConfig {
                sim_failure_rate: fault_rate,
                outlier_rate: fault_rate / 5.0,
                ..FaultConfig::default()
            },
        )?)
    } else {
        tb
    };

    let threads = threads_flag(&flags)?;
    obs.set_threads(threads);
    obs.set_run(
        seed,
        &format!("generate circuit={circuit} stage={stage:?} samples={n} fault_rate={fault_rate}"),
    );
    let policy = RetryPolicy {
        max_attempts: retry_attempts,
    };
    let data = run_monte_carlo_seeded_with_policy(tb.as_ref(), stage, n, seed, threads, &policy)?;
    if fault_rate > 0.0 {
        bmf_ams::obs::info!(
            "generated {n} samples on {threads} thread(s) (fault rate {fault_rate}, retry budget {retry_attempts})"
        );
    } else {
        bmf_ams::obs::info!("generated {n} samples on {threads} thread(s)");
    }

    // First row is the nominal run, as `bmf estimate` expects.
    let d = data.samples.ncols();
    let mut all = Matrix::zeros(n + 1, d);
    all.row_mut(0).copy_from_slice(data.nominal.as_slice());
    for i in 0..n {
        let row: Vec<f64> = data.samples.row(i).to_vec();
        all.row_mut(i + 1).copy_from_slice(&row);
    }
    let labelled = LabelledSamples {
        names: tb.metric_names().iter().map(|s| s.to_string()).collect(),
        samples: all,
    };
    match optional(&flags, "out") {
        Some(path) => {
            write_samples_csv(&mut File::create(path)?, &labelled)?;
            bmf_ams::obs::info!("{} samples (+ nominal row) written to {path}", n);
        }
        None => write_samples_csv(&mut std::io::stdout().lock(), &labelled)?,
    }
    Ok(())
}

fn cmd_diagnose(args: &[String]) -> CliResult {
    use bmf_ams::core::diagnostics::mardia_test;
    use bmf_ams::stats::pca::Pca;

    let flags = parse_flags(args)?;
    let path = single(&flags, "samples")?;
    let data = read_samples_csv(&mut File::open(path)?)?;
    let (n, d) = data.samples.shape();
    println!("{path}: {n} samples x {d} metrics");
    println!();

    let mean = descriptive::mean_vector(&data.samples)?;
    let sd = descriptive::column_stddevs(&data.samples)?;
    let skew = descriptive::column_skewness(&data.samples)?;
    let kurt = descriptive::column_excess_kurtosis(&data.samples)?;
    println!(
        "{:>18} | {:>12} | {:>12} | {:>8} | {:>8}",
        "metric", "mean", "sd", "skew", "ex.kurt"
    );
    for j in 0..d {
        println!(
            "{:>18} | {:12.5e} | {:12.5e} | {:8.3} | {:8.3}",
            data.names[j], mean[j], sd[j], skew[j], kurt[j]
        );
    }

    println!();
    match mardia_test(&data.samples) {
        Ok(t) => {
            println!(
                "Mardia multivariate normality: skewness b1 = {:.4} (p = {:.4}), kurtosis b2 = {:.3} (p = {:.4})",
                t.skewness, t.skewness_p_value, t.kurtosis, t.kurtosis_p_value
            );
            if t.is_consistent_with_gaussian(0.01) {
                println!("-> consistent with the jointly-Gaussian BMF assumption (alpha = 0.01)");
            } else {
                println!("-> NOT consistent with joint Gaussianity at alpha = 0.01;");
                println!("   BMF moment estimates remain usable but interpret tails with care");
            }
        }
        Err(e) => println!("Mardia test unavailable: {e}"),
    }

    println!();
    // PCA on standardised data so units don't dominate.
    let t = ShiftScale::new(mean, sd)?;
    let norm = t.apply_samples(&data.samples)?;
    let pca = Pca::fit(&norm)?;
    let ratios = pca.explained_variance_ratio();
    print!("PCA variance ratios:");
    for k in 0..d {
        print!(" {:.3}", ratios[k]);
    }
    println!();
    println!(
        "-> {} component(s) explain 90% of the (standardised) variance",
        pca.components_for_variance(0.9)
    );
    Ok(())
}

fn cmd_yield(args: &[String]) -> CliResult {
    let flags = parse_flags(args)?;
    let moments_path = single(&flags, "moments")?;
    let draws: usize = optional(&flags, "draws").unwrap_or("100000").parse()?;
    let seed: u64 = optional(&flags, "seed").unwrap_or("7").parse()?;
    let specs_raw = flags
        .get("spec")
        .ok_or("need at least one --spec \"<metric><=|>=<value>\"")?;

    let (names, moments) = read_moments_csv(&mut File::open(moments_path)?)?;
    let d = names.len();
    let mut lower = vec![None; d];
    let mut upper = vec![None; d];
    for raw in specs_raw {
        let (idx, op_pos, op_len) = if let Some(p) = raw.find(">=") {
            (p, p, 2)
        } else if let Some(p) = raw.find("<=") {
            (p, p, 2)
        } else {
            return Err(format!("spec '{raw}' must contain >= or <=").into());
        };
        let metric = raw[..idx].trim();
        let value: f64 = raw[op_pos + op_len..].trim().parse()?;
        let j = names
            .iter()
            .position(|n| n == metric)
            .ok_or_else(|| format!("unknown metric '{metric}' (have {names:?})"))?;
        if raw[op_pos..].starts_with(">=") {
            lower[j] = Some(value);
        } else {
            upper[j] = Some(value);
        }
    }
    let specs = SpecLimits::new(lower, upper)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let y = estimate_yield(&moments, &specs, draws, &mut rng)?;
    println!(
        "yield = {:.3}% +- {:.3}% ({} draws)",
        y.yield_fraction * 100.0,
        y.std_error * 100.0,
        y.draws
    );
    Ok(())
}
