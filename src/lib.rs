//! # bmf-ams — Multivariate Bayesian Model Fusion for AMS circuits
//!
//! Umbrella crate of the workspace reproducing *“Efficient Multivariate
//! Moment Estimation via Bayesian Model Fusion for Analog and Mixed-Signal
//! Circuits”* (DAC 2015). It re-exports the member crates so applications
//! can depend on a single entry point:
//!
//! * [`linalg`] — dense real/complex linear algebra ([`bmf_linalg`]).
//! * [`stats`] — distributions, samplers, special functions
//!   ([`bmf_stats`]).
//! * [`circuits`] — the AMS simulation substrate: MNA AC analysis, op-amp
//!   and flash-ADC testbenches, process variation, Monte Carlo
//!   ([`bmf_circuits`]).
//! * [`core`] — the paper's contribution: normal-Wishart prior, MAP moment
//!   estimation, two-dimensional cross-validation, shift & scale,
//!   experiment harness, yield estimation ([`bmf_core`]).
//! * [`obs`] — zero-dependency tracing, metrics and profiling layer
//!   ([`bmf_obs`]): every binary accepts `--trace-out`, `--profile` and
//!   `--metrics-out`.
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` for the
//! system inventory and per-experiment index.
//!
//! ```
//! use bmf_ams::core::prelude::*;
//! use bmf_ams::linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), bmf_ams::core::BmfError> {
//! let early = MomentEstimate {
//!     mean: Vector::zeros(2),
//!     cov: Matrix::identity(2),
//! };
//! let prior = NormalWishartPrior::from_early_moments(&early, 4.0, 20.0)?;
//! assert_eq!(prior.dim(), 2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use bmf_circuits as circuits;
pub use bmf_core as core;
pub use bmf_linalg as linalg;
pub use bmf_obs as obs;
pub use bmf_stats as stats;
