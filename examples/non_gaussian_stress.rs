//! Non-Gaussian robustness stress — the paper's stated future work (§1).
//!
//! The BMF derivation assumes jointly-Gaussian metrics. This example
//! measures how the BMF-vs-MLE covariance advantage degrades as the
//! population marginals become increasingly skewed (Gaussian copula with
//! exponentially-warped marginals), at the paper's small-sample operating
//! point (n = 12 late samples).
//!
//! Run with: `cargo run --release --example non_gaussian_stress`

use bmf_ams::core::robustness::skew_robustness_sweep;
use bmf_ams::linalg::Matrix;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let core_cov = Matrix::from_rows(&[&[1.0, 0.6, 0.3], &[0.6, 1.0, 0.4], &[0.3, 0.4, 1.0]])?;
    let gammas = [0.0, 0.2, 0.4, 0.6, 0.8];
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);

    println!("covariance estimation error vs marginal skew (n = 12, 20 reps)");
    println!("gamma = 0 is exactly Gaussian; larger gamma = stronger right skew\n");
    println!(" gamma |  MLE cov err |  BMF cov err | BMF/MLE ratio");
    println!("-------+--------------+--------------+--------------");
    let points = skew_robustness_sweep(&core_cov, &gammas, 12, 20, &mut rng)?;
    for p in &points {
        println!(
            "  {:4.2} | {:12.4} | {:12.4} | {:12.3}",
            p.gamma, p.mle_cov_err, p.bmf_cov_err, p.ratio
        );
    }

    println!();
    let gaussian = &points[0];
    let worst = points
        .iter()
        .max_by(|a, b| a.ratio.partial_cmp(&b.ratio).expect("finite"))
        .expect("non-empty");
    println!(
        "BMF/MLE ratio moves from {:.3} (Gaussian) to {:.3} (gamma = {:.1}).",
        gaussian.ratio, worst.ratio, worst.gamma
    );
    if worst.ratio < 1.0 {
        println!("BMF stays ahead of MLE across the tested skew range: the prior");
        println!("still transfers the (true) second moments even when the shape");
        println!("assumption is wrong — supporting the paper's §3.1 argument that");
        println!("the Gaussian approximation is acceptable for moment estimation.");
    } else {
        println!("BMF loses its advantage beyond gamma where ratio crosses 1 —");
        println!("the regime where the paper's future-work extension (high-order");
        println!("moment matching) would be required.");
    }
    Ok(())
}
