//! BMF on a third circuit: a current-starved ring oscillator (d = 3).
//!
//! The paper evaluates two 5-metric circuits; this example shows the same
//! pipeline generalising to a different circuit class and dimensionality —
//! the ring-oscillator testbench biases its mirror through the nonlinear
//! DC solver per Monte Carlo sample, and BMF fuses schematic knowledge
//! with a handful of post-layout samples, including a posterior credible
//! interval on the estimated frequency spread.
//!
//! Run with: `cargo run --release --example ring_oscillator_study`

use bmf_ams::circuits::monte_carlo::two_stage_study;
use bmf_ams::circuits::ring_oscillator::RingOscTestbench;
use bmf_ams::core::experiment::{prepare, run_error_sweep, SweepConfig, TwoStageData};
use bmf_ams::core::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tb = RingOscTestbench::default_45nm();
    let mut rng = rand::rngs::StdRng::seed_from_u64(71);

    println!("7-stage current-starved ring oscillator, 45 nm");
    println!("metrics: frequency_hz, power_w, duty_error_pct\n");

    let study = two_stage_study(&tb, 1500, 1500, &mut rng)?;
    println!("schematic nominal : {}", study.early.nominal);
    println!("post-layout nominal: {}\n", study.late.nominal);

    let data = TwoStageData {
        metric_names: study.metric_names.iter().map(|s| s.to_string()).collect(),
        early_nominal: study.early.nominal.clone(),
        early_samples: study.early.samples.clone(),
        late_nominal: study.late.nominal.clone(),
        late_samples: study.late.samples.clone(),
    };
    let prepared = prepare(&data)?;

    // Mini error sweep (Figure-4 protocol on the third circuit).
    let config = SweepConfig {
        sample_sizes: vec![8, 16, 32, 64],
        repetitions: 25,
        cv: CrossValidation::default(),
        seed: 72,
    };
    let result = run_error_sweep(&prepared, &config)?;
    println!("{}", result.to_table());

    // One concrete estimation with posterior uncertainty on the frequency σ.
    let n = 12;
    let few = bmf_ams::linalg::Matrix::from_fn(n, 3, |i, j| prepared.late_pool[(i, j)]);
    let sel = CrossValidation::default().select(&prepared.early_moments, &few, &mut rng)?;
    let prior =
        NormalWishartPrior::from_early_moments(&prepared.early_moments, sel.kappa0, sel.nu0)?;
    let est = BmfEstimator::new(prior)?.estimate(&few)?;

    let draws = est.sample_posterior(&mut rng, 2000)?;
    let mut freq_sigmas: Vec<f64> = draws
        .iter()
        .map(|m| {
            let norm_sd = m.cov[(0, 0)].max(0.0).sqrt();
            // Undo the scaling for the frequency dimension only.
            norm_sd * prepared.late_transform.scale()[0]
        })
        .collect();
    freq_sigmas.sort_by(f64::total_cmp);
    let lo = freq_sigmas[(0.05 * 2000.0) as usize];
    let hi = freq_sigmas[(0.95 * 2000.0) as usize];
    let map_sigma = est.map.cov[(0, 0)].sqrt() * prepared.late_transform.scale()[0];
    println!(
        "posterior on post-layout frequency sigma (from {n} samples):\n  MAP = {:.3} MHz, 90% credible interval [{:.3}, {:.3}] MHz",
        map_sigma / 1e6,
        lo / 1e6,
        hi / 1e6
    );
    let ref_sigma = {
        let pool = &prepared.late_pool;
        let var = (0..pool.nrows()).map(|i| pool[(i, 0)]).collect::<Vec<_>>();
        let mean: f64 = var.iter().sum::<f64>() / var.len() as f64;
        let v = var.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (var.len() as f64 - 1.0);
        v.sqrt() * prepared.late_transform.scale()[0]
    };
    println!(
        "  (reference from the full 1500-sample pool: {:.3} MHz)",
        ref_sigma / 1e6
    );
    Ok(())
}
