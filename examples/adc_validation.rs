//! Flash-ADC post-silicon-style validation — the paper's second circuit
//! example (§5.2), run end to end at a reduced size.
//!
//! The ADC's spectral metrics (SNR/SINAD/SFDR/THD) are slow to measure on
//! silicon, so the late-stage budget is tiny. BMF fuses the schematic-level
//! characterisation with those few measurements.
//!
//! Run with: `cargo run --release --example adc_validation`

use bmf_ams::circuits::adc::AdcTestbench;
use bmf_ams::circuits::monte_carlo::{run_monte_carlo, Stage};
use bmf_ams::core::prelude::*;
use bmf_ams::stats::descriptive;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tb = AdcTestbench::default_180nm();
    let mut rng = rand::rngs::StdRng::seed_from_u64(18);

    println!("flash ADC, 0.18 um — metrics:");
    println!("  snr_db, sinad_db, sfdr_db, thd_db, power_w\n");

    let early = run_monte_carlo(&tb, Stage::Schematic, 1000, &mut rng)?;
    let late = run_monte_carlo(&tb, Stage::PostLayout, 1000, &mut rng)?;
    let n_late = 8; // the paper stresses n as small as eight

    // §4.1 shift & scale.
    let early_sd = descriptive::column_stddevs(&early.samples)?;
    let early_t = ShiftScale::from_nominal_and_early_sd(&early.nominal, &early_sd)?;
    let late_t = ShiftScale::from_nominal_and_early_sd(&late.nominal, &early_sd)?;
    let early_norm = early_t.apply_samples(&early.samples)?;
    let late_norm_pool = late_t.apply_samples(&late.samples)?;

    let early_moments = MomentEstimate {
        mean: descriptive::mean_vector(&early_norm)?,
        cov: descriptive::covariance_mle(&early_norm)?,
    };
    let exact_late = MomentEstimate {
        mean: descriptive::mean_vector(&late_norm_pool)?,
        cov: descriptive::covariance_mle(&late_norm_pool)?,
    };

    let few = bmf_ams::linalg::Matrix::from_fn(n_late, 5, |i, j| late_norm_pool[(i, j)]);

    let selection = CrossValidation::default().select(&early_moments, &few, &mut rng)?;
    println!(
        "CV selected kappa0 = {:.2}, nu0 = {:.1}",
        selection.kappa0, selection.nu0
    );
    println!("(paper finds both large for the ADC: the early stage predicts the late");
    println!(" stage well in both mean and covariance)\n");

    let prior =
        NormalWishartPrior::from_early_moments(&early_moments, selection.kappa0, selection.nu0)?;
    let bmf = BmfEstimator::new(prior)?.estimate(&few)?;
    let mle = MleEstimator::new().estimate(&few)?;

    println!("errors vs 1000-sample post-layout reference (n = {n_late} used):");
    println!(
        "  MLE : mean {:.4}, cov {:.4}",
        error_mean(&mle, &exact_late)?,
        error_cov(&mle, &exact_late)?
    );
    println!(
        "  BMF : mean {:.4}, cov {:.4}",
        error_mean(&bmf.map, &exact_late)?,
        error_cov(&bmf.map, &exact_late)?
    );

    // Correlation structure — the quantity single-metric BMF cannot give.
    let corr = descriptive::correlation_from_cov(&bmf.map.cov)?;
    println!("\nestimated late-stage correlation matrix (normalised space):");
    print!("{corr}");
    Ok(())
}
