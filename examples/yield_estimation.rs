//! Parametric-yield estimation from BMF moments — the application the
//! paper's introduction motivates.
//!
//! Estimates the op-amp's yield against a multi-metric specification box
//! using (a) moments from plain MLE on few samples, (b) moments from BMF,
//! and compares both against the reference yield computed by brute-force
//! Monte Carlo over a large post-layout pool.
//!
//! Run with: `cargo run --release --example yield_estimation`

use bmf_ams::circuits::monte_carlo::{run_monte_carlo, Stage};
use bmf_ams::circuits::opamp::OpAmpTestbench;
use bmf_ams::core::prelude::*;
use bmf_ams::core::yield_estimation::estimate_yield;
use bmf_ams::linalg::Matrix;
use bmf_ams::stats::descriptive;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tb = OpAmpTestbench::default_45nm();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);

    let early = run_monte_carlo(&tb, Stage::Schematic, 1500, &mut rng)?;
    let late = run_monte_carlo(&tb, Stage::PostLayout, 1500, &mut rng)?;
    let n_late = 16;

    // Specification box in physical units:
    //   gain >= 82 dB, bandwidth >= 5 kHz, power <= 125 uW,
    //   |offset| <= 5 mV, phase margin >= 65 deg.
    let specs = SpecLimits::new(
        vec![Some(82.0), Some(5.0e3), None, Some(-5e-3), Some(65.0)],
        vec![None, None, Some(125e-6), Some(5e-3), None],
    )?;

    // Reference: count passes over the big post-layout pool directly.
    let mut passes = 0usize;
    for i in 0..late.samples.nrows() {
        if specs.passes(&late.samples.row_vec(i)) {
            passes += 1;
        }
    }
    let reference = passes as f64 / late.samples.nrows() as f64;
    println!(
        "reference yield (1500 post-layout MC): {:.1}%\n",
        reference * 100.0
    );

    // Normalise, estimate moments from n = 16 late samples.
    let early_sd = descriptive::column_stddevs(&early.samples)?;
    let early_t = ShiftScale::from_nominal_and_early_sd(&early.nominal, &early_sd)?;
    let late_t = ShiftScale::from_nominal_and_early_sd(&late.nominal, &early_sd)?;
    let early_norm = early_t.apply_samples(&early.samples)?;
    let late_norm_pool = late_t.apply_samples(&late.samples)?;
    let few = Matrix::from_fn(n_late, 5, |i, j| late_norm_pool[(i, j)]);

    let early_moments = MomentEstimate {
        mean: descriptive::mean_vector(&early_norm)?,
        cov: descriptive::covariance_mle(&early_norm)?,
    };

    let selection = CrossValidation::default().select(&early_moments, &few, &mut rng)?;
    let prior =
        NormalWishartPrior::from_early_moments(&early_moments, selection.kappa0, selection.nu0)?;
    let bmf_norm = BmfEstimator::new(prior)?.estimate(&few)?.map;
    let mle_norm = MleEstimator::new().estimate(&few)?;

    // Back to physical units, then integrate the fitted Gaussian over the
    // spec box by Monte Carlo (no circuit simulation needed).
    let bmf_phys = late_t.invert_moments(&bmf_norm)?;
    let y_bmf = estimate_yield(&bmf_phys, &specs, 100_000, &mut rng)?;
    println!(
        "yield from BMF moments (n = {n_late}): {:.1}% +- {:.1}%",
        y_bmf.yield_fraction * 100.0,
        y_bmf.std_error * 100.0
    );

    match late_t.invert_moments(&mle_norm) {
        Ok(mle_phys) => match estimate_yield(&mle_phys, &specs, 100_000, &mut rng) {
            Ok(y_mle) => println!(
                "yield from MLE moments (n = {n_late}): {:.1}% +- {:.1}%",
                y_mle.yield_fraction * 100.0,
                y_mle.std_error * 100.0
            ),
            Err(e) => println!("yield from MLE moments: unavailable ({e})"),
        },
        Err(e) => println!("yield from MLE moments: unavailable ({e})"),
    }

    println!(
        "\n|BMF - reference| = {:.1} points",
        (y_bmf.yield_fraction - reference).abs() * 100.0
    );
    Ok(())
}
