//! Op-amp post-layout validation with few late-stage samples — the paper's
//! first circuit example (§5.1), run end to end at a reduced size.
//!
//! Scenario: the schematic design has been characterised with thousands of
//! cheap Monte Carlo runs; post-layout simulation is expensive, so only a
//! handful of runs exist. Estimate the post-layout moment set and compare
//! MLE vs BMF against the reference computed from a large post-layout pool.
//!
//! Run with: `cargo run --release --example opamp_validation`

use bmf_ams::circuits::monte_carlo::{run_monte_carlo, Stage};
use bmf_ams::circuits::opamp::OpAmpTestbench;
use bmf_ams::core::prelude::*;
use bmf_ams::stats::descriptive;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tb = OpAmpTestbench::default_45nm();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    println!("two-stage op-amp, 45 nm — metrics:");
    println!("  gain_db, bandwidth_hz, power_w, offset_v, phase_margin_deg\n");

    // Early stage: abundant schematic-level Monte Carlo.
    let early = run_monte_carlo(&tb, Stage::Schematic, 2000, &mut rng)?;
    // Late stage: a large reference pool (to measure errors against) from
    // which only a few samples are "affordable".
    let late = run_monte_carlo(&tb, Stage::PostLayout, 2000, &mut rng)?;
    let n_late = 16;

    println!("schematic nominal : {}", early.nominal);
    println!("post-layout nominal: {}\n", late.nominal);

    // §4.1 shift & scale.
    let early_sd = descriptive::column_stddevs(&early.samples)?;
    let early_t = ShiftScale::from_nominal_and_early_sd(&early.nominal, &early_sd)?;
    let late_t = ShiftScale::from_nominal_and_early_sd(&late.nominal, &early_sd)?;
    let early_norm = early_t.apply_samples(&early.samples)?;
    let late_norm_pool = late_t.apply_samples(&late.samples)?;

    let early_moments = MomentEstimate {
        mean: descriptive::mean_vector(&early_norm)?,
        cov: descriptive::covariance_mle(&early_norm)?,
    };
    let exact_late = MomentEstimate {
        mean: descriptive::mean_vector(&late_norm_pool)?,
        cov: descriptive::covariance_mle(&late_norm_pool)?,
    };

    // Take the few affordable late samples (first rows of the pool).
    let few = bmf_ams::linalg::Matrix::from_fn(n_late, 5, |i, j| late_norm_pool[(i, j)]);

    // BMF flow.
    let selection = CrossValidation::default().select(&early_moments, &few, &mut rng)?;
    println!(
        "CV selected kappa0 = {:.2}, nu0 = {:.1}",
        selection.kappa0, selection.nu0
    );
    let prior =
        NormalWishartPrior::from_early_moments(&early_moments, selection.kappa0, selection.nu0)?;
    let bmf = BmfEstimator::new(prior)?.estimate(&few)?;
    let mle = MleEstimator::new().estimate(&few)?;

    println!("\nerrors vs 2000-sample post-layout reference (n = {n_late} used):");
    println!(
        "  MLE : mean {:.4}, cov {:.4}",
        error_mean(&mle, &exact_late)?,
        error_cov(&mle, &exact_late)?
    );
    println!(
        "  BMF : mean {:.4}, cov {:.4}",
        error_mean(&bmf.map, &exact_late)?,
        error_cov(&bmf.map, &exact_late)?
    );

    // Physical-unit estimate for the designer.
    let physical = late_t.invert_moments(&bmf.map)?;
    println!("\nestimated post-layout moments (physical units):");
    for (j, name) in ["gain_db", "bandwidth_hz", "power_w", "offset_v", "pm_deg"]
        .iter()
        .enumerate()
    {
        println!(
            "  {name:13}: mean {:12.5e}, sd {:12.5e}",
            physical.mean[j],
            physical.cov[(j, j)].sqrt()
        );
    }
    Ok(())
}
