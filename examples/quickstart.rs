//! Quickstart: the complete BMF flow on synthetic data.
//!
//! Walks the paper's Algorithm 1 end to end with a controlled ground truth
//! so every quantity can be checked against expectations:
//!
//! 1. build early- and late-stage populations with similar shape,
//! 2. shift & scale (§4.1),
//! 3. cross-validate the hyper-parameters (§4.2),
//! 4. MAP-estimate the late-stage moments (§3.3),
//! 5. compare against plain MLE.
//!
//! Run with: `cargo run --release --example quickstart`

use bmf_ams::core::prelude::*;
use bmf_ams::linalg::{Matrix, Vector};
use bmf_ams::stats::{descriptive, MultivariateNormal};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // --- Ground truth -----------------------------------------------------
    // Two correlated "performance metrics" at wildly different magnitudes
    // (think: bandwidth in Hz, power in W). The late stage shares the
    // covariance *shape* but sits at a different nominal point.
    let cov_shape = Matrix::from_rows(&[&[1.0, 0.7], &[0.7, 1.3]])?;
    let scale_units = [1e6, 1e-3]; // per-metric physical scales
    let raw_cov = Matrix::from_fn(2, 2, |i, j| {
        cov_shape[(i, j)] * scale_units[i] * scale_units[j] * 0.01
    });

    let early_nominal = Vector::from_slice(&[5.0e6, 2.0e-3]);
    let late_nominal = Vector::from_slice(&[4.2e6, 2.6e-3]); // layout shifted
    let early_dist = MultivariateNormal::new(early_nominal.clone(), raw_cov.clone())?;
    let late_dist = MultivariateNormal::new(late_nominal.clone(), raw_cov.clone())?;

    // Abundant early data, scarce late data — the paper's setting.
    let early_samples = early_dist.sample_matrix(&mut rng, 5000);
    let n_late = 12;
    let late_samples = late_dist.sample_matrix(&mut rng, n_late);

    println!(
        "early pool: {} samples, late data: {} samples\n",
        5000, n_late
    );

    // --- Step 1: shift & scale (§4.1) --------------------------------------
    let early_sd = descriptive::column_stddevs(&early_samples)?;
    let early_t = ShiftScale::from_nominal_and_early_sd(&early_nominal, &early_sd)?;
    let late_t = ShiftScale::from_nominal_and_early_sd(&late_nominal, &early_sd)?;
    let early_norm = early_t.apply_samples(&early_samples)?;
    let late_norm = late_t.apply_samples(&late_samples)?;

    let early_moments = MomentEstimate {
        mean: descriptive::mean_vector(&early_norm)?,
        cov: descriptive::covariance_mle(&early_norm)?,
    };
    println!("normalised early mean: {}", early_moments.mean);
    println!("normalised early cov:\n{}", early_moments.cov);

    // --- Step 2: hyper-parameter selection (§4.2) ---------------------------
    let selection = CrossValidation::default().select(&early_moments, &late_norm, &mut rng)?;
    println!(
        "cross-validation selected kappa0 = {:.2}, nu0 = {:.1} (score {:.3})\n",
        selection.kappa0, selection.nu0, selection.score
    );

    // --- Step 3: MAP estimation (§3.3) --------------------------------------
    let prior =
        NormalWishartPrior::from_early_moments(&early_moments, selection.kappa0, selection.nu0)?;
    let bmf = BmfEstimator::new(prior)?.estimate(&late_norm)?;

    // --- Baseline: MLE on the same few samples ------------------------------
    let mle = MleEstimator::new().estimate(&late_norm)?;

    // --- Evaluation against the exact late-stage moments --------------------
    let exact = late_t.apply_moments(&MomentEstimate {
        mean: late_nominal.clone(),
        cov: raw_cov,
    })?;
    println!("errors vs exact late-stage moments (normalised space):");
    println!(
        "  MLE : mean {:.4}, cov {:.4}",
        error_mean(&mle, &exact)?,
        error_cov(&mle, &exact)?
    );
    println!(
        "  BMF : mean {:.4}, cov {:.4}",
        error_mean(&bmf.map, &exact)?,
        error_cov(&bmf.map, &exact)?
    );

    // --- Back to physical units ---------------------------------------------
    let physical = late_t.invert_moments(&bmf.map)?;
    println!("\nBMF estimate in physical units:");
    println!("  mean = {}", physical.mean);
    println!("  cov  =\n{}", physical.cov);

    // --- Bonus: posterior predictive credible check -------------------------
    let predictive = bmf.predictive()?;
    println!(
        "posterior predictive: multivariate t with {:.1} degrees of freedom",
        predictive.dof()
    );
    Ok(())
}
