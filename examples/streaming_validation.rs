//! Streaming post-silicon validation with a stopping rule.
//!
//! The paper's post-silicon setting measures dies one at a time, and every
//! measurement is expensive. Conjugacy makes BMF naturally *sequential*:
//! keep one running posterior, update it per die, and stop as soon as the
//! estimate is good enough. Here the stopping rule is a posterior credible
//! check on the quantity a validation engineer actually signs off —
//! parametric yield: stop when the 90 % credible interval of yield
//! (propagated through posterior samples of (μ, Σ)) is narrower than ±2
//! percentage points.
//!
//! Run with: `cargo run --release --example streaming_validation`

use bmf_ams::circuits::monte_carlo::{run_monte_carlo, Stage};
use bmf_ams::circuits::opamp::OpAmpTestbench;
use bmf_ams::core::prelude::*;
use bmf_ams::core::sequential::SequentialBmf;
use bmf_ams::core::yield_estimation::estimate_yield;
use bmf_ams::stats::descriptive;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tb = OpAmpTestbench::default_45nm();
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);

    // Early-stage characterisation + the spec the product must meet.
    let early = run_monte_carlo(&tb, Stage::Schematic, 1500, &mut rng)?;
    let late = run_monte_carlo(&tb, Stage::PostLayout, 1500, &mut rng)?;
    let specs = SpecLimits::new(
        vec![Some(82.0), Some(5.0e3), None, Some(-5e-3), Some(64.0)],
        vec![None, None, Some(1.30e-4), Some(5e-3), None],
    )?;

    // Reference yield (what infinite measurement would converge to).
    let mut passes = 0usize;
    for i in 0..late.samples.nrows() {
        if specs.passes(&late.samples.row_vec(i)) {
            passes += 1;
        }
    }
    let reference = passes as f64 / late.samples.nrows() as f64;
    println!("reference post-layout yield: {:.1}%\n", reference * 100.0);

    // Normalise and set up the prior (hyper-parameters from a CV run on
    // the first few dies — in production these would be re-selected
    // periodically; a one-shot selection keeps the example readable).
    let early_sd = descriptive::column_stddevs(&early.samples)?;
    let early_t = ShiftScale::from_nominal_and_early_sd(&early.nominal, &early_sd)?;
    let late_t = ShiftScale::from_nominal_and_early_sd(&late.nominal, &early_sd)?;
    let early_norm = early_t.apply_samples(&early.samples)?;
    let late_norm = late_t.apply_samples(&late.samples)?;
    let early_moments = MomentEstimate {
        mean: descriptive::mean_vector(&early_norm)?,
        cov: descriptive::covariance_mle(&early_norm)?,
    };
    let warmup = 8;
    let first = bmf_ams::linalg::Matrix::from_fn(warmup, 5, |i, j| late_norm[(i, j)]);
    let sel = CrossValidation::default().select(&early_moments, &first, &mut rng)?;
    println!(
        "hyper-parameters from the first {warmup} dies: kappa0 = {:.2}, nu0 = {:.1}\n",
        sel.kappa0, sel.nu0
    );

    let prior = NormalWishartPrior::from_early_moments(&early_moments, sel.kappa0, sel.nu0)?;
    let mut stream = SequentialBmf::new(prior)?;

    println!(" die |  yield MAP | 90% credible interval | stop?");
    println!("-----+------------+-----------------------+------");
    let max_dies = 64;
    let mut stopped_at = None;
    for die in 0..max_dies {
        stream.observe(&late_norm.row_vec(die))?;
        if stream.observed() < 4 {
            continue; // too early for a meaningful interval
        }
        let est = stream.estimate()?;

        // Propagate posterior uncertainty into yield: sample (μ, Σ) from
        // the posterior, compute each draw's yield, take the quantiles.
        let draws = est.sample_posterior(&mut rng, 60)?;
        let mut yields: Vec<f64> = Vec::with_capacity(draws.len());
        for m in draws {
            let phys = late_t.invert_moments(&m)?;
            let y = estimate_yield(&phys, &specs, 4_000, &mut rng)?;
            yields.push(y.yield_fraction);
        }
        yields.sort_by(f64::total_cmp);
        let lo = yields[3]; // ~5th percentile of 60
        let hi = yields[56]; // ~95th
        let map_phys = late_t.invert_moments(&est.map)?;
        let y_map = estimate_yield(&map_phys, &specs, 20_000, &mut rng)?.yield_fraction;

        let width = hi - lo;
        let stop = width < 0.04;
        if (die + 1) % 4 == 0 || stop {
            println!(
                "{:4} | {:9.1}% | [{:5.1}%, {:5.1}%]      | {}",
                die + 1,
                y_map * 100.0,
                lo * 100.0,
                hi * 100.0,
                if stop { "STOP" } else { "" }
            );
        }
        if stop {
            stopped_at = Some((die + 1, y_map));
            break;
        }
    }

    match stopped_at {
        Some((n, y)) => {
            println!(
                "\nstopped after {n} dies: yield {:.1}% vs reference {:.1}% (|err| = {:.1} pts)",
                y * 100.0,
                reference * 100.0,
                (y - reference).abs() * 100.0
            );
            println!("a plain-MC flow without the early-stage prior would need far more");
            println!("silicon to pin the joint moments this tightly (see EXPERIMENTS.md).");
        }
        None => println!("\ninterval never tightened below ±2 points within {max_dies} dies"),
    }
    Ok(())
}
