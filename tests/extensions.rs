//! Integration tests for the extension modules, exercised on real circuit
//! data: univariate-vs-multivariate BMF, Bernoulli yield fusion vs
//! moment-based yield, Gaussianity diagnostics, LHS sampling and PCA.

use bmf_ams::circuits::monte_carlo::{run_monte_carlo, Stage};
use bmf_ams::circuits::opamp::OpAmpTestbench;
use bmf_ams::core::bernoulli::BernoulliBmf;
use bmf_ams::core::diagnostics::mardia_test;
use bmf_ams::core::prelude::*;
use bmf_ams::core::univariate;
use bmf_ams::core::yield_estimation::estimate_yield;
use bmf_ams::linalg::Matrix;
use bmf_ams::stats::pca::Pca;
use bmf_ams::stats::{descriptive, lhs, MultivariateNormal};
use rand::SeedableRng;

fn opamp_pools(seed: u64, n: usize) -> (Matrix, Matrix) {
    let tb = OpAmpTestbench::default_45nm();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let early = run_monte_carlo(&tb, Stage::Schematic, n, &mut rng).expect("early");
    let late = run_monte_carlo(&tb, Stage::PostLayout, n, &mut rng).expect("late");
    (early.samples, late.samples)
}

#[test]
fn multivariate_bmf_beats_per_metric_univariate_on_circuit_data() {
    // The paper's motivation (§2): per-metric fusion loses the correlation
    // structure. Measure both against the full-pool covariance.
    let (early_pool, late_pool) = opamp_pools(1, 800);
    // Centre each stage on its own pool mean (stand-in for the nominal
    // shift of §4.1) and scale both by the early σ, as the pipeline does.
    let early_sd = descriptive::column_stddevs(&early_pool).expect("sd");
    let early_mean = descriptive::mean_vector(&early_pool).expect("mean");
    let late_mean = descriptive::mean_vector(&late_pool).expect("mean");
    let t_early = ShiftScale::new(early_mean, early_sd.clone()).expect("transform");
    let t_late = ShiftScale::new(late_mean, early_sd).expect("transform");
    let early_norm = t_early.apply_samples(&early_pool).expect("norm");
    let late_norm = t_late.apply_samples(&late_pool).expect("norm");

    let early_moments = MomentEstimate {
        mean: descriptive::mean_vector(&early_norm).expect("mean"),
        cov: descriptive::covariance_mle(&early_norm).expect("cov"),
    };
    let exact = MomentEstimate {
        mean: descriptive::mean_vector(&late_norm).expect("mean"),
        cov: descriptive::covariance_mle(&late_norm).expect("cov"),
    };
    let few = Matrix::from_fn(16, 5, |i, j| late_norm[(i, j)]);

    let per_metric =
        univariate::estimate_per_metric(&early_moments, 5.0, 50.0, &few).expect("univariate");
    let prior = NormalWishartPrior::from_early_moments(&early_moments, 5.0, 50.0).expect("prior");
    let multi = BmfEstimator::new(prior)
        .expect("estimator")
        .estimate(&few)
        .expect("map");

    let uni_err = error_cov(&per_metric, &exact).expect("err");
    let multi_err = error_cov(&multi.map, &exact).expect("err");
    assert!(
        multi_err < uni_err,
        "multivariate ({multi_err:.4}) must beat correlation-blind per-metric ({uni_err:.4})"
    );
    // The gap is the off-diagonal mass the univariate method cannot see.
    let corr = descriptive::correlation_from_cov(&exact.cov).expect("corr");
    let mut max_off = 0.0_f64;
    for i in 0..5 {
        for j in (i + 1)..5 {
            max_off = max_off.max(corr[(i, j)].abs());
        }
    }
    assert!(
        max_off > 0.5,
        "circuit data must be correlated for this test"
    );
}

#[test]
fn bernoulli_fusion_agrees_with_moment_based_yield() {
    // Two routes to the same quantity: (a) BMF moments → Gaussian yield,
    // (b) Beta-Bernoulli fusion of pass/fail counts. With a good prior and
    // the same data they should land in the same neighbourhood.
    let (_, late_pool) = opamp_pools(2, 1200);
    let specs = SpecLimits::new(
        vec![Some(82.0), None, None, Some(-5e-3), Some(64.0)],
        vec![None, None, Some(1.30e-4), Some(5e-3), None],
    )
    .expect("specs");

    // Reference yield from the pool.
    let mut passes = 0usize;
    for i in 0..late_pool.nrows() {
        if specs.passes(&late_pool.row_vec(i)) {
            passes += 1;
        }
    }
    let reference = passes as f64 / late_pool.nrows() as f64;
    assert!(
        reference > 0.2 && reference < 0.995,
        "reference = {reference}"
    );

    // Route (b): early yield (here: reference as a stand-in prior) fused
    // with 20 observed dies.
    let n_obs = 20;
    let mut obs_pass = 0usize;
    for i in 0..n_obs {
        if specs.passes(&late_pool.row_vec(i)) {
            obs_pass += 1;
        }
    }
    let bd = BernoulliBmf::from_early_yield(reference.clamp(0.01, 0.99), 30.0).expect("prior");
    let post = bd.observe(obs_pass, n_obs - obs_pass).expect("observe");
    assert!(
        (post.mean_yield() - reference).abs() < 0.15,
        "beta-fused {} vs reference {reference}",
        post.mean_yield()
    );
    let (lo, hi) = post.credible_interval(0.95).expect("interval");
    assert!(
        lo < reference && reference < hi,
        "[{lo}, {hi}] vs {reference}"
    );

    // Route (a): moments of the pool → Gaussian yield.
    let moments = MomentEstimate {
        mean: descriptive::mean_vector(&late_pool).expect("mean"),
        cov: descriptive::covariance_mle(&late_pool).expect("cov"),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let gauss = estimate_yield(&moments, &specs, 40_000, &mut rng).expect("yield");
    assert!(
        (gauss.yield_fraction - reference).abs() < 0.05,
        "gaussian-model yield {} vs empirical {reference}",
        gauss.yield_fraction
    );
}

#[test]
fn mardia_diagnostics_run_on_both_stages() {
    let (early_pool, late_pool) = opamp_pools(4, 500);
    let e = mardia_test(&early_pool).expect("early test");
    let l = mardia_test(&late_pool).expect("late test");
    // The substrate is near-Gaussian by construction; kurtosis must sit
    // near d(d+2) = 35 for both stages.
    assert!((e.kurtosis - 35.0).abs() < 8.0, "early b2 = {}", e.kurtosis);
    assert!((l.kurtosis - 35.0).abs() < 8.0, "late b2 = {}", l.kurtosis);
}

#[test]
fn lhs_early_pool_gives_tighter_prior_mean() {
    // Using LHS for the early pool reduces the prior-moment noise at equal
    // simulation cost — demonstrated on the fitted Gaussian surrogate.
    let (early_pool, _) = opamp_pools(5, 1500);
    let surrogate = MultivariateNormal::new(
        descriptive::mean_vector(&early_pool).expect("mean"),
        bmf_ams::linalg::nearest_spd(
            &descriptive::covariance_mle(&early_pool).expect("cov"),
            1e-9,
        )
        .expect("spd"),
    )
    .expect("surrogate");

    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let reps = 30;
    let n = 64;
    let mut iid_err = 0.0;
    let mut lhs_err = 0.0;
    for _ in 0..reps {
        let iid = surrogate.sample_matrix(&mut rng, n);
        iid_err += (&descriptive::mean_vector(&iid).expect("mean") - surrogate.mean()).norm2();
        let stratified = lhs::sample_mvn_lhs(&surrogate, &mut rng, n).expect("lhs");
        lhs_err +=
            (&descriptive::mean_vector(&stratified).expect("mean") - surrogate.mean()).norm2();
    }
    assert!(
        lhs_err < 0.5 * iid_err,
        "LHS mean error {lhs_err:.4} should be well below IID {iid_err:.4}"
    );
}

#[test]
fn pca_compresses_opamp_metrics() {
    // Standardise first (metrics span orders of magnitude), then check
    // that a couple of process-driven components dominate.
    let (early_pool, _) = opamp_pools(7, 1000);
    let sd = descriptive::column_stddevs(&early_pool).expect("sd");
    let mean = descriptive::mean_vector(&early_pool).expect("mean");
    let t = ShiftScale::new(mean, sd).expect("transform");
    let norm = t.apply_samples(&early_pool).expect("norm");
    let pca = Pca::fit(&norm).expect("pca");
    let k = pca.components_for_variance(0.9);
    assert!(
        k <= 3,
        "5 op-amp metrics should compress to <= 3 components for 90 % variance, got {k}"
    );
    // Projection round-trip sanity.
    let scores = pca.transform(&norm, k).expect("scores");
    assert_eq!(scores.shape(), (1000, k));
}
