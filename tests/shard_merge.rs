//! Sharded-study integration suite: packet merge edge cases in-process,
//! plus end-to-end chaos through the `bmf` binary (kill-and-resume,
//! corrupt packets, quorum exit codes, atomic report writes).
//!
//! The in-process half drives `bmf_ams::circuits::shard` directly and
//! asserts the reduction algebra: any partition of a study — 1, 2 or 7
//! shards, any thread count — merges to bit-identical moments, and every
//! malformed input is a *typed* error, never a panic or a wrong number.
//!
//! The process half runs the actual `bmf` executable (CARGO_BIN_EXE) so
//! the exit-code taxonomy and the `BMF_SHARD_KILL` crash window are
//! tested exactly as operators hit them.

use bmf_ams::circuits::monte_carlo::two_stage_study_seeded;
use bmf_ams::circuits::shard::{
    merge_packet_texts, merge_packets, run_shard, study_reference_stats, MergePolicy, StudyConfig,
};
use bmf_ams::circuits::CircuitError;
use std::path::PathBuf;
use std::process::Command;

fn config(shard_count: usize) -> StudyConfig {
    StudyConfig {
        circuit: "opamp".to_string(),
        n_early: 35,
        n_late: 14,
        shard_count,
        seed: 2015,
        max_attempts: 25,
        fault_rate: 0.0,
    }
}

// ---------------------------------------------------------------------------
// In-process merge edge cases
// ---------------------------------------------------------------------------

#[test]
fn empty_packet_set_is_a_typed_quorum_error() {
    let err = merge_packets(&[], &MergePolicy::default()).unwrap_err();
    assert!(
        matches!(err, CircuitError::ShardQuorum { merged: 0, .. }),
        "{err}"
    );
    let err = merge_packet_texts(&[], &MergePolicy::default()).unwrap_err();
    assert!(matches!(err, CircuitError::ShardQuorum { .. }), "{err}");
}

#[test]
fn single_shard_merge_equals_the_single_process_study() {
    let cfg = config(1);
    let packet = run_shard(&cfg, 0, 2).unwrap();
    let outcome = merge_packets(&[packet], &MergePolicy::default()).unwrap();

    let tb = cfg.testbench().unwrap();
    let study = two_stage_study_seeded(tb.as_ref(), cfg.n_early, cfg.n_late, cfg.seed, 3).unwrap();
    let (ref_early, ref_late) = study_reference_stats(&study);

    // Bit-exact: the shard accumulated the same exact sums the
    // single-process run does.
    assert_eq!(
        outcome.early.moments().unwrap(),
        ref_early.moments().unwrap()
    );
    assert_eq!(outcome.late.moments().unwrap(), ref_late.moments().unwrap());
    assert!(outcome.coverage.is_complete());
}

#[test]
fn partitions_of_1_2_and_7_merge_bit_exactly() {
    // The N=1 "partition" is the oracle; 2- and 7-way partitions (run at
    // varying thread counts) must reduce to the same bits.
    let reference = {
        let cfg = config(1);
        let packet = run_shard(&cfg, 0, 1).unwrap();
        let outcome = merge_packets(&[packet], &MergePolicy::default()).unwrap();
        (
            outcome.early.moments().unwrap(),
            outcome.late.moments().unwrap(),
        )
    };
    for (shards, threads) in [(2usize, 3usize), (7, 2)] {
        let cfg = config(shards);
        let packets: Vec<_> = (0..shards)
            .map(|i| run_shard(&cfg, i, threads + i % 2).unwrap())
            .collect();
        let outcome = merge_packets(&packets, &MergePolicy::default()).unwrap();
        assert_eq!(
            outcome.early.moments().unwrap(),
            reference.0,
            "{shards}-way early moments diverged"
        );
        assert_eq!(
            outcome.late.moments().unwrap(),
            reference.1,
            "{shards}-way late moments diverged"
        );
        assert_eq!(outcome.coverage.merged, shards);
        assert!(outcome.coverage.is_complete());
    }
}

#[test]
fn merge_order_does_not_change_a_bit() {
    let cfg = config(3);
    let mut packets: Vec<_> = (0..3).map(|i| run_shard(&cfg, i, 1).unwrap()).collect();
    let forward = merge_packets(&packets, &MergePolicy::default()).unwrap();
    packets.reverse();
    let backward = merge_packets(&packets, &MergePolicy::default()).unwrap();
    assert_eq!(
        forward.late.moments().unwrap(),
        backward.late.moments().unwrap()
    );
    assert_eq!(
        forward.early.moments().unwrap(),
        backward.early.moments().unwrap()
    );
}

#[test]
fn duplicate_packets_dedupe_and_mismatched_configs_reject() {
    let cfg = config(2);
    let p0 = run_shard(&cfg, 0, 1).unwrap();
    let p1 = run_shard(&cfg, 1, 1).unwrap();

    // Identical duplicate collapses; the reduction is unchanged.
    let deduped = merge_packets(
        &[p0.clone(), p1.clone(), p0.clone()],
        &MergePolicy::default(),
    )
    .unwrap();
    assert_eq!(deduped.coverage.duplicates, 1);
    let plain = merge_packets(&[p0.clone(), p1.clone()], &MergePolicy::default()).unwrap();
    assert_eq!(
        deduped.late.moments().unwrap(),
        plain.late.moments().unwrap()
    );

    // A packet from a different study (different seed → different config
    // hash) is incompatible, not silently mixed in.
    let mut other_cfg = config(2);
    other_cfg.seed = 777;
    let alien = run_shard(&other_cfg, 1, 1).unwrap();
    let err = merge_packets(&[p0, alien], &MergePolicy::default()).unwrap_err();
    assert!(
        matches!(err, CircuitError::PacketIncompatible { .. }),
        "{err}"
    );
}

#[test]
fn quorum_policy_gates_partial_merges() {
    let cfg = config(3);
    let p0 = run_shard(&cfg, 0, 1).unwrap();
    let p2 = run_shard(&cfg, 2, 1).unwrap();

    // Default policy: every shard or nothing.
    let err = merge_packets(&[p0.clone(), p2.clone()], &MergePolicy::default()).unwrap_err();
    assert!(
        matches!(
            err,
            CircuitError::ShardQuorum {
                merged: 2,
                required: 3,
                shard_count: 3
            }
        ),
        "{err}"
    );

    // min_shards = 2: degraded merge, widened-uncertainty accounting.
    let outcome = merge_packets(
        &[p0, p2],
        &MergePolicy {
            min_shards: Some(2),
        },
    )
    .unwrap();
    assert!(!outcome.coverage.is_complete());
    assert!(outcome.coverage.quorum_met());
    assert_eq!(outcome.coverage.missing, vec![1]);
    let expected = cfg.n_late as f64 / outcome.coverage.observed_late as f64;
    assert!((outcome.coverage.inflation - expected).abs() < 1e-15);
}

#[test]
fn truncated_packet_text_is_a_typed_corruption() {
    let cfg = config(2);
    let p0 = run_shard(&cfg, 0, 1).unwrap();
    let p1 = run_shard(&cfg, 1, 1).unwrap();
    let full = p1.to_json();
    let truncated = full[..full.len() / 2].to_string();
    let texts = vec![
        ("packets/shard-0.json".to_string(), p0.to_json()),
        ("packets/shard-1.json".to_string(), truncated),
    ];
    // Corruption sank the default quorum: the root cause surfaces.
    let err = merge_packet_texts(&texts, &MergePolicy::default()).unwrap_err();
    assert!(matches!(err, CircuitError::PacketCorrupt { .. }), "{err}");

    // Under a quorum of 1 the corrupt packet is excluded, counted and
    // attributed to its shard index from the file name.
    let outcome = merge_packet_texts(
        &texts,
        &MergePolicy {
            min_shards: Some(1),
        },
    )
    .unwrap();
    assert_eq!(outcome.coverage.merged, 1);
    assert_eq!(outcome.coverage.corrupt, vec![1]);
}

// ---------------------------------------------------------------------------
// End-to-end chaos through the bmf binary
// ---------------------------------------------------------------------------

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("bmf-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn bmf() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_bmf"));
    cmd.arg("--log-level").arg("error");
    cmd
}

/// `bmf shard` writing one slice of the small test study.
fn shard_cmd(dir: &TempDir, index: usize, shards: usize, out: &str) -> Command {
    let mut cmd = bmf();
    cmd.args([
        "shard",
        "--circuit",
        "opamp",
        "--n-early",
        "35",
        "--n-late",
        "14",
        "--seed",
        "2015",
        "--retry-attempts",
        "25",
        "--threads",
        "2",
    ]);
    cmd.arg("--index").arg(format!("{index}/{shards}"));
    cmd.arg("--out").arg(dir.path(out));
    cmd
}

fn exit_code(output: &std::process::Output) -> i32 {
    output.status.code().unwrap_or(-1)
}

#[test]
fn cli_kill_and_resume_merge_is_bit_identical_to_uninterrupted() {
    let dir = TempDir::new("kill-resume");

    // Uninterrupted 3-shard study → reference moments CSV.
    for i in 0..3 {
        let out = shard_cmd(&dir, i, 3, &format!("ref-{i}.json"))
            .output()
            .unwrap();
        assert_eq!(
            exit_code(&out),
            0,
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = bmf()
        .args(["merge", "--threads", "2"])
        .arg("--packet")
        .arg(dir.path("ref-0.json"))
        .arg("--packet")
        .arg(dir.path("ref-1.json"))
        .arg("--packet")
        .arg(dir.path("ref-2.json"))
        .arg("--out")
        .arg(dir.path("reference.csv"))
        .output()
        .unwrap();
    assert_eq!(
        exit_code(&out),
        0,
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Chaos run: shard 1 is killed in the window between simulation and
    // the atomic packet rename.
    for i in [0usize, 2] {
        let out = shard_cmd(&dir, i, 3, &format!("run-{i}.json"))
            .output()
            .unwrap();
        assert_eq!(exit_code(&out), 0);
    }
    let killed = shard_cmd(&dir, 1, 3, "run-1.json")
        .env("BMF_SHARD_KILL", "1")
        .output()
        .unwrap();
    assert!(!killed.status.success(), "kill hook must not exit cleanly");
    assert!(
        !std::path::Path::new(&dir.path("run-1.json")).exists(),
        "a killed shard must leave no packet behind"
    );

    // Resume: re-run only the dead shard, merge all three.
    let out = shard_cmd(&dir, 1, 3, "run-1.json").output().unwrap();
    assert_eq!(
        exit_code(&out),
        0,
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = bmf()
        .args(["merge", "--threads", "2"])
        .arg("--packet")
        .arg(dir.path("run-0.json"))
        .arg("--packet")
        .arg(dir.path("run-1.json"))
        .arg("--packet")
        .arg(dir.path("run-2.json"))
        .arg("--out")
        .arg(dir.path("resumed.csv"))
        .output()
        .unwrap();
    assert_eq!(
        exit_code(&out),
        0,
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let reference = std::fs::read(dir.path("reference.csv")).unwrap();
    let resumed = std::fs::read(dir.path("resumed.csv")).unwrap();
    assert_eq!(reference, resumed, "kill-and-resume changed the bits");
}

#[test]
fn cli_corrupt_packet_is_exit_1_with_a_checksum_message() {
    let dir = TempDir::new("corrupt");
    for i in 0..2 {
        let out = shard_cmd(&dir, i, 2, &format!("p{i}.json"))
            .output()
            .unwrap();
        assert_eq!(exit_code(&out), 0);
    }
    // Bit-flip one character inside the payload (not the framing).
    let text = std::fs::read_to_string(dir.path("p1.json")).unwrap();
    let pos = text.find("\"retries\":").unwrap() + "\"retries\":".len();
    let mut bytes = text.into_bytes();
    // A digit stays a digit so the JSON still parses; only the checksum
    // catches the tamper.
    bytes[pos] = if bytes[pos] == b'9' {
        b'8'
    } else {
        bytes[pos] + 1
    };
    std::fs::write(dir.path("p1.json"), &bytes).unwrap();

    let out = bmf()
        .args(["merge", "--threads", "1"])
        .arg("--packet")
        .arg(dir.path("p0.json"))
        .arg("--packet")
        .arg(dir.path("p1.json"))
        .arg("--out")
        .arg(dir.path("m.csv"))
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 1, "corrupt packet is a runtime error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checksum") || stderr.contains("corrupt"),
        "stderr must name the corruption: {stderr}"
    );
}

#[test]
fn cli_quorum_and_degraded_exit_codes() {
    let dir = TempDir::new("exit-codes");
    for i in [0usize, 2] {
        let out = shard_cmd(&dir, i, 3, &format!("p{i}.json"))
            .output()
            .unwrap();
        assert_eq!(exit_code(&out), 0);
    }

    // Missing shard, full-coverage policy → strict refusal (3).
    let out = bmf()
        .args(["merge", "--threads", "1"])
        .arg("--packet")
        .arg(dir.path("p0.json"))
        .arg("--packet")
        .arg(dir.path("p2.json"))
        .output()
        .unwrap();
    assert_eq!(
        exit_code(&out),
        3,
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Same packets under --min-shards 2 → degraded success (4), with
    // the moments still written.
    let out = bmf()
        .args(["merge", "--threads", "1", "--min-shards", "2"])
        .arg("--packet")
        .arg(dir.path("p0.json"))
        .arg("--packet")
        .arg(dir.path("p2.json"))
        .arg("--out")
        .arg(dir.path("degraded.csv"))
        .output()
        .unwrap();
    assert_eq!(
        exit_code(&out),
        4,
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::path::Path::new(&dir.path("degraded.csv")).exists());

    // --strict upgrades the degraded merge to a refusal (3).
    let out = bmf()
        .args(["merge", "--threads", "1", "--min-shards", "2", "--strict"])
        .arg("--packet")
        .arg(dir.path("p0.json"))
        .arg("--packet")
        .arg(dir.path("p2.json"))
        .output()
        .unwrap();
    assert_eq!(
        exit_code(&out),
        3,
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Bad flags → usage error (2).
    let out = bmf()
        .args(["merge", "--min-shards", "zero"])
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 2);
    let out = bmf()
        .args([
            "shard",
            "--circuit",
            "opamp",
            "--n-early",
            "35",
            "--n-late",
            "14",
            "--index",
            "9/3",
            "--out",
        ])
        .arg(dir.path("x.json"))
        .output()
        .unwrap();
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn cli_report_write_is_atomic_and_complete() {
    let dir = TempDir::new("atomic-report");
    let out = shard_cmd(&dir, 0, 1, "p0.json").output().unwrap();
    assert_eq!(exit_code(&out), 0);

    // Pre-existing garbage at the destination must be replaced by a
    // complete document — written via temp + rename, so a reader never
    // sees a prefix and no temp file survives.
    std::fs::write(dir.path("report.json"), "GARBAGE PREFIX").unwrap();
    let out = bmf()
        .args(["merge", "--threads", "1"])
        .arg("--packet")
        .arg(dir.path("p0.json"))
        .arg("--report")
        .arg(dir.path("report.json"))
        .arg("--out")
        .arg(dir.path("m.csv"))
        .output()
        .unwrap();
    assert_eq!(
        exit_code(&out),
        0,
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let report = std::fs::read_to_string(dir.path("report.json")).unwrap();
    assert!(report.starts_with('{') && report.trim_end().ends_with('}'));
    assert!(
        report.contains("\"shard\""),
        "report carries shard coverage"
    );
    let leftovers: Vec<_> = std::fs::read_dir(&dir.0)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".tmp-"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
}
