//! Property-based determinism tests for the parallel execution layer.
//!
//! The seed-derivation contract (`derive_seed(root, stream, index)`) must
//! make every parallel entry point **bit-identical** across thread counts:
//! parallelism is a wall-clock optimisation, never a statistical one.
//! Each property runs the same workload at 1, 2 and 7 threads and demands
//! exact equality of every floating-point bit.

use bmf_ams::circuits::adc::AdcTestbench;
use bmf_ams::circuits::monte_carlo::{run_monte_carlo_seeded, two_stage_study_seeded, Stage};
use bmf_ams::core::cv::CrossValidation;
use bmf_ams::core::experiment::{prepare, run_error_sweep_parallel, PreparedStudy, SweepConfig};
use bmf_ams::core::MomentEstimate;
use bmf_ams::linalg::{Matrix, Vector};
use bmf_ams::stats::MultivariateNormal;
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

fn synthetic(d: usize, n: usize, seed: u64) -> (MomentEstimate, Matrix) {
    let b = Matrix::from_fn(d, d, |i, j| ((i + 2 * j) % 5) as f64 / 5.0);
    let mut cov = b.mat_mul(&b.transpose()).expect("square");
    for i in 0..d {
        cov[(i, i)] += 1.0;
    }
    let early = MomentEstimate {
        mean: Vector::zeros(d),
        cov: cov.clone(),
    };
    let truth = MultivariateNormal::new(Vector::zeros(d), cov).expect("spd");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let samples = truth.sample_matrix(&mut rng, n);
    (early, samples)
}

/// One prepared ADC study shared by all sweep cases (building it per case
/// would dominate the test's runtime without exercising anything new).
fn shared_study() -> &'static PreparedStudy {
    static STUDY: OnceLock<PreparedStudy> = OnceLock::new();
    STUDY.get_or_init(|| {
        let tb = AdcTestbench::default_180nm();
        let study = two_stage_study_seeded(&tb, 30, 30, 9, 2).expect("study");
        let data = bmf_ams::core::experiment::TwoStageData {
            metric_names: study.metric_names.iter().map(|s| s.to_string()).collect(),
            early_nominal: study.early.nominal.clone(),
            early_samples: study.early.samples.clone(),
            late_nominal: study.late.nominal.clone(),
            late_samples: study.late.samples.clone(),
        };
        prepare(&data).expect("prepare")
    })
}

proptest! {
    /// CV grid selection is bit-identical for threads ∈ {1, 2, 7}.
    #[test]
    fn cv_selection_is_thread_count_invariant(
        seed in 0u64..10_000,
        n in 8usize..24,
    ) {
        let (early, late) = synthetic(2, n, seed ^ 0xA5A5);
        let cv = CrossValidation::with_repeats(
            vec![1.0, 10.0, 100.0],
            vec![4.0, 40.0],
            3,
            2,
        ).expect("cv");
        let reference = cv.select_seeded(&early, &late, seed, THREAD_COUNTS[0]).expect("select");
        for &t in &THREAD_COUNTS[1..] {
            let sel = cv.select_seeded(&early, &late, seed, t).expect("select");
            prop_assert_eq!(sel.kappa0.to_bits(), reference.kappa0.to_bits());
            prop_assert_eq!(sel.nu0.to_bits(), reference.nu0.to_bits());
            prop_assert_eq!(sel.score.to_bits(), reference.score.to_bits());
            prop_assert_eq!(&sel, &reference);
        }
    }

    /// Refined (zoomed) CV selection is bit-identical for threads ∈ {1, 2, 7}.
    #[test]
    fn refined_cv_selection_is_thread_count_invariant(
        seed in 0u64..10_000,
    ) {
        let (early, late) = synthetic(2, 16, seed ^ 0x5A5A);
        let cv = CrossValidation::with_repeats(
            vec![1.0, 100.0],
            vec![4.0, 400.0],
            2,
            2,
        ).expect("cv");
        let reference = cv
            .select_refined_seeded(&early, &late, 3, seed, THREAD_COUNTS[0])
            .expect("refined");
        for &t in &THREAD_COUNTS[1..] {
            let sel = cv.select_refined_seeded(&early, &late, 3, seed, t).expect("refined");
            prop_assert_eq!(&sel, &reference);
        }
    }

    /// Seeded Monte Carlo generation is bit-identical for threads ∈ {1, 2, 7}.
    #[test]
    fn monte_carlo_is_thread_count_invariant(
        seed in 0u64..10_000,
        n in 1usize..20,
    ) {
        let tb = AdcTestbench::default_180nm();
        let reference = run_monte_carlo_seeded(
            &tb, Stage::PostLayout, n, seed, THREAD_COUNTS[0],
        ).expect("mc");
        for &t in &THREAD_COUNTS[1..] {
            let data = run_monte_carlo_seeded(&tb, Stage::PostLayout, n, seed, t).expect("mc");
            prop_assert_eq!(&data.samples, &reference.samples);
            prop_assert_eq!(&data.nominal, &reference.nominal);
        }
    }

    /// The repetition-parallel error sweep is bit-identical for
    /// threads ∈ {1, 2, 7}, including when threads exceed repetitions.
    #[test]
    fn error_sweep_is_thread_count_invariant(
        seed in 0u64..10_000,
    ) {
        let config = SweepConfig {
            sample_sizes: vec![8],
            repetitions: 2,
            cv: CrossValidation::new(vec![1.0, 100.0], vec![10.0, 100.0], 2).expect("cv"),
            seed,
        };
        let prepared = shared_study();
        let reference = run_error_sweep_parallel(prepared, &config, THREAD_COUNTS[0])
            .expect("sweep");
        for &t in &THREAD_COUNTS[1..] {
            let result = run_error_sweep_parallel(prepared, &config, t).expect("sweep");
            prop_assert_eq!(result.rows.len(), reference.rows.len());
            for (a, b) in result.rows.iter().zip(reference.rows.iter()) {
                prop_assert_eq!(a.n, b.n);
                prop_assert_eq!(a.mle_mean_err.to_bits(), b.mle_mean_err.to_bits());
                prop_assert_eq!(a.bmf_mean_err.to_bits(), b.bmf_mean_err.to_bits());
                prop_assert_eq!(a.mle_cov_err.to_bits(), b.mle_cov_err.to_bits());
                prop_assert_eq!(a.bmf_cov_err.to_bits(), b.bmf_cov_err.to_bits());
                prop_assert_eq!(a.mean_kappa0.to_bits(), b.mean_kappa0.to_bits());
            }
        }
    }
}
