//! Cross-crate integration tests: circuit substrate → estimator pipeline.

use bmf_ams::circuits::adc::AdcTestbench;
use bmf_ams::circuits::monte_carlo::{run_monte_carlo, two_stage_study, Stage};
use bmf_ams::circuits::opamp::OpAmpTestbench;
use bmf_ams::core::experiment::{
    cost_reduction, prepare, run_error_sweep, ErrorKind, SweepConfig, TwoStageData,
};
use bmf_ams::core::prelude::*;
use bmf_ams::linalg::Matrix;
use bmf_ams::stats::descriptive;
use rand::SeedableRng;

fn study_data<T: bmf_ams::circuits::monte_carlo::Testbench>(
    tb: &T,
    n: usize,
    seed: u64,
) -> TwoStageData {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let study = two_stage_study(tb, n, n, &mut rng).expect("monte carlo");
    TwoStageData {
        metric_names: study.metric_names.iter().map(|s| s.to_string()).collect(),
        early_nominal: study.early.nominal.clone(),
        early_samples: study.early.samples.clone(),
        late_nominal: study.late.nominal.clone(),
        late_samples: study.late.samples.clone(),
    }
}

#[test]
fn opamp_full_pipeline_beats_mle_at_small_n() {
    let tb = OpAmpTestbench::default_45nm();
    let data = study_data(&tb, 600, 1);
    let prepared = prepare(&data).expect("prepare");
    let config = SweepConfig {
        sample_sizes: vec![8],
        repetitions: 8,
        cv: CrossValidation::default(),
        seed: 2,
    };
    let result = run_error_sweep(&prepared, &config).expect("sweep");
    let row = &result.rows[0];
    assert!(
        row.bmf_cov_err < 0.7 * row.mle_cov_err,
        "BMF covariance error ({}) should be well below MLE ({}) at n = 8",
        row.bmf_cov_err,
        row.mle_cov_err
    );
}

#[test]
fn adc_full_pipeline_beats_mle_in_both_moments() {
    let tb = AdcTestbench::default_180nm();
    let data = study_data(&tb, 400, 3);
    let prepared = prepare(&data).expect("prepare");
    let config = SweepConfig {
        sample_sizes: vec![8],
        repetitions: 8,
        cv: CrossValidation::default(),
        seed: 4,
    };
    let result = run_error_sweep(&prepared, &config).expect("sweep");
    let row = &result.rows[0];
    assert!(row.bmf_cov_err < row.mle_cov_err);
    assert!(row.bmf_mean_err < row.mle_mean_err);
}

#[test]
fn cost_reduction_exceeds_one_at_small_n() {
    let tb = AdcTestbench::default_180nm();
    let data = study_data(&tb, 400, 5);
    let prepared = prepare(&data).expect("prepare");
    let config = SweepConfig {
        sample_sizes: vec![8, 32, 128],
        repetitions: 6,
        cv: CrossValidation::default(),
        seed: 6,
    };
    let result = run_error_sweep(&prepared, &config).expect("sweep");
    let cr = cost_reduction(&result, ErrorKind::Covariance);
    assert!(
        cr[0].1 > 2.0 || cr[0].1.is_infinite(),
        "covariance cost reduction at n = 8 should be > 2x, got {}",
        cr[0].1
    );
}

#[test]
fn pipeline_is_fully_reproducible_from_seeds() {
    let tb = OpAmpTestbench::default_45nm();
    let a = study_data(&tb, 80, 7);
    let b = study_data(&tb, 80, 7);
    assert_eq!(a.early_samples, b.early_samples);
    assert_eq!(a.late_samples, b.late_samples);
    assert_eq!(a.early_nominal, b.early_nominal);

    let config = SweepConfig {
        sample_sizes: vec![8],
        repetitions: 3,
        cv: CrossValidation::default(),
        seed: 8,
    };
    let ra = run_error_sweep(&prepare(&a).expect("prep"), &config).expect("sweep");
    let rb = run_error_sweep(&prepare(&b).expect("prep"), &config).expect("sweep");
    assert_eq!(ra, rb);
}

#[test]
fn normalised_early_stage_is_isotropic() {
    // The §4.1 guarantee, verified on real circuit data (paper Fig. 1).
    let tb = OpAmpTestbench::default_45nm();
    let data = study_data(&tb, 800, 9);
    let prepared = prepare(&data).expect("prepare");
    for j in 0..5 {
        let var = prepared.early_moments.cov[(j, j)];
        assert!(
            (var - 1.0).abs() < 0.05,
            "early metric {j} normalised variance = {var}"
        );
    }
    assert!(
        prepared.early_moments.mean.norm_inf() < 0.3,
        "early normalised mean = {}",
        prepared.early_moments.mean
    );
}

#[test]
fn opamp_signature_mean_prior_weak_cov_prior_strong() {
    // §5.1's qualitative finding, on our substrate: at small n the CV
    // chooses κ₀ ≪ ν₀ for the op-amp.
    let tb = OpAmpTestbench::default_45nm();
    let data = study_data(&tb, 600, 10);
    let prepared = prepare(&data).expect("prepare");
    let config = SweepConfig {
        sample_sizes: vec![32],
        repetitions: 10,
        cv: CrossValidation::default(),
        seed: 11,
    };
    let result = run_error_sweep(&prepared, &config).expect("sweep");
    let row = &result.rows[0];
    assert!(
        row.mean_nu0 > 5.0 * row.mean_kappa0,
        "expected nu0 ({}) >> kappa0 ({}) for the op-amp",
        row.mean_nu0,
        row.mean_kappa0
    );
}

#[test]
fn physical_unit_round_trip_through_the_pipeline() {
    // Estimate in normalised space, invert to physical units, verify the
    // result sits near the raw late-pool statistics.
    let tb = AdcTestbench::default_180nm();
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let early = run_monte_carlo(&tb, Stage::Schematic, 300, &mut rng).expect("early");
    let late = run_monte_carlo(&tb, Stage::PostLayout, 300, &mut rng).expect("late");

    let early_sd = descriptive::column_stddevs(&early.samples).expect("sd");
    let early_t = ShiftScale::from_nominal_and_early_sd(&early.nominal, &early_sd).expect("t");
    let late_t = ShiftScale::from_nominal_and_early_sd(&late.nominal, &early_sd).expect("t");

    let early_norm = early_t.apply_samples(&early.samples).expect("norm");
    let late_norm = late_t.apply_samples(&late.samples).expect("norm");
    let early_moments = MomentEstimate {
        mean: descriptive::mean_vector(&early_norm).expect("mean"),
        cov: descriptive::covariance_mle(&early_norm).expect("cov"),
    };
    let few = Matrix::from_fn(16, 5, |i, j| late_norm[(i, j)]);
    let sel = CrossValidation::default()
        .select(&early_moments, &few, &mut rng)
        .expect("cv");
    let prior =
        NormalWishartPrior::from_early_moments(&early_moments, sel.kappa0, sel.nu0).expect("prior");
    let est = BmfEstimator::new(prior)
        .expect("est")
        .estimate(&few)
        .expect("map");
    let physical = late_t.invert_moments(&est.map).expect("invert");

    let raw_mean = descriptive::mean_vector(&late.samples).expect("raw mean");
    let raw_sd = descriptive::column_stddevs(&late.samples).expect("raw sd");
    for j in 0..5 {
        let err = (physical.mean[j] - raw_mean[j]).abs();
        assert!(
            err < 3.0 * raw_sd[j],
            "metric {j}: physical mean {} vs raw {} (sd {})",
            physical.mean[j],
            raw_mean[j],
            raw_sd[j]
        );
        assert!(physical.cov[(j, j)] > 0.0);
    }
}

#[test]
fn yield_from_bmf_is_closer_than_mle_on_average() {
    // The downstream task: yield against a spec box. Averaged over several
    // few-sample draws, |BMF − reference| ≤ |MLE − reference|.
    let tb = OpAmpTestbench::default_45nm();
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let early = run_monte_carlo(&tb, Stage::Schematic, 500, &mut rng).expect("early");
    let late = run_monte_carlo(&tb, Stage::PostLayout, 500, &mut rng).expect("late");

    let specs = SpecLimits::new(
        vec![Some(82.0), Some(5.0e3), None, Some(-5e-3), Some(64.0)],
        vec![None, None, Some(130e-6), Some(5e-3), None],
    )
    .expect("specs");
    let mut passes = 0usize;
    for i in 0..late.samples.nrows() {
        if specs.passes(&late.samples.row_vec(i)) {
            passes += 1;
        }
    }
    let reference = passes as f64 / late.samples.nrows() as f64;
    assert!(
        reference > 0.05 && reference < 0.999,
        "reference = {reference}"
    );

    let early_sd = descriptive::column_stddevs(&early.samples).expect("sd");
    let early_t = ShiftScale::from_nominal_and_early_sd(&early.nominal, &early_sd).expect("t");
    let late_t = ShiftScale::from_nominal_and_early_sd(&late.nominal, &early_sd).expect("t");
    let early_norm = early_t.apply_samples(&early.samples).expect("norm");
    let late_norm = late_t.apply_samples(&late.samples).expect("norm");
    let early_moments = MomentEstimate {
        mean: descriptive::mean_vector(&early_norm).expect("mean"),
        cov: descriptive::covariance_mle(&early_norm).expect("cov"),
    };

    let reps = 5;
    let n = 12;
    let mut bmf_abs = 0.0;
    let mut mle_abs = 0.0;
    for r in 0..reps {
        let offset = r * n;
        let few = Matrix::from_fn(n, 5, |i, j| late_norm[(offset + i, j)]);
        let sel = CrossValidation::default()
            .select(&early_moments, &few, &mut rng)
            .expect("cv");
        let prior = NormalWishartPrior::from_early_moments(&early_moments, sel.kappa0, sel.nu0)
            .expect("prior");
        let bmf = BmfEstimator::new(prior)
            .expect("e")
            .estimate(&few)
            .expect("map");
        let bmf_phys = late_t.invert_moments(&bmf.map).expect("invert");
        let y_bmf =
            bmf_ams::core::yield_estimation::estimate_yield(&bmf_phys, &specs, 20_000, &mut rng)
                .expect("yield");
        bmf_abs += (y_bmf.yield_fraction - reference).abs();

        let mle = MleEstimator::new().estimate(&few).expect("mle");
        if let Ok(mle_phys) = late_t.invert_moments(&mle) {
            match bmf_ams::core::yield_estimation::estimate_yield(
                &mle_phys, &specs, 20_000, &mut rng,
            ) {
                Ok(y) => mle_abs += (y.yield_fraction - reference).abs(),
                Err(_) => mle_abs += 1.0, // singular MLE covariance: max error
            }
        } else {
            mle_abs += 1.0;
        }
    }
    assert!(
        bmf_abs <= mle_abs * 1.2,
        "BMF total yield error {bmf_abs} vs MLE {mle_abs}"
    );
}
