//! Integration tests pinning the implementation to the paper's equations,
//! exercised across crate boundaries on realistic data.

use bmf_ams::core::prelude::*;
use bmf_ams::linalg::{Cholesky, Matrix, Vector};
use bmf_ams::stats::{descriptive, MultivariateNormal};
use rand::SeedableRng;

fn early() -> MomentEstimate {
    MomentEstimate {
        mean: Vector::from_slice(&[0.5, -0.5, 0.0]),
        cov: Matrix::from_rows(&[&[1.0, 0.3, 0.1], &[0.3, 0.8, -0.2], &[0.1, -0.2, 1.2]]).unwrap(),
    }
}

fn samples(n: usize, seed: u64) -> Matrix {
    let truth = MultivariateNormal::new(Vector::from_slice(&[0.6, -0.4, 0.1]), early().cov.clone())
        .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    truth.sample_matrix(&mut rng, n)
}

/// Eq. 31: μ_MAP = (κ₀ μ_E + n X̄)/(κ₀ + n), verified element-wise.
#[test]
fn eq31_map_mean_formula() {
    let s = samples(10, 1);
    let xbar = descriptive::mean_vector(&s).unwrap();
    for &kappa0 in &[0.5, 4.0, 100.0] {
        let prior = NormalWishartPrior::from_early_moments(&early(), kappa0, 10.0).unwrap();
        let est = BmfEstimator::new(prior).unwrap().estimate(&s).unwrap();
        for j in 0..3 {
            let expected = (kappa0 * early().mean[j] + 10.0 * xbar[j]) / (kappa0 + 10.0);
            assert!(
                (est.map.mean[j] - expected).abs() < 1e-12,
                "kappa0 = {kappa0}, j = {j}"
            );
        }
    }
}

/// Eq. 32: Σ_MAP = [(ν₀−d)Σ_E + S + κ₀n/(κ₀+n)(μ_E−X̄)(μ_E−X̄)ᵀ]/(ν₀+n−d),
/// verified entry-wise against a direct evaluation.
#[test]
fn eq32_map_covariance_formula() {
    let n = 7usize;
    let d = 3.0;
    let s = samples(n, 2);
    let xbar = descriptive::mean_vector(&s).unwrap();
    let scatter = descriptive::scatter_about(&s, &xbar).unwrap();
    let kappa0 = 3.0;
    let nu0 = 9.0;

    let diff = &early().mean - &xbar;
    let outer = Matrix::outer(&diff) * (kappa0 * n as f64 / (kappa0 + n as f64));
    let mut numerator = early().cov * (nu0 - d);
    numerator += &scatter;
    numerator += &outer;
    let expected = numerator / (nu0 + n as f64 - d);

    let prior = NormalWishartPrior::from_early_moments(&early(), kappa0, nu0).unwrap();
    let est = BmfEstimator::new(prior).unwrap().estimate(&s).unwrap();
    assert!(est.map.cov.max_abs_diff(&expected).unwrap() < 1e-12);
}

/// Eq. 33/35: dogmatic prior (κ₀, ν₀ → ∞) pins the MAP estimate to the
/// early-stage moments.
#[test]
fn eq33_35_dogmatic_limits() {
    let s = samples(6, 3);
    let prior = NormalWishartPrior::from_early_moments(&early(), 1e10, 1e10).unwrap();
    let est = BmfEstimator::new(prior).unwrap().estimate(&s).unwrap();
    assert!((&est.map.mean - &early().mean).norm2() < 1e-6);
    assert!(est.map.cov.max_abs_diff(&early().cov).unwrap() < 1e-6);
}

/// Eq. 34/36: uninformative prior (κ₀ → 0, ν₀ → d) recovers MLE.
#[test]
fn eq34_36_uninformative_limits() {
    let s = samples(9, 4);
    let prior = NormalWishartPrior::from_early_moments(&early(), 1e-10, 3.0 + 1e-10).unwrap();
    let bmf = BmfEstimator::new(prior).unwrap().estimate(&s).unwrap();
    let mle = MleEstimator::new().estimate(&s).unwrap();
    assert!((&bmf.map.mean - &mle.mean).norm2() < 1e-7);
    assert!(bmf.map.cov.max_abs_diff(&mle.cov).unwrap() < 1e-7);
}

/// Eq. 27/28: posterior counts are ν_n = ν₀ + n, κ_n = κ₀ + n.
#[test]
fn eq27_28_posterior_counts() {
    let s = samples(11, 5);
    let prior = NormalWishartPrior::from_early_moments(&early(), 2.5, 7.25).unwrap();
    let est = BmfEstimator::new(prior).unwrap().estimate(&s).unwrap();
    assert!((est.posterior.kappa_n - 13.5).abs() < 1e-12);
    assert!((est.posterior.nu_n - 18.25).abs() < 1e-12);
}

/// Eq. 15/16: the prior mode sits at (μ₀, (ν₀−d)T₀) — and maximises the
/// joint density (checked numerically through the stats crate).
#[test]
fn eq15_16_prior_mode() {
    let prior = NormalWishartPrior::from_early_moments(&early(), 4.0, 12.0).unwrap();
    let nw = prior.to_normal_wishart().unwrap();
    let (mu_m, lambda_m) = nw.mode();
    assert!((&mu_m - &early().mean).norm2() < 1e-12);
    // Λ_M = Λ_E  ⇔  Λ_M · Σ_E = I.
    let prod = lambda_m.mat_mul(&early().cov).unwrap();
    assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);

    let peak = nw.ln_pdf(&mu_m, &lambda_m).unwrap();
    let mut perturbed = lambda_m.clone();
    perturbed[(0, 1)] += 0.05;
    perturbed[(1, 0)] += 0.05;
    if Cholesky::new(&perturbed).is_ok() {
        assert!(nw.ln_pdf(&mu_m, &perturbed).unwrap() <= peak);
    }
}

/// Eq. 9: the likelihood used by the CV scoring equals the product of the
/// per-sample Gaussian densities.
#[test]
fn eq9_likelihood_factorises() {
    let s = samples(5, 6);
    let model = MultivariateNormal::new(early().mean.clone(), early().cov.clone()).unwrap();
    let joint = model.ln_likelihood(&s).unwrap();
    let manual: f64 = (0..5).map(|i| model.ln_pdf(&s.row_vec(i)).unwrap()).sum();
    assert!((joint - manual).abs() < 1e-10);
}

/// Eq. 37/38 behave as norms: zero at equality, triangle inequality.
#[test]
fn eq37_38_error_criteria_are_norms() {
    let a = early();
    let mut b = early();
    b.mean[0] += 1.0;
    b.cov[(0, 0)] += 0.5;
    let mut c = early();
    c.mean[0] += 2.0;
    c.cov[(0, 0)] += 1.0;

    assert_eq!(error_mean(&a, &a).unwrap(), 0.0);
    assert_eq!(error_cov(&a, &a).unwrap(), 0.0);
    // Triangle: d(a, c) <= d(a, b) + d(b, c).
    assert!(
        error_mean(&a, &c).unwrap()
            <= error_mean(&a, &b).unwrap() + error_mean(&b, &c).unwrap() + 1e-12
    );
    assert!(
        error_cov(&a, &c).unwrap()
            <= error_cov(&a, &b).unwrap() + error_cov(&b, &c).unwrap() + 1e-12
    );
}

/// The posterior predictive's covariance approaches the estimated Σ as
/// n grows (the Student-t widening vanishes).
#[test]
fn predictive_tightens_with_data() {
    let few = samples(6, 7);
    let many = samples(600, 7);
    let prior = NormalWishartPrior::from_early_moments(&early(), 2.0, 8.0).unwrap();
    let estimator = BmfEstimator::new(prior).unwrap();

    let widen = |s: &Matrix| -> f64 {
        let est = estimator.estimate(s).unwrap();
        let pred = est.predictive().unwrap();
        let pred_cov = pred.covariance().expect("dof > 2");
        // Ratio of predictive to MAP covariance scale (1 = no widening).
        pred_cov.norm_frobenius() / est.map.cov.norm_frobenius()
    };
    let w_few = widen(&few);
    let w_many = widen(&many);
    assert!(w_few > w_many, "widening {w_few} should exceed {w_many}");
    assert!((w_many - 1.0).abs() < 0.02);
}
