//! Statistical-health layer contract: the pipeline's `HealthReport` must
//! flag a prior that genuinely conflicts with the late-stage data while
//! staying quiet on a clean run, the drift monitor must raise alerts only
//! when the stream really moves, and none of the observability layers —
//! health, drift, dashboard rendering — may perturb a single bit of the
//! numeric estimates at any thread count.
//!
//! The recorder state is process-global, so every test serialises on one
//! mutex and resets the state on entry (same discipline as
//! `tests/observability.rs`).

use bmf_ams::core::drift::{DriftConfig, DriftMonitor};
use bmf_ams::core::pipeline::RobustPipeline;
use bmf_ams::core::MomentEstimate;
use bmf_ams::linalg::{Matrix, Vector};
use bmf_ams::obs::dashboard::{render, DashboardData};
use bmf_ams::obs::{HardwareContext, Severity};
use bmf_ams::stats::MultivariateNormal;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard, PoisonError};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Serialises tests touching the process-global recorder.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    bmf_ams::obs::reset();
    guard
}

/// Early-stage model plus `n` late samples drawn from that same model
/// (optionally mean-shifted by `shift_sigmas` standard deviations in
/// every coordinate — the "conflicting prior" scenario).
fn study(d: usize, n: usize, seed: u64, shift_sigmas: f64) -> (MomentEstimate, Matrix) {
    let b = Matrix::from_fn(d, d, |i, j| ((i + 2 * j) % 5) as f64 / 5.0);
    let mut cov = b.mat_mul(&b.transpose()).expect("square");
    for i in 0..d {
        cov[(i, i)] += 1.0;
    }
    let early = MomentEstimate {
        mean: Vector::zeros(d),
        cov: cov.clone(),
    };
    let late_mean = Vector::from_fn(d, |i| shift_sigmas * cov[(i, i)].sqrt());
    let truth = MultivariateNormal::new(late_mean, cov).expect("spd");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let samples = truth.sample_matrix(&mut rng, n);
    (early, samples)
}

fn assert_moments_bits_eq(a: &MomentEstimate, b: &MomentEstimate, what: &str) {
    assert_eq!(a.dim(), b.dim(), "{what}: dimension");
    for i in 0..a.dim() {
        assert_eq!(
            a.mean[i].to_bits(),
            b.mean[i].to_bits(),
            "{what}: mean[{i}]"
        );
        for j in 0..a.dim() {
            assert_eq!(
                a.cov[(i, j)].to_bits(),
                b.cov[(i, j)].to_bits(),
                "{what}: cov[({i},{j})]"
            );
        }
    }
}

#[test]
fn clean_run_reports_no_prior_data_conflict() {
    let _g = obs_lock();
    let (early, late) = study(3, 24, 101, 0.0);
    let (_, report) = RobustPipeline::new()
        .with_seed(5)
        .with_threads(2)
        .estimate(&early, &late)
        .expect("estimate");
    let health = report.health.expect("health report on MAP success");
    assert_eq!(
        health.conflict.severity,
        Severity::Ok,
        "clean data must not flag a prior-data conflict (p = {})",
        health.conflict.p_value
    );
    assert!(health.conflict.p_value > 5e-3);
    assert_eq!(health.spectrum.severity, Severity::Ok);
    assert_eq!(health.data_quality.severity, Severity::Ok);
    assert_ne!(
        health.overall(),
        Severity::Critical,
        "clean run must never be critical: {}",
        health.summary()
    );
}

#[test]
fn conflicting_prior_is_flagged() {
    let _g = obs_lock();
    // Late-stage mean shifted 5 sigma from the early model in every
    // coordinate: the prior predictive should find this wildly unlikely.
    let (early, late) = study(3, 24, 101, 5.0);
    let (_, report) = RobustPipeline::new()
        .with_seed(5)
        .with_threads(2)
        .estimate(&early, &late)
        .expect("estimate");
    let health = report.health.expect("health report on success");
    assert_ne!(
        health.conflict.severity,
        Severity::Ok,
        "a 5-sigma prior offset must warn (p = {})",
        health.conflict.p_value
    );
    assert_ne!(health.overall(), Severity::Ok);
    assert!(
        health.conflict.mahalanobis_sq > 9.0,
        "Mahalanobis^2 {} should exceed the 3-sigma ballpark",
        health.conflict.mahalanobis_sq
    );
}

#[test]
fn estimates_bit_identical_with_health_drift_and_dashboard_active() {
    let _g = obs_lock();
    let (early, late) = study(3, 40, 77, 0.0);

    // Reference: recording off, nothing attached, one thread.
    let reference = RobustPipeline::new()
        .with_seed(11)
        .with_threads(1)
        .estimate(&early, &late)
        .expect("estimate")
        .0;

    for &threads in &THREAD_COUNTS {
        for active in [false, true] {
            bmf_ams::obs::reset();
            if active {
                bmf_ams::obs::enable();
            }
            let (est, report) = RobustPipeline::new()
                .with_seed(11)
                .with_threads(threads)
                .estimate(&early, &late)
                .expect("estimate");
            if active {
                // Exercise the full observability surface the CLI would:
                // drift-scan the late pool and render the dashboard.
                let mut monitor = DriftMonitor::new(
                    &early,
                    DriftConfig {
                        window: 8,
                        ..DriftConfig::default()
                    },
                )
                .expect("monitor");
                monitor.push_batch(&late).expect("push");
                let timeline = monitor.into_timeline();
                let snapshot = bmf_ams::obs::metrics::snapshot();
                let events = bmf_ams::obs::take_events();
                let hardware = HardwareContext::detect(threads);
                let html = render(&DashboardData {
                    title: "health test",
                    hardware: &hardware,
                    run: None,
                    events: &events,
                    event_log: &[],
                    flight_occupancy: 0,
                    flight_dump: None,
                    snapshot: &snapshot,
                    health: report.health.as_ref(),
                    shard: None,
                    fleet: None,
                    drift: Some(&timeline),
                    bench_history_json: None,
                    timeseries: &[],
                    alerts_json: None,
                    refresh_s: None,
                });
                assert!(html.to_ascii_lowercase().starts_with("<!doctype html"));
            }
            assert_moments_bits_eq(
                &est,
                &reference,
                &format!("threads={threads} active={active}"),
            );
        }
    }
    bmf_ams::obs::reset();
}

#[test]
fn drift_monitor_alerts_on_shifted_stream_and_counts_windows() {
    let _g = obs_lock();
    bmf_ams::obs::enable();
    let (early, steady) = study(3, 32, 9, 0.0);
    let (_, shifted) = study(3, 32, 10, 6.0);

    let before_windows = bmf_ams::obs::metrics::snapshot().counter("drift.windows");
    let mut monitor = DriftMonitor::new(
        &early,
        DriftConfig {
            window: 16,
            ..DriftConfig::default()
        },
    )
    .expect("monitor");
    monitor.push_batch(&steady).expect("steady batch");
    assert!(
        monitor.timeline().alerts.is_empty(),
        "steady stream must not alert: {:?}",
        monitor.timeline().alerts
    );
    monitor.push_batch(&shifted).expect("shifted batch");
    let timeline = monitor.into_timeline();
    assert_eq!(timeline.windows.len(), 4, "64 samples / window of 16");
    assert!(
        !timeline.alerts.is_empty(),
        "6-sigma shifted stream must raise a drift alert"
    );
    assert_ne!(timeline.overall(), Severity::Ok);
    // The first two (steady) windows stay Ok; the shifted ones do not.
    assert_eq!(timeline.windows[0].severity, Severity::Ok);
    assert_ne!(timeline.windows[3].severity, Severity::Ok);

    let snap = bmf_ams::obs::metrics::snapshot();
    assert_eq!(snap.counter("drift.windows") - before_windows, 4);
    assert!(snap.counter("drift.alerts") > 0);
    bmf_ams::obs::reset();
}

#[test]
fn dashboard_document_contains_every_section_and_blob() {
    let _g = obs_lock();
    let (early, late) = study(3, 24, 101, 0.0);
    let (_, report) = RobustPipeline::new()
        .with_seed(5)
        .with_threads(1)
        .estimate(&early, &late)
        .expect("estimate");
    let mut monitor = DriftMonitor::new(
        &early,
        DriftConfig {
            window: 8,
            ..DriftConfig::default()
        },
    )
    .expect("monitor");
    monitor.push_batch(&late).expect("push");
    let timeline = monitor.into_timeline();
    let snapshot = bmf_ams::obs::metrics::snapshot();
    let hardware = HardwareContext::detect(1);
    let bench = r#"{"entries":[{"timestamp_iso":"2026-01-01T00:00:00Z","quick":true,"hardware":{"detected_cores":8,"threads_used":2},"stages":{"cv_select_default_grid":1.5}}]}"#;
    let html = render(&DashboardData {
        title: "sections test",
        hardware: &hardware,
        run: None,
        events: &[],
        event_log: &[],
        flight_occupancy: 0,
        flight_dump: None,
        snapshot: &snapshot,
        health: report.health.as_ref(),
        shard: None,
        fleet: None,
        drift: Some(&timeline),
        bench_history_json: Some(bench),
        timeseries: &[],
        alerts_json: None,
        refresh_s: None,
    });
    for id in [
        "profile",
        "metrics",
        "health",
        "drift",
        "events",
        "bench",
        "health-data",
        "drift-data",
        "events-data",
        "bench-data",
    ] {
        assert!(
            html.contains(&format!("id=\"{id}\"")),
            "dashboard is missing id {id:?}"
        );
    }
    // The embedded health blob must re-parse and agree with the report.
    let marker = "id=\"health-data\">";
    let start = html.find(marker).expect("health blob") + marker.len();
    let end = html[start..].find("</script>").expect("blob terminated");
    let raw = html[start..start + end].replace("<\\/", "</");
    let doc = bmf_ams::obs::json::parse(&raw).expect("health blob parses");
    let overall = doc
        .get("overall")
        .and_then(bmf_ams::obs::json::Value::as_str)
        .expect("overall severity");
    assert_eq!(overall, report.health.expect("health").overall().label());
}
