//! Equivalence tests for the fast CV scoring path against the naive
//! oracle.
//!
//! The fast path (hoisted fold statistics + rank-one Cholesky updates,
//! see `bmf_core::cv`) reassociates the same arithmetic the naive
//! per-candidate refit performs, so bit-identity between the two is not
//! achievable — the contract is:
//!
//! * every grid score agrees to a 1e-10 relative tolerance (−∞ scores
//!   must coincide exactly);
//! * the selected `(κ₀, ν₀)` agrees whenever the naive score surface has
//!   a non-degenerate argmax (margin > 1e-8);
//! * the fast path itself stays **bit-identical** across 1, 2 and 7
//!   threads (the (candidate × repeat) work split must not perturb the
//!   reduction order).
//!
//! Cases deliberately include ν₀ just above the `ν₀ > d` feasibility
//! floor, infeasible ν₀ ≤ d values, and `n < Q` (shrunken fold counts).

use bmf_ams::core::cv::CrossValidation;
use bmf_ams::core::MomentEstimate;
use bmf_ams::linalg::{Matrix, Vector};
use bmf_ams::stats::MultivariateNormal;
use proptest::prelude::*;
use rand::SeedableRng;

fn synthetic(d: usize, n: usize, seed: u64) -> (MomentEstimate, Matrix) {
    let b = Matrix::from_fn(d, d, |i, j| ((i + 2 * j) % 5) as f64 / 5.0);
    let mut cov = b.mat_mul(&b.transpose()).expect("square");
    for i in 0..d {
        cov[(i, i)] += 1.0;
    }
    let early = MomentEstimate {
        mean: Vector::from_fn(d, |i| 0.2 * (i as f64 + 1.0)),
        cov: cov.clone(),
    };
    let truth = MultivariateNormal::new(Vector::zeros(d), cov).expect("spd");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let samples = truth.sample_matrix(&mut rng, n);
    (early, samples)
}

/// Selects the grid values whose bit is set in `mask` (non-empty by
/// construction since masks are drawn from 1..16).
fn masked(all: &[f64; 4], mask: u8) -> Vec<f64> {
    all.iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, &v)| v)
        .collect()
}

/// The per-case body of `fast_path_matches_naive_oracle` for a feasible
/// grid: fast bit-identity across threads, grid-score agreement to
/// 1e-10, and argmax agreement away from near-ties.
fn check_fast_vs_naive(
    fast_cv: &CrossValidation,
    naive_cv: &CrossValidation,
    early: &MomentEstimate,
    late: &Matrix,
    seed: u64,
) {
    let naive = naive_cv.select_seeded(early, late, seed, 1).expect("naive");
    let reference = fast_cv.select_seeded(early, late, seed, 1).expect("fast");
    for &t in &[2usize, 7] {
        let sel = fast_cv.select_seeded(early, late, seed, t).expect("fast");
        assert_eq!(
            sel, reference,
            "fast path must be bit-identical at {t} threads"
        );
    }

    assert_eq!(reference.grid.len(), naive.grid.len());
    let mut best_naive = f64::NEG_INFINITY;
    let mut second_naive = f64::NEG_INFINITY;
    for (f, nv) in reference.grid.iter().zip(naive.grid.iter()) {
        assert_eq!(f.kappa0.to_bits(), nv.kappa0.to_bits());
        assert_eq!(f.nu0.to_bits(), nv.nu0.to_bits());
        if nv.score.is_finite() {
            let tol = 1e-10 * nv.score.abs().max(1.0);
            assert!(
                (f.score - nv.score).abs() <= tol,
                "grid point ({}, {}): fast {} vs naive {}",
                f.kappa0,
                f.nu0,
                f.score,
                nv.score
            );
        } else {
            assert_eq!(
                f.score.to_bits(),
                nv.score.to_bits(),
                "non-finite scores must coincide at ({}, {})",
                f.kappa0,
                f.nu0
            );
        }
        if nv.score > best_naive {
            second_naive = best_naive;
            best_naive = nv.score;
        } else if nv.score > second_naive {
            second_naive = nv.score;
        }
    }
    // The argmax must agree except on a near-tied surface, where a
    // ≤1e-10 perturbation may legitimately flip it.
    if best_naive - second_naive > 1e-8 {
        assert_eq!(reference.kappa0.to_bits(), naive.kappa0.to_bits());
        assert_eq!(reference.nu0.to_bits(), naive.nu0.to_bits());
    }
}

proptest! {
    /// Fast vs naive: same grids, same seed — scores within 1e-10, same
    /// argmax away from ties, and the fast path bit-identical at 1/2/7
    /// threads. d = 3; ν₀ = 3.02 sits just above the feasibility floor
    /// and ν₀ = 2.5 below it; n as small as 2 exercises n < Q = 4.
    #[test]
    fn fast_path_matches_naive_oracle(
        seed in 0u64..10_000,
        n in 2usize..12,
        kmask in 1u8..16,
        nmask in 1u8..16,
    ) {
        let d = 3;
        let kappa = masked(&[0.7, 4.67, 55.0, 900.0], kmask);
        let nu = masked(&[2.5, 3.02, 12.0, 420.0], nmask);
        let (early, late) = synthetic(d, n, seed ^ 0xC0FE);
        let fast_cv = CrossValidation::with_repeats(kappa, nu, 4, 2).expect("cv");
        let naive_cv = fast_cv.clone().with_naive_scoring(true);

        if fast_cv.feasible_candidate_count(d) == 0 {
            // Only the infeasible ν₀ survived the mask: both paths must
            // reject the grid (and blame the grid, not scoring).
            for cv in [&fast_cv, &naive_cv] {
                let err = cv.select_seeded(&early, &late, seed, 1).expect_err("infeasible");
                prop_assert!(err.to_string().contains("no feasible"));
            }
        } else {
            check_fast_vs_naive(&fast_cv, &naive_cv, &early, &late, seed);
        }
    }

    /// The refined (coarse + zoom) search inherits the oracle agreement:
    /// both paths pick the same hyper-parameters on a clean surface.
    #[test]
    fn refined_search_agrees_with_naive_oracle(
        seed in 0u64..2_000,
    ) {
        let (early, late) = synthetic(2, 16, seed ^ 0x5EED);
        let cv = CrossValidation::with_repeats(vec![1.0, 100.0], vec![4.0, 400.0], 2, 2)
            .expect("cv");
        let fast = cv.select_refined_seeded(&early, &late, 3, seed, 2).expect("fast");
        let naive = cv
            .clone()
            .with_naive_scoring(true)
            .select_refined_seeded(&early, &late, 3, seed, 2)
            .expect("naive");
        prop_assert_eq!(fast.grid.len(), naive.grid.len());
        prop_assert!((fast.score - naive.score).abs() <= 1e-8 * naive.score.abs().max(1.0));
    }
}

/// Regression: when every candidate fails to score (all-NaN late
/// samples), the error must name the failing stage instead of
/// misdiagnosing a perfectly feasible grid.
#[test]
fn all_nan_samples_error_names_scoring_stage_not_grid() {
    let (early, _) = synthetic(2, 8, 1);
    let late = Matrix::from_fn(8, 2, |_, _| f64::NAN);
    let cv = CrossValidation::new(vec![1.0, 10.0], vec![5.0, 50.0], 4).unwrap();
    for naive in [false, true] {
        let err = cv
            .clone()
            .with_naive_scoring(naive)
            .select_seeded(&early, &late, 3, 1)
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("failed to score"),
            "naive = {naive}: expected a scoring diagnosis, got: {msg}"
        );
        assert!(
            msg.contains("failing stage"),
            "naive = {naive}: expected the failing stage to be named, got: {msg}"
        );
        assert!(
            !msg.contains("no feasible"),
            "naive = {naive}: must not blame a feasible grid, got: {msg}"
        );
    }
}
