//! The live observability server's contract: a study being scraped is
//! still the same study. These tests hammer the `--obs-listen` HTTP
//! endpoints from concurrent clients while a pipeline estimate runs,
//! and demand the result stays bit-identical to a server-less run at
//! 1, 2 and 7 worker threads; they also fuzz the listener with
//! malformed, oversized and abandoned requests mid-study and require
//! every abuse to get a clean 4xx (or a timeout) without wedging the
//! accept loop or perturbing the numbers.
//!
//! The recorder state is process-global, so every test serialises on
//! one mutex and resets the state on entry.

use bmf_ams::core::pipeline::RobustPipeline;
use bmf_ams::core::MomentEstimate;
use bmf_ams::linalg::{Matrix, Vector};
use bmf_ams::obs::ObsServer;
use bmf_ams::stats::MultivariateNormal;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Serialises tests touching the process-global recorder.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    bmf_ams::obs::reset();
    guard
}

fn synthetic(d: usize, n: usize, seed: u64) -> (MomentEstimate, Matrix) {
    let b = Matrix::from_fn(d, d, |i, j| ((i + 2 * j) % 5) as f64 / 5.0);
    let mut cov = b.mat_mul(&b.transpose()).expect("square");
    for i in 0..d {
        cov[(i, i)] += 1.0;
    }
    let early = MomentEstimate {
        mean: Vector::zeros(d),
        cov: cov.clone(),
    };
    let truth = MultivariateNormal::new(Vector::zeros(d), cov).expect("spd");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let samples = truth.sample_matrix(&mut rng, n);
    (early, samples)
}

fn assert_moments_bits_eq(a: &MomentEstimate, b: &MomentEstimate, what: &str) {
    assert_eq!(a.dim(), b.dim(), "{what}: dimension");
    for i in 0..a.dim() {
        assert_eq!(
            a.mean[i].to_bits(),
            b.mean[i].to_bits(),
            "{what}: mean[{i}]"
        );
        for j in 0..a.dim() {
            assert_eq!(
                a.cov[(i, j)].to_bits(),
                b.cov[(i, j)].to_bits(),
                "{what}: cov[({i},{j})]"
            );
        }
    }
}

/// One raw HTTP/1.1 exchange against the server; returns the full
/// response text (status line, headers and body).
fn http_get(addr: SocketAddr, target: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(format!("GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    raw
}

fn status_of(raw: &str) -> u32 {
    raw.strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line: {raw:?}"))
}

/// Spawns `clients` scraper threads that loop over the given targets
/// until the flag drops. Returns the join handles; each yields the
/// number of successful 200 responses it saw.
fn spawn_scrapers(
    addr: SocketAddr,
    clients: usize,
    targets: &'static [&'static str],
    running: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<u64>> {
    (0..clients)
        .map(|_| {
            let running = Arc::clone(running);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                while running.load(Ordering::Relaxed) {
                    for target in targets {
                        let raw = http_get(addr, target);
                        if status_of(&raw) == 200 {
                            ok += 1;
                        }
                    }
                }
                ok
            })
        })
        .collect()
}

/// Scraping every endpoint from three concurrent clients mid-study must
/// not move a single bit of the estimate, at any worker thread count.
#[test]
fn concurrent_scrapes_never_perturb_the_estimate() {
    let _g = obs_lock();
    let (early, late) = synthetic(3, 24, 77);

    // Reference: recording off, no server, one thread.
    let reference = RobustPipeline::new()
        .with_seed(11)
        .with_threads(1)
        .estimate(&early, &late)
        .expect("estimate")
        .0;

    static TARGETS: [&str; 8] = [
        "/metrics",
        "/health",
        "/events",
        "/progress",
        "/flight",
        "/timeseries",
        "/alerts",
        "/",
    ];
    for &threads in &THREAD_COUNTS {
        bmf_ams::obs::reset();
        bmf_ams::obs::enable();
        let mut server = ObsServer::start("127.0.0.1:0").expect("bind loopback");
        let addr = server.local_addr();

        let running = Arc::new(AtomicBool::new(true));
        let scrapers = spawn_scrapers(addr, 3, &TARGETS, &running);

        // Several estimates per thread count so the scrapers overlap
        // real work, not just the setup window.
        for round in 0..3 {
            let (est, _) = RobustPipeline::new()
                .with_seed(11)
                .with_threads(threads)
                .estimate(&early, &late)
                .expect("estimate");
            assert_moments_bits_eq(
                &est,
                &reference,
                &format!("threads={threads} round={round} under scrape load"),
            );
        }

        // Grace period so every scraper thread has been scheduled at
        // least once before the flag drops.
        std::thread::sleep(std::time::Duration::from_millis(50));
        running.store(false, Ordering::Relaxed);
        let ok: u64 = scrapers
            .into_iter()
            .map(|h| h.join().expect("scraper"))
            .sum();
        assert!(ok > 0, "threads={threads}: scrapers never got a 200");
        server.stop();
    }
    bmf_ams::obs::reset();
}

/// Abusive clients — wrong methods, oversized heads, junk bytes and
/// connections that never finish their request — must each get a clean
/// 4xx (or be timed out), and the server must keep serving good
/// requests while a study runs to the same bits underneath.
#[test]
fn malformed_requests_get_4xx_without_wedging_the_study() {
    let _g = obs_lock();
    let (early, late) = synthetic(3, 24, 77);
    let reference = RobustPipeline::new()
        .with_seed(11)
        .with_threads(1)
        .estimate(&early, &late)
        .expect("estimate")
        .0;

    bmf_ams::obs::reset();
    bmf_ams::obs::enable();
    let mut server = ObsServer::start("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();

    // A slow-loris connection that sends nothing and holds the socket
    // open for the whole test: the per-connection read timeout must
    // reap it without blocking anyone else.
    let loris = TcpStream::connect(addr).expect("connect");

    let abuses: [(&str, String, u32); 4] = [
        (
            "bad method",
            "POST /metrics HTTP/1.1\r\n\r\n".to_string(),
            405,
        ),
        (
            "oversized request line",
            format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(8192)),
            431,
        ),
        (
            "oversized headers",
            format!(
                "GET /health HTTP/1.1\r\n{}\r\n",
                "X-Pad: y\r\n".repeat(2048)
            ),
            431,
        ),
        (
            "junk bytes",
            "\x01\x02\x03 garbage\r\n\r\n".to_string(),
            400,
        ),
    ];
    for round in 0..2 {
        for (what, request, expected) in &abuses {
            let mut conn = TcpStream::connect(addr).expect("connect");
            conn.write_all(request.as_bytes()).expect("send abuse");
            let mut raw = String::new();
            conn.read_to_string(&mut raw).expect("read response");
            assert_eq!(
                status_of(&raw),
                *expected,
                "round {round}: {what} got {raw:?}"
            );
        }
        // Bad query strings are rejected without killing the endpoint.
        assert_eq!(status_of(&http_get(addr, "/events?level=bogus")), 400);
        assert_eq!(status_of(&http_get(addr, "/events?n=many")), 400);
        assert_eq!(status_of(&http_get(addr, "/timeseries?since=soon")), 400);
        assert_eq!(status_of(&http_get(addr, "/timeseries?step=big")), 400);
        assert_eq!(status_of(&http_get(addr, "/timeseries?what=ever")), 400);
        assert_eq!(status_of(&http_get(addr, "/nope")), 404);

        // The study and the good endpoints still work underneath.
        let (est, _) = RobustPipeline::new()
            .with_seed(11)
            .with_threads(2)
            .estimate(&early, &late)
            .expect("estimate");
        assert_moments_bits_eq(&est, &reference, &format!("round {round} under abuse"));
        assert_eq!(status_of(&http_get(addr, "/metrics")), 200);
        assert_eq!(status_of(&http_get(addr, "/health")), 200);
        assert_eq!(status_of(&http_get(addr, "/timeseries")), 200);
        assert_eq!(status_of(&http_get(addr, "/alerts")), 200);
    }

    drop(loris);
    server.stop();
    bmf_ams::obs::reset();
}
