//! Property-based tests over the estimation pipeline.

use bmf_ams::core::prelude::*;
use bmf_ams::linalg::{Cholesky, Matrix, Vector};
use bmf_ams::stats::{descriptive, MultivariateNormal};
use proptest::prelude::*;
use rand::SeedableRng;

fn spd2(vals: &[f64]) -> Matrix {
    let b = Matrix::from_vec(2, 2, vals.to_vec()).expect("shape");
    let mut a = b.mat_mul(&b.transpose()).expect("square");
    a[(0, 0)] += 0.5;
    a[(1, 1)] += 0.5;
    a
}

proptest! {
    /// μ_MAP always lies on the segment between μ_E and X̄ (Eq. 31 is a
    /// convex combination), for any positive κ₀.
    #[test]
    fn map_mean_is_between_prior_and_sample_mean(
        vals in proptest::collection::vec(-1.0..1.0f64, 4),
        kappa0 in 0.01..500.0f64,
        seed in 0u64..1000,
    ) {
        let early = MomentEstimate { mean: Vector::zeros(2), cov: spd2(&vals) };
        let truth = MultivariateNormal::new(
            Vector::from_slice(&[1.0, -1.0]), early.cov.clone()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = truth.sample_matrix(&mut rng, 6);
        let xbar = descriptive::mean_vector(&s).unwrap();

        let prior = NormalWishartPrior::from_early_moments(&early, kappa0, 8.0).unwrap();
        let est = BmfEstimator::new(prior).unwrap().estimate(&s).unwrap();
        // Convexity: each coordinate between the two anchors.
        for j in 0..2 {
            let lo = early.mean[j].min(xbar[j]) - 1e-9;
            let hi = early.mean[j].max(xbar[j]) + 1e-9;
            prop_assert!(est.map.mean[j] >= lo && est.map.mean[j] <= hi);
        }
    }

    /// Σ_MAP is always symmetric positive definite, even with a single
    /// sample or a badly mismatched prior.
    #[test]
    fn map_covariance_is_always_spd(
        vals in proptest::collection::vec(-1.0..1.0f64, 4),
        kappa0 in 0.01..1000.0f64,
        nu0_excess in 0.01..1000.0f64,
        n in 1usize..30,
        seed in 0u64..1000,
    ) {
        let early = MomentEstimate { mean: Vector::zeros(2), cov: spd2(&vals) };
        let truth = MultivariateNormal::new(
            Vector::from_slice(&[3.0, -2.0]),
            Matrix::identity(2) * 4.0,
        ).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = truth.sample_matrix(&mut rng, n);

        let prior = NormalWishartPrior::from_early_moments(&early, kappa0, 2.0 + nu0_excess).unwrap();
        let est = BmfEstimator::new(prior).unwrap().estimate(&s).unwrap();
        prop_assert!(Cholesky::new(&est.map.cov).is_ok());
        prop_assert!(est.map.cov.is_symmetric(1e-9));
    }

    /// Shift-scale round-trips arbitrary sample matrices.
    #[test]
    fn shift_scale_round_trip(
        shift in proptest::collection::vec(-1e3..1e3f64, 3),
        scale in proptest::collection::vec(0.01..1e3f64, 3),
        rows in proptest::collection::vec(proptest::collection::vec(-1e3..1e3f64, 3), 1..10),
    ) {
        let t = ShiftScale::new(Vector::from(shift), Vector::from(scale)).unwrap();
        let n = rows.len();
        let flat: Vec<f64> = rows.into_iter().flatten().collect();
        let m = Matrix::from_vec(n, 3, flat).unwrap();
        let back = t.invert_samples(&t.apply_samples(&m).unwrap()).unwrap();
        let scale_mag = m.norm_max().max(1.0);
        prop_assert!(back.max_abs_diff(&m).unwrap() < 1e-9 * scale_mag);
    }

    /// Moment transforms commute with sample transforms.
    #[test]
    fn moment_transform_commutes(
        shift in proptest::collection::vec(-100.0..100.0f64, 2),
        scale in proptest::collection::vec(0.1..100.0f64, 2),
        seed in 0u64..500,
    ) {
        let t = ShiftScale::new(Vector::from(shift), Vector::from(scale)).unwrap();
        let truth = MultivariateNormal::new(
            Vector::from_slice(&[5.0, -3.0]),
            Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).unwrap(),
        ).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = truth.sample_matrix(&mut rng, 40);

        let via_samples = {
            let norm = t.apply_samples(&s).unwrap();
            MomentEstimate {
                mean: descriptive::mean_vector(&norm).unwrap(),
                cov: descriptive::covariance_mle(&norm).unwrap(),
            }
        };
        let via_moments = t.apply_moments(&MomentEstimate {
            mean: descriptive::mean_vector(&s).unwrap(),
            cov: descriptive::covariance_mle(&s).unwrap(),
        }).unwrap();
        prop_assert!((&via_samples.mean - &via_moments.mean).norm2() < 1e-9);
        prop_assert!(via_samples.cov.max_abs_diff(&via_moments.cov).unwrap() < 1e-9);
    }

    /// More data monotonically reduces the pull of the prior on the MAP
    /// mean (n/(κ₀+n) → 1).
    #[test]
    fn prior_influence_vanishes_with_data(
        kappa0 in 0.1..100.0f64,
        seed in 0u64..300,
    ) {
        let early = MomentEstimate {
            mean: Vector::from_slice(&[10.0, 10.0]),
            cov: Matrix::identity(2),
        };
        let truth = MultivariateNormal::standard(2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let prior = NormalWishartPrior::from_early_moments(&early, kappa0, 8.0).unwrap();
        let estimator = BmfEstimator::new(prior).unwrap();

        let small = truth.sample_matrix(&mut rng, 4);
        let large = truth.sample_matrix(&mut rng, 400);
        let d_small = (&estimator.estimate(&small).unwrap().map.mean - truth.mean()).norm2();
        let d_large = (&estimator.estimate(&large).unwrap().map.mean - truth.mean()).norm2();
        // With a 10σ-wrong prior, the large-n estimate must sit far closer
        // to the truth.
        prop_assert!(d_large < d_small);
    }

    /// Yield estimates are valid probabilities with consistent standard
    /// errors.
    #[test]
    fn yield_estimates_are_probabilities(
        threshold in -3.0..3.0f64,
        seed in 0u64..300,
    ) {
        let m = MomentEstimate { mean: Vector::zeros(1), cov: Matrix::identity(1) };
        let specs = SpecLimits::new(vec![Some(threshold)], vec![None]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let y = bmf_ams::core::yield_estimation::estimate_yield(&m, &specs, 2000, &mut rng).unwrap();
        prop_assert!((0.0..=1.0).contains(&y.yield_fraction));
        prop_assert!(y.std_error >= 0.0 && y.std_error <= 0.5 / (2000f64).sqrt() + 1e-9);
    }
}
