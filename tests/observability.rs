//! The observability layer's contract: recording spans and counters must
//! never change a numeric result, at any thread count — tracing is a
//! side-channel, not a participant. These tests run the same workloads
//! with recording off and on, at 1, 2 and 7 threads, and demand exact
//! bit equality; they also check that counters recorded from scoped
//! worker threads merge into consistent totals.
//!
//! The recorder state is process-global, so every test serialises on one
//! mutex and resets the state on entry.

use bmf_ams::circuits::adc::AdcTestbench;
use bmf_ams::circuits::monte_carlo::{run_monte_carlo_seeded, Stage};
use bmf_ams::core::cv::CrossValidation;
use bmf_ams::core::pipeline::RobustPipeline;
use bmf_ams::core::MomentEstimate;
use bmf_ams::linalg::{Matrix, Vector};
use bmf_ams::obs::json::Value;
use bmf_ams::stats::MultivariateNormal;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard, PoisonError};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Serialises tests touching the process-global recorder.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    bmf_ams::obs::reset();
    guard
}

fn synthetic(d: usize, n: usize, seed: u64) -> (MomentEstimate, Matrix) {
    let b = Matrix::from_fn(d, d, |i, j| ((i + 2 * j) % 5) as f64 / 5.0);
    let mut cov = b.mat_mul(&b.transpose()).expect("square");
    for i in 0..d {
        cov[(i, i)] += 1.0;
    }
    let early = MomentEstimate {
        mean: Vector::zeros(d),
        cov: cov.clone(),
    };
    let truth = MultivariateNormal::new(Vector::zeros(d), cov).expect("spd");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let samples = truth.sample_matrix(&mut rng, n);
    (early, samples)
}

fn assert_moments_bits_eq(a: &MomentEstimate, b: &MomentEstimate, what: &str) {
    assert_eq!(a.dim(), b.dim(), "{what}: dimension");
    for i in 0..a.dim() {
        assert_eq!(
            a.mean[i].to_bits(),
            b.mean[i].to_bits(),
            "{what}: mean[{i}]"
        );
        for j in 0..a.dim() {
            assert_eq!(
                a.cov[(i, j)].to_bits(),
                b.cov[(i, j)].to_bits(),
                "{what}: cov[({i},{j})]"
            );
        }
    }
}

#[test]
fn pipeline_estimates_bit_identical_with_tracing_on_and_off() {
    let _g = obs_lock();
    let (early, late) = synthetic(3, 24, 77);

    // Reference: recording off, one thread.
    let reference = RobustPipeline::new()
        .with_seed(11)
        .with_threads(1)
        .estimate(&early, &late)
        .expect("estimate")
        .0;

    for &threads in &THREAD_COUNTS {
        for enabled in [false, true] {
            bmf_ams::obs::reset();
            if enabled {
                bmf_ams::obs::enable();
            }
            let (est, report) = RobustPipeline::new()
                .with_seed(11)
                .with_threads(threads)
                .estimate(&early, &late)
                .expect("estimate");
            assert_moments_bits_eq(
                &est,
                &reference,
                &format!("threads={threads} enabled={enabled}"),
            );
            if enabled {
                // The audit trail picks up the counter deltas when
                // recording is on; the estimate above must not.
                assert!(
                    report.counter("cholesky.calls") > 0,
                    "enabled run should report cholesky.calls"
                );
            } else {
                assert!(report.counters.is_empty());
            }
        }
    }
    bmf_ams::obs::reset();
}

#[test]
fn monte_carlo_bit_identical_with_tracing_on_and_off() {
    let _g = obs_lock();
    let tb = AdcTestbench::default_180nm();
    let reference = run_monte_carlo_seeded(&tb, Stage::PostLayout, 13, 5, 1).expect("mc");

    for &threads in &THREAD_COUNTS {
        for enabled in [false, true] {
            bmf_ams::obs::reset();
            if enabled {
                bmf_ams::obs::enable();
            }
            let data = run_monte_carlo_seeded(&tb, Stage::PostLayout, 13, 5, threads).expect("mc");
            assert_eq!(
                data.samples, reference.samples,
                "threads={threads} enabled={enabled}"
            );
            assert_eq!(data.nominal, reference.nominal);
        }
    }
    bmf_ams::obs::reset();
}

#[test]
fn counters_sum_consistently_across_worker_merges() {
    let _g = obs_lock();
    bmf_ams::obs::enable();

    // 37 simulations spread over 7 scoped workers must add up to exactly
    // 37, however the increments were interleaved.
    let tb = AdcTestbench::default_180nm();
    let before = bmf_ams::obs::metrics::snapshot().counter("monte_carlo.sims");
    run_monte_carlo_seeded(&tb, Stage::Schematic, 37, 3, 7).expect("mc");
    let after = bmf_ams::obs::metrics::snapshot().counter("monte_carlo.sims");
    assert_eq!(after - before, 37);

    // Worker spans land in the shared sink at scope join: one stage span
    // plus at most 7 worker spans, each from a distinct thread.
    let events = bmf_ams::obs::take_events();
    let stage_spans = events.iter().filter(|e| e.name == "mc.schematic").count();
    assert_eq!(stage_spans, 1);
    let worker_tids: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.name == "parallel.worker")
        .map(|e| e.tid)
        .collect();
    let workers = events
        .iter()
        .filter(|e| e.name == "parallel.worker")
        .count();
    assert!((1..=7).contains(&workers), "got {workers} worker spans");
    assert_eq!(worker_tids.len(), workers, "worker tids must be distinct");
    bmf_ams::obs::reset();
}

#[test]
fn fold_eval_counts_are_thread_count_invariant() {
    let _g = obs_lock();
    let (early, late) = synthetic(2, 16, 9);
    let cv = CrossValidation::with_repeats(vec![1.0, 10.0], vec![4.0, 40.0], 3, 2).expect("cv");

    let mut counts = Vec::new();
    for &threads in &THREAD_COUNTS {
        bmf_ams::obs::reset();
        bmf_ams::obs::enable();
        cv.select_seeded(&early, &late, 4, threads).expect("select");
        counts.push(bmf_ams::obs::metrics::snapshot().counter("cv.fold_evals"));
    }
    assert!(counts[0] > 0, "CV must evaluate folds");
    assert!(
        counts.iter().all(|&c| c == counts[0]),
        "fold evaluations differ across thread counts: {counts:?}"
    );
    bmf_ams::obs::reset();
}

#[test]
fn fusion_report_json_includes_timings_and_counters_and_parses() {
    let _g = obs_lock();
    bmf_ams::obs::enable();
    let (early, late) = synthetic(3, 20, 123);
    let (_, report) = RobustPipeline::new()
        .with_seed(2)
        .with_threads(2)
        .estimate(&early, &late)
        .expect("estimate");
    bmf_ams::obs::reset();

    let doc = bmf_ams::obs::json::parse(&report.to_json()).expect("report JSON must parse");
    let timings = doc.get("timings_ns").expect("timings_ns section");
    for key in ["guard", "prior", "cv", "ladder", "total"] {
        let v = timings
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("timings_ns.{key} missing"));
        assert!(v >= 0.0);
    }
    let total = timings.get("total").and_then(Value::as_f64).unwrap();
    assert!(total > 0.0, "total stage time must be positive");
    let counters = doc.get("counters").expect("counters section");
    let chol = counters
        .get("cholesky.calls")
        .and_then(Value::as_f64)
        .expect("cholesky.calls in report");
    assert!(chol > 0.0);
}
