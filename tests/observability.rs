//! The observability layer's contract: recording spans and counters must
//! never change a numeric result, at any thread count — tracing is a
//! side-channel, not a participant. These tests run the same workloads
//! with recording off and on, at 1, 2 and 7 threads, and demand exact
//! bit equality; they also check that counters recorded from scoped
//! worker threads merge into consistent totals, that the structured
//! event stream drains as valid run-id-stamped JSONL, and that a
//! strict-mode failure leaves a well-formed flight-recorder black box.
//!
//! The recorder state is process-global, so every test serialises on one
//! mutex and resets the state on entry.

use bmf_ams::circuits::adc::AdcTestbench;
use bmf_ams::circuits::monte_carlo::{run_monte_carlo_seeded, Stage};
use bmf_ams::core::cv::CrossValidation;
use bmf_ams::core::pipeline::{FailureMode, RobustPipeline};
use bmf_ams::core::MomentEstimate;
use bmf_ams::linalg::{Matrix, Vector};
use bmf_ams::obs::json::Value;
use bmf_ams::obs::RunContext;
use bmf_ams::stats::MultivariateNormal;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard, PoisonError};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Serialises tests touching the process-global recorder.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    bmf_ams::obs::reset();
    guard
}

fn synthetic(d: usize, n: usize, seed: u64) -> (MomentEstimate, Matrix) {
    let b = Matrix::from_fn(d, d, |i, j| ((i + 2 * j) % 5) as f64 / 5.0);
    let mut cov = b.mat_mul(&b.transpose()).expect("square");
    for i in 0..d {
        cov[(i, i)] += 1.0;
    }
    let early = MomentEstimate {
        mean: Vector::zeros(d),
        cov: cov.clone(),
    };
    let truth = MultivariateNormal::new(Vector::zeros(d), cov).expect("spd");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let samples = truth.sample_matrix(&mut rng, n);
    (early, samples)
}

fn assert_moments_bits_eq(a: &MomentEstimate, b: &MomentEstimate, what: &str) {
    assert_eq!(a.dim(), b.dim(), "{what}: dimension");
    for i in 0..a.dim() {
        assert_eq!(
            a.mean[i].to_bits(),
            b.mean[i].to_bits(),
            "{what}: mean[{i}]"
        );
        for j in 0..a.dim() {
            assert_eq!(
                a.cov[(i, j)].to_bits(),
                b.cov[(i, j)].to_bits(),
                "{what}: cov[({i},{j})]"
            );
        }
    }
}

#[test]
fn pipeline_estimates_bit_identical_with_tracing_on_and_off() {
    let _g = obs_lock();
    let (early, late) = synthetic(3, 24, 77);

    // Reference: recording off, one thread.
    let reference = RobustPipeline::new()
        .with_seed(11)
        .with_threads(1)
        .estimate(&early, &late)
        .expect("estimate")
        .0;

    for &threads in &THREAD_COUNTS {
        for enabled in [false, true] {
            bmf_ams::obs::reset();
            if enabled {
                bmf_ams::obs::enable();
            }
            let (est, report) = RobustPipeline::new()
                .with_seed(11)
                .with_threads(threads)
                .estimate(&early, &late)
                .expect("estimate");
            assert_moments_bits_eq(
                &est,
                &reference,
                &format!("threads={threads} enabled={enabled}"),
            );
            if enabled {
                // The audit trail picks up the counter deltas when
                // recording is on; the estimate above must not.
                assert!(
                    report.counter("cholesky.calls") > 0,
                    "enabled run should report cholesky.calls"
                );
            } else {
                assert!(report.counters.is_empty());
            }
        }
    }
    bmf_ams::obs::reset();
}

#[test]
fn monte_carlo_bit_identical_with_tracing_on_and_off() {
    let _g = obs_lock();
    let tb = AdcTestbench::default_180nm();
    let reference = run_monte_carlo_seeded(&tb, Stage::PostLayout, 13, 5, 1).expect("mc");

    for &threads in &THREAD_COUNTS {
        for enabled in [false, true] {
            bmf_ams::obs::reset();
            if enabled {
                bmf_ams::obs::enable();
            }
            let data = run_monte_carlo_seeded(&tb, Stage::PostLayout, 13, 5, threads).expect("mc");
            assert_eq!(
                data.samples, reference.samples,
                "threads={threads} enabled={enabled}"
            );
            assert_eq!(data.nominal, reference.nominal);
        }
    }
    bmf_ams::obs::reset();
}

#[test]
fn counters_sum_consistently_across_worker_merges() {
    let _g = obs_lock();
    bmf_ams::obs::enable();

    // 37 simulations spread over 7 scoped workers must add up to exactly
    // 37, however the increments were interleaved.
    let tb = AdcTestbench::default_180nm();
    let before = bmf_ams::obs::metrics::snapshot().counter("monte_carlo.sims");
    run_monte_carlo_seeded(&tb, Stage::Schematic, 37, 3, 7).expect("mc");
    let after = bmf_ams::obs::metrics::snapshot().counter("monte_carlo.sims");
    assert_eq!(after - before, 37);

    // Worker spans land in the shared sink at scope join: one stage span
    // plus at most 7 worker spans, each from a distinct thread.
    let events = bmf_ams::obs::take_events();
    let stage_spans = events.iter().filter(|e| e.name == "mc.schematic").count();
    assert_eq!(stage_spans, 1);
    let worker_tids: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.name == "parallel.worker")
        .map(|e| e.tid)
        .collect();
    let workers = events
        .iter()
        .filter(|e| e.name == "parallel.worker")
        .count();
    assert!((1..=7).contains(&workers), "got {workers} worker spans");
    assert_eq!(worker_tids.len(), workers, "worker tids must be distinct");
    bmf_ams::obs::reset();
}

#[test]
fn fold_eval_counts_are_thread_count_invariant() {
    let _g = obs_lock();
    let (early, late) = synthetic(2, 16, 9);
    let cv = CrossValidation::with_repeats(vec![1.0, 10.0], vec![4.0, 40.0], 3, 2).expect("cv");

    let mut counts = Vec::new();
    for &threads in &THREAD_COUNTS {
        bmf_ams::obs::reset();
        bmf_ams::obs::enable();
        cv.select_seeded(&early, &late, 4, threads).expect("select");
        counts.push(bmf_ams::obs::metrics::snapshot().counter("cv.fold_evals"));
    }
    assert!(counts[0] > 0, "CV must evaluate folds");
    assert!(
        counts.iter().all(|&c| c == counts[0]),
        "fold evaluations differ across thread counts: {counts:?}"
    );
    bmf_ams::obs::reset();
}

/// The event stream rides the same enable switch as spans and counters,
/// so turning it on (heartbeats, guard flags, ladder transitions and
/// all) must leave every number untouched at every thread count — and
/// every drained record must render as one valid JSONL line carrying
/// the run id that also lands in the `FusionReport`.
#[test]
fn event_stream_preserves_bit_identity_and_emits_valid_jsonl() {
    let _g = obs_lock();
    let tb = AdcTestbench::default_180nm();
    let (early, late) = synthetic(3, 24, 77);

    // Reference numbers: recording (and thus the event stream) off.
    let mc_reference = run_monte_carlo_seeded(&tb, Stage::PostLayout, 13, 5, 1).expect("mc");
    let est_reference = RobustPipeline::new()
        .with_seed(11)
        .with_threads(1)
        .estimate(&early, &late)
        .expect("estimate")
        .0;

    for &threads in &THREAD_COUNTS {
        bmf_ams::obs::reset();
        bmf_ams::obs::enable();
        bmf_ams::obs::run::set(RunContext::derive(11, "observability events test"));
        let run_id = bmf_ams::obs::run::run_id().expect("run context set");

        let mc = run_monte_carlo_seeded(&tb, Stage::PostLayout, 13, 5, threads).expect("mc");
        assert_eq!(mc.samples, mc_reference.samples, "threads={threads}");
        let (est, report) = RobustPipeline::new()
            .with_seed(11)
            .with_threads(threads)
            .estimate(&early, &late)
            .expect("estimate");
        assert_moments_bits_eq(
            &est,
            &est_reference,
            &format!("events on, threads={threads}"),
        );

        // Run correlation: the report carries the same id the event
        // lines are stamped with.
        assert_eq!(report.run_id.as_deref(), Some(run_id.as_str()));
        let doc = bmf_ams::obs::json::parse(&report.to_json()).expect("report JSON");
        assert_eq!(
            doc.get("run_id").and_then(Value::as_str),
            Some(run_id.as_str())
        );

        // The Monte Carlo heartbeat guarantees at least one progress
        // event per stage (the final tick always pulses).
        let records = bmf_ams::obs::take_event_records();
        assert!(
            records.iter().any(|r| r.kind == "progress"),
            "threads={threads}: expected a progress heartbeat, got kinds {:?}",
            records.iter().map(|r| r.kind).collect::<Vec<_>>()
        );
        for pair in records.windows(2) {
            assert!(
                pair[0].seq < pair[1].seq,
                "drained events must be in emission order"
            );
        }
        for rec in &records {
            let line = rec.to_json(Some(&run_id));
            let ev = bmf_ams::obs::json::parse(&line)
                .unwrap_or_else(|e| panic!("event line must parse: {e}: {line}"));
            assert_eq!(
                ev.get("run_id").and_then(Value::as_str),
                Some(run_id.as_str())
            );
            for key in ["seq", "ts_ns", "tid"] {
                assert!(
                    ev.get(key).and_then(Value::as_f64).is_some(),
                    "event missing numeric {key}: {line}"
                );
            }
            let level = ev.get("level").and_then(Value::as_str).expect("level");
            assert!(
                ["error", "warn", "info", "debug"].contains(&level),
                "unknown level {level}"
            );
            assert!(ev.get("kind").and_then(Value::as_str).is_some());
        }
    }
    bmf_ams::obs::reset();
}

/// A strict-mode failure must leave a black box behind: the pipeline
/// dumps the flight-recorder ring to `flight-<run_id>.json`, and the
/// dump must be a well-formed document whose event count matches its
/// own `captured` header.
#[test]
fn strict_failure_dumps_flight_recorder_black_box() {
    let _g = obs_lock();
    let dir = std::env::temp_dir().join(format!("bmf-obs-itest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    bmf_ams::obs::flight::set_dump_dir(&dir);
    bmf_ams::obs::enable();
    bmf_ams::obs::run::set(RunContext::derive(7, "strict flight test"));
    let run_id = bmf_ams::obs::run::run_id().expect("run context set");
    let flight_path = dir.join(format!("flight-{run_id}.json"));
    let _ = std::fs::remove_file(&flight_path);

    // A non-finite late-stage cell trips the guard, which strict mode
    // converts into an error — and the guard.flag event that preceded
    // the failure is what the black box should have caught.
    let (early, mut late) = synthetic(3, 24, 5);
    late[(0, 0)] = f64::NAN;
    let result = RobustPipeline::new()
        .with_mode(FailureMode::Strict)
        .with_seed(3)
        .with_threads(2)
        .estimate(&early, &late);
    assert!(result.is_err(), "strict mode must reject non-finite cells");

    let body = std::fs::read_to_string(&flight_path).expect("strict failure writes a black box");
    let doc = bmf_ams::obs::json::parse(&body).expect("flight dump must parse");
    assert_eq!(
        doc.get("reason").and_then(Value::as_str),
        Some("strict_failure")
    );
    assert_eq!(
        doc.get("run_id").and_then(Value::as_str),
        Some(run_id.as_str())
    );
    let events = doc.get("events").and_then(Value::as_array).expect("events");
    let captured = doc
        .get("captured")
        .and_then(Value::as_f64)
        .expect("captured");
    assert_eq!(
        captured as usize,
        events.len(),
        "captured must match the event count"
    );
    assert!(
        events
            .iter()
            .any(|e| e.get("kind").and_then(Value::as_str) == Some("guard.flag")),
        "the guard flag that caused the failure must be in the box"
    );
    let last = bmf_ams::obs::flight::last_dump().expect("dump recorded");
    assert_eq!(last.path, flight_path);
    assert_eq!(last.events, events.len());

    let _ = std::fs::remove_file(&flight_path);
    bmf_ams::obs::reset();
}

#[test]
fn fusion_report_json_includes_timings_and_counters_and_parses() {
    let _g = obs_lock();
    bmf_ams::obs::enable();
    let (early, late) = synthetic(3, 20, 123);
    let (_, report) = RobustPipeline::new()
        .with_seed(2)
        .with_threads(2)
        .estimate(&early, &late)
        .expect("estimate");
    bmf_ams::obs::reset();

    let doc = bmf_ams::obs::json::parse(&report.to_json()).expect("report JSON must parse");
    let timings = doc.get("timings_ns").expect("timings_ns section");
    for key in ["guard", "prior", "cv", "ladder", "total"] {
        let v = timings
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("timings_ns.{key} missing"));
        assert!(v >= 0.0);
    }
    let total = timings.get("total").and_then(Value::as_f64).unwrap();
    assert!(total > 0.0, "total stage time must be positive");
    let counters = doc.get("counters").expect("counters section");
    let chol = counters
        .get("cholesky.calls")
        .and_then(Value::as_f64)
        .expect("cholesky.calls in report");
    assert!(chol > 0.0);
}
