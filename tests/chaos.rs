//! Chaos tests: fault-injected Monte Carlo data through the self-healing
//! fusion pipeline.
//!
//! Two layers:
//!
//! * **Property tests** — for any fault mix (simulation failures, NaN'd
//!   metrics, gross outliers at randomized rates around the base rate),
//!   [`RobustPipeline`] never panics and always produces either
//!   `Ok((estimate, FusionReport))` or a typed [`BmfError`]. The base
//!   fault rate is read from `BMF_CHAOS_FAULT_RATE` (default `0.1`) so CI
//!   can run the same suite at several intensities.
//! * **Acceptance test** — the ISSUE's scenario: 10% injected simulation
//!   failures plus 2% NaN corruption on the op-amp testbench must leave
//!   the MAP covariance error within 2× of the fault-free run.

use bmf_ams::circuits::fault::{FaultConfig, FaultInjector};
use bmf_ams::circuits::monte_carlo::{
    run_monte_carlo_seeded_with_policy, RetryPolicy, Stage, Testbench,
};
use bmf_ams::circuits::opamp::OpAmpTestbench;
use bmf_ams::core::cv::CrossValidation;
use bmf_ams::core::error_metrics::error_cov;
use bmf_ams::core::experiment::{prepare, PreparedStudy, TwoStageData};
use bmf_ams::core::pipeline::{FailureMode, FallbackLevel, RobustPipeline};
use bmf_ams::core::{BmfError, MomentEstimate};
use bmf_ams::linalg::Matrix;
use proptest::prelude::*;

/// Base fault rate for the property tests; CI's chaos job overrides it.
fn base_fault_rate() -> f64 {
    std::env::var("BMF_CHAOS_FAULT_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1)
}

/// Small CV grid so each property case stays cheap (the container runs
/// the 64 deterministic proptest cases serially).
fn small_cv() -> CrossValidation {
    CrossValidation::new(vec![1.0, 100.0], vec![10.0, 100.0], 2).unwrap()
}

/// A clean op-amp study, normalised: prior moments, exact late moments
/// and the transforms — the fault-free reference frame.
fn clean_study(n_early: usize, n_late_pool: usize, seed: u64) -> (PreparedStudy, TwoStageData) {
    let tb = OpAmpTestbench::default_45nm();
    let policy = RetryPolicy::default();
    let early =
        run_monte_carlo_seeded_with_policy(&tb, Stage::Schematic, n_early, seed, 1, &policy)
            .expect("clean early stage");
    let late =
        run_monte_carlo_seeded_with_policy(&tb, Stage::PostLayout, n_late_pool, seed, 1, &policy)
            .expect("clean late stage");
    let data = TwoStageData {
        metric_names: tb.metric_names().iter().map(|s| s.to_string()).collect(),
        early_nominal: early.nominal.clone(),
        early_samples: early.samples.clone(),
        late_nominal: late.nominal.clone(),
        late_samples: late.samples.clone(),
    };
    let study = prepare(&data).expect("prepare clean study");
    (study, data)
}

/// Late-stage samples from the fault-injected op-amp, normalised with the
/// clean study's late transform (NaN cells pass through the affine map).
fn faulted_late_samples(study: &PreparedStudy, config: FaultConfig, n: usize, seed: u64) -> Matrix {
    let tb = FaultInjector::new(OpAmpTestbench::default_45nm(), config).expect("fault config");
    // A generous retry budget: at sim-failure rates approaching 1 the
    // default 100 attempts can exhaust, which is a legitimate typed error
    // but not the path these tests exercise.
    let policy = RetryPolicy { max_attempts: 400 };
    let late = run_monte_carlo_seeded_with_policy(&tb, Stage::PostLayout, n, seed, 1, &policy)
        .expect("faulted late stage");
    study
        .late_transform
        .apply_samples(&late.samples)
        .expect("normalise faulted samples")
}

proptest! {
    /// The headline chaos property: for any fault mix around the base
    /// rate, the robust pipeline never panics and always returns either
    /// an estimate-with-report or a typed error.
    #[test]
    fn robust_pipeline_never_panics_under_fault_injection(
        seed in 0u64..10_000,
        fail_scale in 0.0..2.0f64,
        nan_scale in 0.0..2.0f64,
        outlier_scale in 0.0..2.0f64,
    ) {
        let base = base_fault_rate();
        let config = FaultConfig {
            sim_failure_rate: (base * fail_scale).min(0.9),
            nan_rate: (base / 5.0 * nan_scale).min(0.5),
            outlier_rate: (base / 5.0 * outlier_scale).min(0.5),
            ..FaultConfig::default()
        };
        let (study, _) = clean_study(40, 40, 2015);
        let late = faulted_late_samples(&study, config, 12, seed);

        let pipeline = RobustPipeline::new().with_cv(small_cv()).with_seed(seed);
        match pipeline.estimate(&study.early_moments, &late) {
            Ok((est, report)) => {
                // Whatever rung produced it, the estimate is structurally
                // valid and the report serializes.
                prop_assert!(est.validate().is_ok());
                let json = report.to_json();
                prop_assert!(json.starts_with('{') && json.ends_with('}'));
                prop_assert!(!report.summary().is_empty());
                // Book-keeping is consistent: dropped rows are counted.
                prop_assert_eq!(
                    report.data_quality.rows_out + report.data_quality.dropped_rows.len(),
                    report.data_quality.rows_in
                );
            }
            Err(e) => {
                // Typed error with a usable message — never a panic.
                prop_assert!(matches!(
                    e,
                    BmfError::InvalidSamples { .. }
                        | BmfError::InvalidConfig { .. }
                        | BmfError::InvalidMoments { .. }
                        | BmfError::InvalidHyperParameter { .. }
                        | BmfError::Stats(_)
                        | BmfError::Linalg(_)
                ), "unexpected error class: {e:?}");
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Strict mode under the same chaos: either a clean MAP estimate (no
    /// repairs, nothing dropped) or a typed error — never a silently
    /// patched result.
    #[test]
    fn strict_mode_never_hides_an_intervention(
        seed in 0u64..10_000,
        fail_scale in 0.0..2.0f64,
        nan_scale in 0.0..2.0f64,
    ) {
        let base = base_fault_rate();
        let config = FaultConfig {
            sim_failure_rate: (base * fail_scale).min(0.9),
            nan_rate: (base / 5.0 * nan_scale).min(0.5),
            ..FaultConfig::default()
        };
        let (study, _) = clean_study(40, 40, 2015);
        let late = faulted_late_samples(&study, config, 12, seed);

        let pipeline = RobustPipeline::new()
            .with_cv(small_cv())
            .with_seed(seed)
            .with_mode(FailureMode::Strict);
        if let Ok((est, report)) = pipeline.estimate(&study.early_moments, &late) {
            prop_assert_eq!(report.fallback, FallbackLevel::Map);
            prop_assert!(report.data_quality.dropped_rows.is_empty());
            prop_assert!(!report.prior_repair.is_repaired());
            prop_assert!(est.validate().is_ok());
        }
    }
}

/// The ISSUE's acceptance scenario, deterministic: 10% injected
/// simulation failures + 2% NaN corruption on the op-amp testbench. The
/// pipeline must return a MAP-level estimate whose covariance error stays
/// within 2× of the fault-free run.
#[test]
fn faulted_map_covariance_error_within_2x_of_fault_free() {
    let (study, _) = clean_study(400, 600, 77);
    let n_late = 40;

    let run = |late: &Matrix| -> (MomentEstimate, FallbackLevel) {
        let (est, report) = RobustPipeline::new()
            .with_cv(small_cv())
            .with_seed(7)
            .estimate(&study.early_moments, late)
            .expect("robust estimate");
        (est, report.fallback)
    };

    // Fault-free reference: the same late draw without an injector.
    let clean_late = faulted_late_samples(&study, FaultConfig::default(), n_late, 7);
    let (clean_est, clean_level) = run(&clean_late);
    assert_eq!(clean_level, FallbackLevel::Map);
    let clean_err = error_cov(&clean_est, &study.exact_late).unwrap();

    // Acceptance mix: 10% failed sims, 2% NaN corruption.
    let faulted_late = faulted_late_samples(
        &study,
        FaultConfig {
            sim_failure_rate: 0.10,
            nan_rate: 0.02,
            ..FaultConfig::default()
        },
        n_late,
        7,
    );
    let (faulted_est, faulted_level) = run(&faulted_late);
    assert!(
        matches!(
            faulted_level,
            FallbackLevel::Map | FallbackLevel::MapRepairedPrior
        ),
        "acceptance scenario should stay on a MAP rung, got {faulted_level}"
    );
    let faulted_err = error_cov(&faulted_est, &study.exact_late).unwrap();

    assert!(
        faulted_err <= 2.0 * clean_err,
        "faulted covariance error {faulted_err:.5} exceeds 2x the fault-free error {clean_err:.5}"
    );
}

/// Same acceptance mix, checked for thread-count invariance end to end:
/// faulted generation and robust estimation at 1, 2 and 7 threads give
/// bit-identical moments.
#[test]
fn faulted_robust_estimate_is_thread_count_invariant() {
    let (study, _) = clean_study(60, 60, 3);
    let config = FaultConfig {
        sim_failure_rate: 0.10,
        nan_rate: 0.02,
        ..FaultConfig::default()
    };
    let tb = FaultInjector::new(OpAmpTestbench::default_45nm(), config).unwrap();
    let policy = RetryPolicy::default();

    let mut reference: Option<MomentEstimate> = None;
    for threads in [1usize, 2, 7] {
        let late =
            run_monte_carlo_seeded_with_policy(&tb, Stage::PostLayout, 16, 5, threads, &policy)
                .unwrap();
        let norm = study.late_transform.apply_samples(&late.samples).unwrap();
        let (est, _) = RobustPipeline::new()
            .with_cv(small_cv())
            .with_seed(5)
            .with_threads(threads)
            .estimate(&study.early_moments, &norm)
            .unwrap();
        match &reference {
            None => reference = Some(est),
            Some(r) => assert_eq!(r, &est, "threads = {threads}"),
        }
    }
}
