//! Range sampling (`Rng::gen_range`) matching `rand 0.8`'s
//! `UniformInt`/`UniformFloat` `sample_single` code paths bit-for-bit.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline(always)]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let t = u128::from(a) * u128::from(b);
    ((t >> 64) as u64, t as u64)
}

/// rand 0.8 `UniformInt::sample_single_inclusive` on a 64-bit carrier:
/// widening multiply with the `(range << lz) - 1` acceptance zone.
#[inline]
fn sample_u64_inclusive<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
    assert!(low <= high, "gen_range: low > high");
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        // Full u64 range.
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let (hi, lo) = wmul64(v, range);
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

/// rand 0.8 `UniformFloat::<f64>::sample_single`: a [1, 2) mantissa fill
/// from the high 52 bits, shifted and scaled into `[low, high)`.
#[inline]
fn sample_f64<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
    assert!(low < high, "gen_range: low >= high");
    let scale = high - low;
    let value1_2 = f64::from_bits((rng.next_u64() >> 12) | 0x3FF0_0000_0000_0000);
    let value0_1 = value1_2 - 1.0;
    let res = value0_1 * scale + low;
    // Upstream loops with a reduced scale in the (measure-zero) rounding
    // case res == high; clamping is equivalent for all practical inputs.
    if res < high {
        res
    } else {
        f64::from_bits(high.to_bits() - 1)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        sample_f64(self.start, self.end, rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: low >= high");
        let scale = self.end - self.start;
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | 0x3F80_0000);
        let res = (value1_2 - 1.0) * scale + self.start;
        if res < self.end {
            res
        } else {
            f32::from_bits(self.end.to_bits() - 1)
        }
    }
}

macro_rules! int_range {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    // rand 0.8 sample_single delegates to the inclusive
                    // variant with high - 1.
                    sample_u64_inclusive(self.start as u64, (self.end - 1) as u64, rng) as $ty
                }
            }
            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    sample_u64_inclusive(*self.start() as u64, *self.end() as u64, rng) as $ty
                }
            }
        )*
    };
}

int_range!(usize, u64, u32, u16, u8);

macro_rules! signed_int_range {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let low = self.start as i64 as u64;
                    let high = (self.end as i64 as u64).wrapping_sub(1);
                    // Widening-multiply rejection operates on the unsigned
                    // offset from `low`, as upstream does.
                    let range_high = high.wrapping_sub(low);
                    let off = sample_u64_inclusive(0, range_high, rng);
                    low.wrapping_add(off) as i64 as $ty
                }
            }
        )*
    };
}

signed_int_range!(i64, i32, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn inclusive_covers_endpoints() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[sample_u64_inclusive(0, 3, &mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_is_half_open() {
        let mut r = StdRng::seed_from_u64(10);
        for _ in 0..10_000 {
            let x = sample_f64(-2.0, 3.0, &mut r);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
