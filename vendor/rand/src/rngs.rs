//! Named RNG types.

use crate::chacha::ChaCha12;
use crate::{RngCore, SeedableRng};

/// The standard RNG: ChaCha12, exactly as in `rand 0.8` (via
/// `rand_chacha`'s `ChaCha12Rng`), including buffer-consumption order.
#[derive(Debug, Clone)]
pub struct StdRng {
    core: ChaCha12,
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.core.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.core.fill_bytes(dest)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng {
            core: ChaCha12::from_seed(seed),
        }
    }
}

/// Alias kept for call sites written against `rand::rngs::SmallRng`
/// (same generator here; the distinction only matters upstream).
pub type SmallRng = StdRng;
