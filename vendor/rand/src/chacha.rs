//! Serial ChaCha keystream generator with `rand_core::BlockRng`-compatible
//! word/buffer semantics, used to back [`crate::rngs::StdRng`] (ChaCha12,
//! matching `rand 0.8`'s choice via `rand_chacha 0.3`).

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Words per refill: `rand_chacha` buffers four 16-word blocks at a time.
const BUF_WORDS: usize = 64;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One 64-byte ChaCha block (original djb construction: 64-bit counter in
/// words 12–13, 64-bit stream id in words 14–15).
fn block(key: &[u32; 8], counter: u64, stream: u64, rounds: usize, out: &mut [u32; 16]) {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = stream as u32;
    state[15] = (stream >> 32) as u32;

    let mut w = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut w, 0, 4, 8, 12);
        quarter_round(&mut w, 1, 5, 9, 13);
        quarter_round(&mut w, 2, 6, 10, 14);
        quarter_round(&mut w, 3, 7, 11, 15);
        quarter_round(&mut w, 0, 5, 10, 15);
        quarter_round(&mut w, 1, 6, 11, 12);
        quarter_round(&mut w, 2, 7, 8, 13);
        quarter_round(&mut w, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = w[i].wrapping_add(state[i]);
    }
}

/// ChaCha12 keystream with the `BlockRng` consumption discipline: a
/// 64-word buffer, `next_u64` taking (lo, hi) word pairs, and the
/// documented straddle behaviour when a u64 read lands on the last word.
#[derive(Debug, Clone)]
pub struct ChaCha12 {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BUF_WORDS],
    index: usize,
}

impl ChaCha12 {
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        ChaCha12 {
            key,
            counter: 0,
            buf: [0; BUF_WORDS],
            // Start exhausted so the first read triggers a refill.
            index: BUF_WORDS,
        }
    }

    fn refill(&mut self) {
        let mut out = [0u32; 16];
        for b in 0..BUF_WORDS / 16 {
            block(&self.key, self.counter + b as u64, 0, 12, &mut out);
            self.buf[16 * b..16 * (b + 1)].copy_from_slice(&out);
        }
        self.counter += (BUF_WORDS / 16) as u64;
    }

    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
            self.index = 0;
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    pub fn next_u64(&mut self) -> u64 {
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
        } else if index >= BUF_WORDS {
            self.refill();
            self.index = 2;
            (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
        } else {
            // Straddle: low half is the last buffered word, high half is
            // the first word of the next refill (BlockRng::next_u64).
            let lo = u64::from(self.buf[BUF_WORDS - 1]);
            self.refill();
            self.index = 1;
            (u64::from(self.buf[0]) << 32) | lo
        }
    }

    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        // fill_via_u32_chunks semantics: whole words are consumed, the
        // trailing partial word (if any) is consumed entirely.
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 / djb reference: ChaCha20 keystream block 0 for the
    /// all-zero key, nonce and counter. Validates the quarter-round and
    /// serialization shared with the 12-round variant.
    #[test]
    fn chacha20_zero_state_test_vector() {
        let key = [0u32; 8];
        let mut out = [0u32; 16];
        block(&key, 0, 0, 20, &mut out);
        let mut bytes = Vec::new();
        for w in out {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let expected: [u8; 32] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28, 0xbd, 0xd2, 0x19, 0xb8, 0xa0, 0x8d, 0xed, 0x1a, 0xa8, 0x36, 0xef, 0xcc,
            0x8b, 0x77, 0x0d, 0xc7,
        ];
        assert_eq!(&bytes[..32], &expected);
    }

    #[test]
    fn straddled_u64_is_consistent() {
        // Consuming 63 u32s then one u64 must produce the same keystream
        // words as consuming 65 u32s (lo = word 63, hi = word 64).
        let seed = [7u8; 32];
        let mut a = ChaCha12::from_seed(seed);
        let mut b = ChaCha12::from_seed(seed);
        let mut last_words = (0, 0);
        for _ in 0..63 {
            a.next_u32();
        }
        for i in 0..65 {
            let w = b.next_u32();
            if i == 63 {
                last_words.0 = w;
            }
            if i == 64 {
                last_words.1 = w;
            }
        }
        let straddled = a.next_u64();
        assert_eq!(
            straddled,
            (u64::from(last_words.1) << 32) | u64::from(last_words.0)
        );
    }
}
