//! The `Standard` distribution and the `Distribution` trait, matching
//! `rand 0.8` output bit-for-bit for the implemented types.

use crate::Rng;

/// Types that can produce samples of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "default" distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats using the high 53/24 bits, full range for ints).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // rand 0.8: multiply-based, 53 high bits.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // rand 0.8: 24 high bits of a u32.
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! int_standard {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(
            impl Distribution<$ty> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.$method() as $ty
                }
            }
        )*
    };
}

// rand 0.8: 8/16/32-bit ints truncate a u32; 64-bit and usize (on 64-bit
// targets) use a full u64.
int_standard!(
    u8 => next_u32,
    u16 => next_u32,
    u32 => next_u32,
    i8 => next_u32,
    i16 => next_u32,
    i32 => next_u32,
    u64 => next_u64,
    i64 => next_u64,
    usize => next_u64,
    isize => next_u64,
);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8: sign bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}
