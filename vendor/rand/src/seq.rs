//! Slice helpers (`shuffle`, `choose`), matching `rand 0.8` semantics.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates from the end, drawing
    /// `gen_range(0..=i)` per step, exactly as `rand 0.8`).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chooses one element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j: usize = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty() {
        let mut r = StdRng::seed_from_u64(12);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert!([1, 2, 3].choose(&mut r).is_some());
    }
}
