//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the external `rand` dependency is replaced by this crate. It is **not**
//! a full re-implementation: it provides exactly the surface the workspace
//! uses, with output **bit-identical** to `rand 0.8.5` + `rand_chacha
//! 0.3` for those paths:
//!
//! * [`rngs::StdRng`] — ChaCha12 with the `rand_core` `BlockRng` buffer
//!   semantics (including the u64-across-refill straddle case);
//! * [`SeedableRng::seed_from_u64`] — the PCG32-based seed expansion of
//!   `rand_core` 0.6;
//! * `Standard` f64/int sampling, `gen_range` for float and integer
//!   ranges (widening-multiply rejection for ints, the [1, 2)-mantissa
//!   trick for floats), and [`seq::SliceRandom::shuffle`].
//!
//! Anything else from the real crate is intentionally absent; add pieces
//! here (matching upstream semantics) as the workspace grows.

pub mod distributions;
pub mod rngs;
pub mod seq;

mod chacha;
mod uniform;

use distributions::{Distribution, Standard};

/// Core RNG trait: sources of uniform random bits (object-safe).
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with PCG32 (`rand_core` 0.6
    /// semantics: advance state by the standard LCG, output XSH-RR, copy
    /// each output's little-endian bytes into the seed in 4-byte chunks).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let xl = x.to_le_bytes();
            chunk.copy_from_slice(&xl[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing extension trait with typed sampling helpers.
pub trait Rng: RngCore {
    /// Samples a value via the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Returns `true` with probability `p` (rand 0.8 `Bernoulli`
    /// semantics: 64-bit integer threshold comparison).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // rand 0.8 Bernoulli: p_int = p * 2^64 rounded; p == 1 always true.
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let k: usize = r.gen_range(0..7);
            assert!(k < 7);
            let j: usize = r.gen_range(0..=3);
            assert!(j <= 3);
        }
    }

    #[test]
    fn uniform_f64_mean_is_centred() {
        let mut r = rngs::StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn dyn_rng_core_supports_extension_methods() {
        let mut r = rngs::StdRng::seed_from_u64(4);
        let dyn_r: &mut dyn RngCore = &mut r;
        let x: f64 = dyn_r.gen_range(-1.0..1.0);
        assert!((-1.0..1.0).contains(&x));
    }
}
