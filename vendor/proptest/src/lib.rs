//! Offline vendored mini `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range strategies
//! for floats and integers, [`collection::vec`], and the [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros. Each generated test
//! runs a fixed number of deterministic cases (seeded per test name);
//! shrinking is not implemented — on failure the offending inputs are in
//! the assertion message via `Debug`/`Display` formatting of the body's
//! own assertions.

use std::ops::Range;

/// Number of cases each `proptest!` test executes.
pub const CASES: usize = 64;

/// Deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates a generator seeded from a test name (FNV-1a), so every
    /// test gets a distinct but reproducible case sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [lo, hi).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Mildly edge-biased: occasionally emit values near the bounds,
        // like upstream's boundary bias.
        let u = match rng.next_u64() % 16 {
            0 => 0.0,
            1 => 1.0 - f64::EPSILON,
            _ => rng.unit_f64(),
        };
        let v = self.start + u * (self.end - self.start);
        if v < self.end {
            v
        } else {
            f64::from_bits(self.end.to_bits() - 1)
        }
    }
}

macro_rules! int_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    // Bias toward the endpoints occasionally.
                    match rng.next_u64() % 16 {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => self.start + (rng.next_u64() % span) as $ty,
                    }
                }
            }
        )*
    };
}

int_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_int_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    match rng.next_u64() % 16 {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => (self.start as i64 + (rng.next_u64() % span) as i64) as $ty,
                    }
                }
            }
        )*
    };
}

signed_int_strategy!(i64, i32, i16, i8, isize);

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.usize_in(self.size.lo, self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Defines property tests: each `fn` block becomes a `#[test]` running
/// [`CASES`] deterministic cases of its strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property-test condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when an assumption fails (approximated by an
/// early `continue`-equivalent: the case simply returns).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (0.5..2.5f64).generate(&mut rng);
            assert!((0.5..2.5).contains(&x));
            let k = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn vec_strategy_len_in_range() {
        let mut rng = TestRng::new(2);
        let s = collection::vec(0.0..1.0f64, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let fixed = collection::vec(0.0..1.0f64, 7);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
    }

    proptest! {
        #[test]
        fn macro_round_trip(a in 0.0..1.0f64, n in 1usize..4) {
            prop_assert!(a < 1.0);
            prop_assert_eq!(n.min(3), n);
        }
    }
}
