//! Offline vendored mini `criterion`.
//!
//! A self-contained wall-clock benchmark harness exposing the criterion
//! API subset the workspace's `benches/` use: [`Criterion`],
//! [`BenchmarkGroup`] (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. No statistics, plots or comparisons — each benchmark is timed
//! adaptively (~`CRITERION_TARGET_MS` ms, default 100) and the mean
//! iteration time is printed as `bench <id> ... <time>/iter`.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Builds a bare parameter id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Measured mean time per iteration, filled by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

fn target_time() -> Duration {
    std::env::var("CRITERION_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Duration::from_millis(100), Duration::from_millis)
}

impl Bencher {
    /// Times `f`, adaptively choosing an iteration count to fill the
    /// target measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: run once, estimate the per-call cost.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = target_time();
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed_per_iter = t1.elapsed() / iters as u32;
    }
}

fn print_result(id: &str, per_iter: Duration) {
    let ns = per_iter.as_nanos();
    let human = if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    };
    println!("bench {id:<50} {human}/iter");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes measurement by
    /// wall-clock target, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        print_result(&format!("{}/{}", self.name, id.id), b.elapsed_per_iter);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b, input);
        print_result(&format!("{}/{}", self.name, id.id), b.elapsed_per_iter);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed_per_iter: Duration::ZERO,
        };
        f(&mut b);
        print_result(id, b.elapsed_per_iter);
        self
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        std::env::set_var("CRITERION_TARGET_MS", "1");
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
                b.iter(|| black_box(x * x))
            });
        g.finish();
    }
}
