//! No-op derive macros backing the vendored `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on data types for API
//! compatibility, but serializes exclusively through its own CSV/JSON
//! writers (`bmf-core::io`, the bench JSON emitters), so the derives need
//! not generate any code. Each macro accepts and ignores `#[serde(...)]`
//! attributes.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
