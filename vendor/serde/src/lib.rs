//! Offline vendored `serde` facade.
//!
//! The workspace builds without crates.io access; its types derive
//! `Serialize`/`Deserialize` for downstream compatibility but all actual
//! serialization is hand-rolled (CSV in `bmf-core::io`, JSON in the bench
//! harness). This facade therefore provides marker traits with blanket
//! impls plus no-op derive macros — enough for every `use` site and
//! `#[derive(...)]` in the tree, with zero behavioural surface.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
